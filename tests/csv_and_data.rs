//! Data-layer integration tests: CSV round-trips preserve mining results,
//! and frames behave across the crate boundary.

use h_divexplorer::core::{HDivExplorer, HDivExplorerConfig, OutcomeFn};
use h_divexplorer::data::{read_csv_str, write_csv_string, CsvOptions};
use h_divexplorer::datasets::compas;
use proptest::prelude::*;

/// A dataset serialised to CSV and re-parsed yields the same subgroup
/// discovery report.
#[test]
fn csv_roundtrip_preserves_mining() {
    let dataset = compas(1_000, 9);
    let outcomes = dataset.classification_outcomes(OutcomeFn::Fpr);
    let pipeline = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.05,
        ..HDivExplorerConfig::default()
    });

    let direct = pipeline.fit(&dataset.frame, &outcomes);

    let csv = write_csv_string(&dataset.frame, ',');
    let reloaded = read_csv_str(&csv, &CsvOptions::default()).unwrap();
    assert_eq!(reloaded.n_rows(), dataset.frame.n_rows());
    let via_csv = pipeline.fit(&reloaded, &outcomes);

    assert_eq!(direct.report.records.len(), via_csv.report.records.len());
    assert_eq!(
        direct.report.max_divergence(),
        via_csv.report.max_divergence()
    );
    let a: Vec<&str> = direct
        .report
        .records
        .iter()
        .map(|r| r.label.as_str())
        .collect();
    let b: Vec<&str> = via_csv
        .report
        .records
        .iter()
        .map(|r| r.label.as_str())
        .collect();
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary frames (mixed kinds, nulls, quoting hazards) survive a CSV
    /// round-trip exactly.
    #[test]
    fn csv_roundtrip_arbitrary_frames(
        rows in proptest::collection::vec(
            (
                proptest::option::of(-1e6f64..1e6),
                proptest::option::of("[a-z,\"\\- ]{0,8}"),
            ),
            1..40,
        )
    ) {
        use h_divexplorer::data::{DataFrameBuilder, Value};
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_categorical("s").unwrap();
        for (num, cat) in &rows {
            // Empty strings parse back as nulls, so normalise them here.
            let cat = cat.clone().filter(|c| !c.trim().is_empty());
            b.push_row(vec![
                num.map_or(Value::Null, Value::Num),
                cat.map_or(Value::Null, Value::Cat),
            ])
            .unwrap();
        }
        let df = b.finish();
        let text = write_csv_string(&df, ',');
        let back = read_csv_str(&text, &CsvOptions {
            force_categorical: vec!["s".to_string()],
            ..CsvOptions::default()
        }).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        let x = df.schema().id("x").unwrap();
        let s = df.schema().id("s").unwrap();
        for row in 0..df.n_rows() {
            let orig = df.continuous(x).get(row);
            let got = back.continuous(back.schema().id("x").unwrap()).get(row);
            match (orig, got) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{} vs {}", a, b)
                }
                other => prop_assert!(false, "null mismatch {:?}", other),
            }
            let cat_orig = df.categorical(s).get(row).map(str::trim);
            let cat_got = back.categorical(back.schema().id("s").unwrap()).get(row);
            prop_assert_eq!(cat_orig, cat_got);
        }
    }
}
