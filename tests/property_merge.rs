//! Property-based tests of the [`StatAccum`] merge algebra that streaming
//! ingestion leans on: folding a batch into the lattice is `merge` with a
//! delta accumulator, retiring a sliding-window segment is `unmerge`. The
//! properties pin the exactness contract: `merge(a, b)` equals accumulating
//! the concatenated stream from scratch, and `unmerge` is the exact inverse
//! of `merge` — bitwise for the integer fields, and for the float sums
//! bitwise on integer-valued (boolean) outcomes, ULP-bounded on reals.

use h_divexplorer::stats::{Outcome, StatAccum};
use proptest::prelude::*;

/// An arbitrary outcome: confusion-matrix style booleans, undefined cells,
/// and real-valued targets.
fn outcome() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Bool(false)),
        Just(Outcome::Bool(true)),
        Just(Outcome::Undefined),
        (-1.0e6f64..1.0e6).prop_map(Outcome::Real),
    ]
}

/// A boolean-only outcome (what the classification statistics produce);
/// their sums are small integers, so every algebra identity is bitwise.
fn bool_outcome() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Bool(false)),
        Just(Outcome::Bool(true)),
        Just(Outcome::Undefined),
    ]
}

fn accum(rows: &[Outcome]) -> StatAccum {
    let mut acc = StatAccum::new();
    for &o in rows {
        acc.push(o);
    }
    acc
}

/// Floating-point closeness under cancellation: a reassociated sum can
/// differ from the serial one by ~ε per term *relative to the terms'
/// magnitudes*, not the (possibly tiny, heavily cancelled) final value —
/// so the tolerance scales with `scale`, the sum of absolute addends.
fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 32.0 * f64::EPSILON * scale.max(a.abs()).max(b.abs()).max(1.0)
}

/// Σ|value| and Σ value² of a stream's defined outcomes — the scales that
/// bound reassociation error in `sum` and `sum_sq` respectively.
fn scales(rows: &[Outcome]) -> (f64, f64) {
    rows.iter()
        .filter_map(Outcome::value)
        .fold((0.0, 0.0), |(s, q), v| (s + v.abs(), q + v * v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `merge(a, b)` over boolean streams is *bitwise* identical to
    /// accumulating the concatenation from scratch: integer counts and
    /// integer-valued sums admit exact float addition.
    #[test]
    fn merge_of_boolean_streams_is_bitwise_from_scratch(
        xs in proptest::collection::vec(bool_outcome(), 0..200),
        ys in proptest::collection::vec(bool_outcome(), 0..200),
    ) {
        let mut merged = accum(&xs);
        merged.merge(&accum(&ys));
        let union: Vec<Outcome> = xs.iter().chain(ys.iter()).copied().collect();
        let scratch = accum(&union);
        let (mn, mv, ms, mq) = merged.raw_parts();
        let (sn, sv, ss, sq) = scratch.raw_parts();
        prop_assert_eq!((mn, mv), (sn, sv));
        prop_assert_eq!(ms.to_bits(), ss.to_bits(), "sum: {ms} vs {ss}");
        prop_assert_eq!(mq.to_bits(), sq.to_bits(), "sum_sq: {mq} vs {sq}");
    }

    /// `merge(a, b)` over real-valued streams matches from-scratch counts
    /// bitwise and sums to within a few ULPs (float addition is not
    /// associative, but the reordering is a single split point).
    #[test]
    fn merge_of_real_streams_is_ulp_close_to_from_scratch(
        xs in proptest::collection::vec(outcome(), 0..200),
        ys in proptest::collection::vec(outcome(), 0..200),
    ) {
        let mut merged = accum(&xs);
        merged.merge(&accum(&ys));
        let union: Vec<Outcome> = xs.iter().chain(ys.iter()).copied().collect();
        let scratch = accum(&union);
        let (mn, mv, ms, mq) = merged.raw_parts();
        let (sn, sv, ss, sq) = scratch.raw_parts();
        prop_assert_eq!((mn, mv), (sn, sv));
        // Merge adds two partial sums the scratch run accumulates serially:
        // identical term sets, one reassociation.
        let (scale, scale_sq) = scales(&union);
        prop_assert!(close(ms, ss, scale), "sum: {ms} vs {ss}");
        prop_assert!(close(mq, sq, scale_sq), "sum_sq: {mq} vs {sq}");
        // The derived statistic agrees to float precision.
        match (merged.statistic(), scratch.statistic()) {
            (Some(m), Some(s)) => prop_assert!(
                close(m, s, scale / sv.max(1) as f64),
                "stat: {m} vs {s}"
            ),
            (m, s) => prop_assert_eq!(m.is_some(), s.is_some()),
        }
    }

    /// `unmerge(merge(a, b), b)` restores `a`: counts exactly, sums to
    /// within rounding at the magnitude of the merged intermediate —
    /// `(a + b) - b` incurs one rounding in each direction, so the error is
    /// bounded by ε·(|a| + |b|), never by the (possibly cancelled) result.
    #[test]
    fn unmerge_inverts_merge(
        xs in proptest::collection::vec(outcome(), 0..200),
        ys in proptest::collection::vec(outcome(), 0..200),
    ) {
        let a = accum(&xs);
        let b = accum(&ys);
        let mut round_trip = a.clone();
        round_trip.merge(&b);
        round_trip.unmerge(&b);
        let (rn, rv, rs, rq) = round_trip.raw_parts();
        let (an, av, a_sum, a_sq) = a.raw_parts();
        let (_, _, b_sum, b_sq) = b.raw_parts();
        prop_assert_eq!((rn, rv), (an, av));
        prop_assert!(
            close(rs, a_sum, a_sum.abs() + b_sum.abs()),
            "sum: {rs} vs {a_sum}"
        );
        prop_assert!(close(rq, a_sq, a_sq + b_sq), "sum_sq: {rq} vs {a_sq}");
    }

    /// Boolean-stream unmerge is exactly bitwise (the WAL fold path for
    /// classification statistics).
    #[test]
    fn boolean_unmerge_is_bitwise(
        xs in proptest::collection::vec(bool_outcome(), 0..300),
        ys in proptest::collection::vec(bool_outcome(), 0..300),
    ) {
        let a = accum(&xs);
        let b = accum(&ys);
        let mut round_trip = a.clone();
        round_trip.merge(&b);
        round_trip.unmerge(&b);
        let (rn, rv, rs, rq) = round_trip.raw_parts();
        let (an, av, a_sum, a_sq) = a.raw_parts();
        prop_assert_eq!((rn, rv), (an, av));
        prop_assert_eq!(rs.to_bits(), a_sum.to_bits());
        prop_assert_eq!(rq.to_bits(), a_sq.to_bits());
    }

    /// Merge is associative on the integer fields and ULP-stable on the
    /// float fields regardless of batching — appending rows one WAL segment
    /// at a time lands where one big batch lands.
    #[test]
    fn merge_batching_is_immaterial(
        xs in proptest::collection::vec(outcome(), 1..120),
        split in 0usize..120,
    ) {
        let split = split % xs.len();
        let (head, tail) = xs.split_at(split);
        let mut batched = accum(head);
        batched.merge(&accum(tail));
        let whole = accum(&xs);
        let (bn, bv, bs, bq) = batched.raw_parts();
        let (wn, wv, ws, wq) = whole.raw_parts();
        let (scale, scale_sq) = scales(&xs);
        prop_assert_eq!((bn, bv), (wn, wv));
        prop_assert!(close(bs, ws, scale), "sum: {bs} vs {ws}");
        prop_assert!(close(bq, wq, scale_sq), "sum_sq: {bq} vs {wq}");
    }
}
