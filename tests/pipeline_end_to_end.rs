//! End-to-end integration tests of the full H-DivExplorer pipeline across
//! datasets, checking the structural guarantees the paper states.

use h_divexplorer::core::{ExplorationMode, HDivExplorer, HDivExplorerConfig};
use h_divexplorer::datasets::{classification_suite, folktables};
use h_divexplorer::items::item_cover;
use h_divexplorer::mining::MiningAlgorithm;
use hdx_bench::experiments::{outcomes_for, pipeline_for, run_exploration};

const SCALE: f64 = 0.04;

/// §V-B: "hierarchical exploration is guaranteed to find itemsets that are
/// at least as divergent as those found by non-hierarchical exploration."
#[test]
fn hierarchical_dominates_base_on_every_dataset() {
    for dataset in classification_suite(SCALE, 11) {
        for s in [0.05, 0.1] {
            let config = HDivExplorerConfig {
                min_support: s,
                ..HDivExplorerConfig::default()
            };
            let (_, base) = run_exploration(&dataset, config, ExplorationMode::Base);
            let (_, hier) = run_exploration(&dataset, config, ExplorationMode::Generalized);
            assert!(
                hier.max_divergence >= base.max_divergence - 1e-12,
                "{} s={s}: hier {} < base {}",
                dataset.name,
                hier.max_divergence,
                base.max_divergence
            );
        }
    }
}

/// Every mined subgroup respects the support threshold, and supports are
/// exact (re-counted from item covers).
#[test]
fn supports_are_exact_and_above_threshold() {
    let dataset = &classification_suite(SCALE, 3)[2]; // compas
    let s = 0.05;
    let (result, _) = run_exploration(
        dataset,
        HDivExplorerConfig {
            min_support: s,
            ..HDivExplorerConfig::default()
        },
        ExplorationMode::Generalized,
    );
    let n = dataset.frame.n_rows();
    for record in &result.report.records {
        assert!(record.support >= s - 1e-12, "{}", record.label);
        // Recount the support from scratch.
        let mut cover = h_divexplorer::items::Bitset::all_set(n);
        for &item in record.itemset.items() {
            cover.and_assign(&item_cover(&dataset.frame, &result.catalog, item));
        }
        let expected = cover.count() as f64 / n as f64;
        assert!(
            (record.support - expected).abs() < 1e-12,
            "{}: mined support {} vs recount {expected}",
            record.label,
            record.support
        );
    }
}

/// Discretization hierarchies satisfy Definition 4.1's partition property on
/// every dataset.
#[test]
fn hierarchies_partition_on_all_datasets() {
    for dataset in classification_suite(SCALE, 5) {
        let outcomes = outcomes_for(&dataset);
        let pipeline = pipeline_for(&dataset, HDivExplorerConfig::default());
        let (catalog, hierarchies, _) = pipeline.discretize(&dataset.frame, &outcomes);
        let check = hierarchies
            .validate_partition(&catalog, |item| item_cover(&dataset.frame, &catalog, item));
        assert_eq!(check, Ok(()), "{}", dataset.name);
    }
}

/// The three mining algorithms produce identical reports through the whole
/// pipeline (not just on toy transactions).
#[test]
fn mining_algorithms_agree_through_pipeline() {
    let dataset = &classification_suite(SCALE, 7)[5]; // synthetic-peak
    let outcomes = outcomes_for(dataset);
    let reports: Vec<_> = [
        MiningAlgorithm::Apriori,
        MiningAlgorithm::FpGrowth,
        MiningAlgorithm::Vertical,
    ]
    .into_iter()
    .map(|algorithm| {
        HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.05,
            algorithm,
            ..HDivExplorerConfig::default()
        })
        .fit(&dataset.frame, &outcomes)
        .report
    })
    .collect();
    for r in &reports[1..] {
        assert_eq!(r.records.len(), reports[0].records.len());
        assert_eq!(r.max_divergence(), reports[0].max_divergence());
        // Same ranked labels.
        let a: Vec<&str> = r.records.iter().map(|x| x.label.as_str()).collect();
        let b: Vec<&str> = reports[0]
            .records
            .iter()
            .map(|x| x.label.as_str())
            .collect();
        assert_eq!(a, b);
    }
}

/// Polarity pruning returns a subset of the complete search and preserves
/// the extreme divergences on every dataset (§V-C).
#[test]
fn polarity_pruning_preserves_extremes() {
    for dataset in classification_suite(SCALE, 13) {
        let mk = |polarity_pruning| HDivExplorerConfig {
            min_support: 0.05,
            polarity_pruning,
            ..HDivExplorerConfig::default()
        };
        let (full, fs) = run_exploration(&dataset, mk(false), ExplorationMode::Generalized);
        let (pruned, ps) = run_exploration(&dataset, mk(true), ExplorationMode::Generalized);
        assert!(ps.n_subgroups <= fs.n_subgroups, "{}", dataset.name);
        // Pruned ⊆ full.
        let full_set: std::collections::HashSet<&str> = full
            .report
            .records
            .iter()
            .map(|r| r.label.as_str())
            .collect();
        for r in &pruned.report.records {
            assert!(full_set.contains(r.label.as_str()), "{}", r.label);
        }
        // Extremes preserved exactly or within a whisker (the paper observes
        // slight differences in a handful of cases; on these small samples
        // we allow 15% slack).
        assert!(
            ps.max_divergence >= fs.max_divergence * 0.85,
            "{}: pruned {} vs full {}",
            dataset.name,
            ps.max_divergence,
            fs.max_divergence
        );
    }
}

/// Shapley attribution over mined results satisfies efficiency (the
/// contributions of an itemset's items sum to its divergence) on every
/// record of a real exploration.
#[test]
fn shapley_efficiency_holds_end_to_end() {
    use h_divexplorer::core::item_contributions;
    let dataset = &classification_suite(SCALE, 17)[2]; // compas
    let (result, _) = run_exploration(
        dataset,
        HDivExplorerConfig {
            min_support: 0.1,
            ..HDivExplorerConfig::default()
        },
        ExplorationMode::Generalized,
    );
    let mut checked = 0;
    for record in &result.report.records {
        let Some(div) = record.divergence else {
            continue;
        };
        let Some(contribs) = item_contributions(&result.report, &record.itemset) else {
            continue;
        };
        let total: f64 = contribs.iter().map(|(_, c)| c).sum();
        assert!(
            (total - div).abs() < 1e-9,
            "{}: Σ contributions {total} vs Δ {div}",
            record.label
        );
        checked += 1;
    }
    assert!(checked > 10, "attribution exercised on real records");
}

/// The redundancy filter removes duplicated-attribute patterns but keeps
/// the top divergence reachable.
#[test]
fn redundancy_filter_preserves_top_divergence() {
    let dataset = &classification_suite(SCALE, 19)[5]; // synthetic-peak
    let (result, _) = run_exploration(
        dataset,
        HDivExplorerConfig {
            min_support: 0.05,
            ..HDivExplorerConfig::default()
        },
        ExplorationMode::Generalized,
    );
    let filtered = result.report.non_redundant(1e-6);
    assert!(!filtered.is_empty());
    assert!(filtered.len() <= result.report.records.len());
    let best_filtered = filtered
        .iter()
        .filter_map(|r| r.divergence)
        .fold(f64::NEG_INFINITY, f64::max);
    // The maximal subgroup is never redundant (nothing explains it).
    assert_eq!(Some(best_filtered), result.report.max_divergence());
}

/// The pipeline is robust to missing values: null cells join no subgroup,
/// supports stay exact, and the anomaly is still found.
#[test]
fn pipeline_handles_missing_values() {
    use h_divexplorer::datasets::{inject_nulls, synthetic_peak};
    let clean = synthetic_peak(2_500, 31);
    let holey = inject_nulls(&clean.frame, 0.15, 5).expect("valid rate");
    let outcomes = hdx_bench::experiments::outcomes_for(&clean);
    let result = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.05,
        ..HDivExplorerConfig::default()
    })
    .fit(&holey, &outcomes);
    // Supports are exact against re-counted covers over the holey frame.
    for record in result.report.records.iter().take(50) {
        let mut cover = h_divexplorer::items::Bitset::all_set(holey.n_rows());
        for &item in record.itemset.items() {
            cover.and_assign(&item_cover(&holey, &result.catalog, item));
        }
        let expected = cover.count() as f64 / holey.n_rows() as f64;
        assert!(
            (record.support - expected).abs() < 1e-12,
            "{}",
            record.label
        );
    }
    // The peak anomaly survives 15% missingness.
    assert!(
        result.report.max_divergence().unwrap() > 0.05,
        "maxΔ = {:?}",
        result.report.max_divergence()
    );
}

/// Lazy confidence intervals bracket every record's divergence; strongly
/// significant records exclude zero.
#[test]
fn confidence_intervals_bracket_divergence() {
    let dataset = &classification_suite(SCALE, 23)[2]; // compas
    let (result, _) = run_exploration(
        dataset,
        HDivExplorerConfig {
            min_support: 0.1,
            ..HDivExplorerConfig::default()
        },
        ExplorationMode::Generalized,
    );
    let mut excluded_zero = 0;
    for record in &result.report.records {
        let Some(d) = record.divergence else { continue };
        let Some((lo, hi)) = result.report.divergence_ci(record, 0.05) else {
            continue;
        };
        assert!(lo <= d && d <= hi, "{}: [{lo}, {hi}] ∌ {d}", record.label);
        if record.p_value < 0.001 {
            // Highly significant at p < 0.001 ⇒ the 95% CI excludes zero.
            assert!(lo > 0.0 || hi < 0.0, "{}", record.label);
            excluded_zero += 1;
        }
    }
    assert!(
        excluded_zero > 0,
        "some strongly significant subgroups exist"
    );
}

/// The real-valued (income) pipeline works end to end with taxonomies and
/// reports generalized items.
#[test]
fn folktables_pipeline_uses_generalized_items() {
    let dataset = folktables(8_000, 21);
    let outcomes = dataset.target_outcomes();
    let mut pipeline = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.05,
        max_len: Some(4),
        ..HDivExplorerConfig::default()
    });
    for (attr, tax) in &dataset.taxonomies {
        pipeline = pipeline.with_taxonomy(attr.clone(), tax.clone());
    }
    let result = pipeline.fit(&dataset.frame, &outcomes);
    // At least one record must use a non-leaf item.
    let uses_generalized = result.report.records.iter().any(|r| {
        r.itemset.items().iter().any(|&item| {
            result
                .hierarchies
                .get(result.catalog.attr_of(item))
                .is_some_and(|h| !h.is_leaf(item))
        })
    });
    assert!(uses_generalized);
    // The top subgroup earns meaningfully more than average.
    let top = result.report.top().unwrap();
    assert!(top.divergence.unwrap() > 20_000.0);
    assert!(top.t_value > 5.0);
}
