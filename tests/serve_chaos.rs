//! Chaos tests for the job service (compiled only with `--features
//! hdx-fail`): inject worker panics, worker-thread deaths, checkpoint-write
//! failures, transient job faults, and admission faults, and assert the
//! robustness contract — the process stays up, overload sheds cleanly, and
//! injected faults never corrupt a job's result.
//!
//! The fail-point registry is process-global and several of these points
//! sit on the shared job path, so every test serialises on one lock and
//! resets the registry on entry and exit.

#![cfg(feature = "hdx-fail")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use h_divexplorer::governor::failpoint::{self, FailAction};
use h_divexplorer::serve::{ServeConfig, Server};

/// Serialises the chaos tests (see the module docs).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Locks the registry for one test and guarantees a clean slate on both
/// sides, even when the test body panics.
struct ChaosGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl<'a> ChaosGuard<'a> {
    fn acquire() -> Self {
        let guard = CHAOS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        failpoint::reset();
        Self(guard)
    }
}

impl Drop for ChaosGuard<'_> {
    fn drop(&mut self) {
        failpoint::reset();
    }
}

struct Response {
    status: u16,
    body: String,
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) if !raw.is_empty() => break,
            Err(e) => panic!("read: {e}"),
        }
    }
    let raw = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = raw.split_once("\r\n\r\n").expect("blank line");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    Response {
        status,
        body: payload.to_string(),
    }
}

fn tmp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdx-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_csv(rows: usize) -> String {
    let mut csv = String::from("class,pred,age,grp\n");
    for r in 0..rows {
        csv.push_str(&format!(
            "{},{},{},{}\n",
            u8::from(r % 3 == 0),
            u8::from(r % 4 == 0),
            r % 17,
            ["a", "b", "c"][r % 3],
        ));
    }
    csv
}

fn submission(csv: &str) -> String {
    let escaped: String = csv
        .chars()
        .map(|c| {
            if c == '\n' {
                "\\n".to_string()
            } else {
                c.to_string()
            }
        })
        .collect();
    format!(r#"{{"csv":"{escaped}","stat":"fpr","support":0.05,"checkpoint_every":1}}"#)
}

fn start(state_dir: PathBuf) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir,
        workers: 1,
        retry_base_ms: 5,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

/// Extracts a top-level string field from a JSON body (the status document
/// can contain arrays, which the flat submission parser rejects).
fn json_str_field(body: &str, key: &str) -> String {
    let marker = format!("\"{key}\":\"");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no `{key}` in {body}"))
        + marker.len();
    let rest = &body[start..];
    rest[..rest.find('"').expect("closing quote")].to_string()
}

fn submit(addr: SocketAddr, rows: usize) -> String {
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(rows)));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    json_str_field(&accepted.body, "job_id")
}

/// Polls until the job leaves its active states; returns the final state.
fn await_terminal(addr: SocketAddr, job_id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
        assert_eq!(status.status, 200, "{}", status.body);
        let state = json_str_field(&status.body, "state");
        if !matches!(state.as_str(), "queued" | "running" | "backoff") {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job `{job_id}` stuck in `{state}`"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
}

/// A panic in the mining kernel mid-level fails that job — and only that
/// job. The process keeps serving and the next submission completes.
#[test]
fn worker_panic_mid_level_fails_the_job_not_the_process() {
    let _guard = ChaosGuard::acquire();
    let state = tmp_state_dir("panic");
    let (addr, handle) = start(state.clone());
    // The default pipeline mines with the vertical algorithm.
    failpoint::arm_once("mining::vertical", FailAction::Panic, 1);

    let job_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &job_id), "failed");
    let result = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(result.status, 409);
    assert!(result.body.contains("panic"), "{}", result.body);

    // Still alive, still admitting, still completing work.
    assert_eq!(http(addr, "GET", "/healthz", "").status, 200);
    let second = submit(addr, 120);
    assert_eq!(await_terminal(addr, &second), "done");
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state);
}

/// A worker thread that dies outside the per-job isolation is detected by
/// the supervisor and respawned; its job is settled as failed by the lease,
/// so no client waits on a job nobody owns.
#[test]
fn dead_worker_is_respawned_and_its_job_settled() {
    let _guard = ChaosGuard::acquire();
    let state = tmp_state_dir("respawn");
    let (addr, handle) = start(state.clone());
    failpoint::arm_once("serve::worker", FailAction::Panic, 1);

    let job_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &job_id), "failed");
    let result = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(result.status, 409);
    assert!(result.body.contains("worker lost"), "{}", result.body);

    // The pool got its thread back: new work still completes.
    let second = submit(addr, 120);
    assert_eq!(await_terminal(addr, &second), "done");
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state);
}

/// A failing checkpoint write degrades durability, not correctness: the run
/// completes and serves its full result.
#[test]
fn checkpoint_write_failure_degrades_not_dies() {
    let _guard = ChaosGuard::acquire();
    let state = tmp_state_dir("ckpt");
    let (addr, handle) = start(state.clone());
    failpoint::arm_once(
        "checkpoint::write",
        FailAction::Error("disk full".into()),
        1,
    );

    let job_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &job_id), "done");
    let result = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(result.status, 200);
    assert!(result.body.contains("\"subgroups\""), "{}", result.body);
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state);
}

/// An injected admission fault sheds the one submission with 429 and leaves
/// the service untouched; once disarmed, the same submission is accepted,
/// and its result matches a run that never saw a fault byte for byte.
#[test]
fn injected_queue_fault_sheds_cleanly() {
    let _guard = ChaosGuard::acquire();
    let state = tmp_state_dir("queue");
    let (addr, handle) = start(state.clone());
    failpoint::arm_once("serve::queue", FailAction::Error("injected".into()), 1);

    let shed = http(addr, "POST", "/jobs", &submission(&sample_csv(120)));
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(shed.body.contains("injected"), "{}", shed.body);

    let job_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &job_id), "done");
    shutdown(addr, handle);

    // Control on a clean server: the post-fault result is byte-identical.
    let faulted = http_result_body(&state, &job_id);
    let control_state = tmp_state_dir("queue-control");
    let (addr, handle) = start(control_state.clone());
    let control_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &control_id), "done");
    let control = http(addr, "GET", &format!("/jobs/{control_id}/result"), "");
    shutdown(addr, handle);
    assert_eq!(
        faulted, control.body,
        "fault handling must not change results"
    );
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&control_state);
}

/// Reads a finished job's sealed result body straight from its state
/// directory (for comparing results across server instances).
fn http_result_body(state: &std::path::Path, job_id: &str) -> String {
    let marker = state.join("jobs").join(job_id).join("done.hdx");
    let payload = h_divexplorer::checkpoint::read_sealed(&marker).expect("marker");
    h_divexplorer::serve::DoneRecord::decode(&payload)
        .expect("decodes")
        .body
}

/// A transient fault on the job path is retried with backoff and the job
/// still completes — with the byte-identical result of an untroubled run.
#[test]
fn transient_job_fault_retries_to_the_identical_result() {
    let _guard = ChaosGuard::acquire();
    let state = tmp_state_dir("transient");
    let (addr, handle) = start(state.clone());
    failpoint::arm_once("serve::job", FailAction::Error("blip".into()), 1);

    let job_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &job_id), "done");
    let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
    assert!(
        status.body.contains("\"attempts\":2") && status.body.contains("blip"),
        "the retry must be visible in the status: {}",
        status.body
    );
    shutdown(addr, handle);

    let retried = http_result_body(&state, &job_id);
    let control_state = tmp_state_dir("transient-control");
    let (addr, handle) = start(control_state.clone());
    let control_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &control_id), "done");
    let control = http(addr, "GET", &format!("/jobs/{control_id}/result"), "");
    shutdown(addr, handle);
    assert_eq!(retried, control.body, "retries must not change results");
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&control_state);
}

/// Exhausted retries are a terminal failure, not a hang: a persistently
/// transient job settles as failed with the retry log attached.
#[test]
fn exhausted_retries_settle_as_failure() {
    let _guard = ChaosGuard::acquire();
    let state = tmp_state_dir("exhausted");
    let (addr, handle) = start(state.clone());
    // Fires on every hit: no attempt can ever succeed.
    failpoint::arm("serve::job", FailAction::Error("always down".into()), 1);

    let job_id = submit(addr, 120);
    assert_eq!(await_terminal(addr, &job_id), "failed");
    let result = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(result.status, 409);
    assert!(result.body.contains("retries exhausted"), "{}", result.body);
    failpoint::disarm("serve::job");

    assert_eq!(http(addr, "GET", "/healthz", "").status, 200);
    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&state);
}
