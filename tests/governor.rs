//! Integration tests for the run governor: deadlines, budgets, cooperative
//! cancellation, and the graceful-degradation guarantee — a truncated run's
//! itemsets are an *exact subset* of the unbounded run's, across all three
//! miner families and the full H-DivExplorer pipeline.

use h_divexplorer::core::{ExplorationMode, HDivExplorerConfig, OutcomeFn, Termination};
use h_divexplorer::datasets::{compas, synthetic_peak};
use h_divexplorer::governor::{CancelReason, CancelToken, Governor, RunBudget};
use h_divexplorer::items::{Item, ItemCatalog, ItemId, Itemset};
use h_divexplorer::mining::{mine, mine_governed, MiningAlgorithm, MiningConfig, Transactions};
use h_divexplorer::stats::Outcome;
use hdx_bench::experiments::{outcomes_for, pipeline_for};
use std::collections::BTreeMap;
use std::time::Duration;

const ALGORITHMS: [MiningAlgorithm; 4] = [
    MiningAlgorithm::Apriori,
    MiningAlgorithm::FpGrowth,
    MiningAlgorithm::Vertical,
    MiningAlgorithm::VerticalParallel,
];

/// A small deterministic transaction database with enough co-occurrence
/// structure to produce a few dozen frequent itemsets at s = 0.1.
fn fixture() -> (Transactions, ItemCatalog) {
    let mut catalog = ItemCatalog::new();
    let ids: Vec<ItemId> = (0..6)
        .map(|i| {
            catalog.intern(Item::cat_eq(
                h_divexplorer::data::AttrId(i as u16),
                0,
                &format!("a{i}"),
                "v",
            ))
        })
        .collect();
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for r in 0..200usize {
        // Item k appears in rows where r has bit k of a mixed pattern set;
        // the mix keeps every pair/triple frequency distinct but stable.
        let row: Vec<ItemId> = (0..6)
            .filter(|k| (r * (k + 3) / 7 + r / (k + 1)) % (k + 2) == 0)
            .map(|k| ids[k])
            .collect();
        rows.push(row);
        outcomes.push(if r % 3 == 0 {
            Outcome::Bool(r % 2 == 0)
        } else {
            Outcome::Real((r % 10) as f64)
        });
    }
    (Transactions::from_rows(rows, outcomes), catalog)
}

/// (itemset → count) map for subset comparison.
fn counts(itemsets: &[h_divexplorer::mining::FrequentItemset]) -> BTreeMap<Itemset, u64> {
    itemsets
        .iter()
        .map(|fi| (fi.itemset.clone(), fi.accum.count()))
        .collect()
}

/// §ISSUE acceptance: for every miner, a budget-truncated run returns an
/// exact subset of the unbounded run — same itemsets, same counts.
#[test]
fn truncated_results_are_exact_subsets_for_every_miner() {
    let (transactions, catalog) = fixture();
    for algorithm in ALGORITHMS {
        let config = MiningConfig {
            min_support: 0.1,
            max_len: None,
            algorithm,
            threads: None,
        };
        let full = mine(&transactions, &catalog, &config);
        assert_eq!(full.termination, Termination::Complete, "{algorithm:?}");
        let full_counts = counts(&full.itemsets);
        assert!(full_counts.len() > 8, "{algorithm:?}: fixture too sparse");

        for cap in [1u64, 3, 7, full_counts.len() as u64 - 1] {
            let governor = Governor::new(RunBudget::unbounded().with_max_itemsets(cap));
            let truncated = mine_governed(&transactions, &catalog, &config, &governor);
            assert_eq!(
                truncated.termination,
                Termination::BudgetExhausted,
                "{algorithm:?} cap={cap}"
            );
            assert!(
                truncated.itemsets.len() as u64 <= cap,
                "{algorithm:?} cap={cap}: {} itemsets",
                truncated.itemsets.len()
            );
            for (itemset, count) in counts(&truncated.itemsets) {
                assert_eq!(
                    full_counts.get(&itemset),
                    Some(&count),
                    "{algorithm:?} cap={cap}: {itemset:?} not an exact subset entry"
                );
            }
        }
    }
}

/// A pre-cancelled token stops every miner before it emits anything.
#[test]
fn cancellation_stops_every_miner() {
    let (transactions, catalog) = fixture();
    let token = CancelToken::new();
    token.cancel();
    for algorithm in ALGORITHMS {
        let config = MiningConfig {
            min_support: 0.1,
            max_len: None,
            algorithm,
            threads: None,
        };
        let governor = Governor::with_token(RunBudget::unbounded(), token.clone());
        let result = mine_governed(&transactions, &catalog, &config, &governor);
        assert_eq!(
            result.termination,
            Termination::Cancelled(CancelReason::User),
            "{algorithm:?}"
        );
        assert!(result.itemsets.is_empty(), "{algorithm:?}");
    }
}

/// An already-expired deadline degrades to an empty-but-valid result.
#[test]
fn expired_deadline_degrades_every_miner() {
    let (transactions, catalog) = fixture();
    for algorithm in ALGORITHMS {
        let config = MiningConfig {
            min_support: 0.1,
            max_len: None,
            algorithm,
            threads: None,
        };
        let governor = Governor::new(RunBudget::unbounded().with_deadline(Duration::ZERO));
        let result = mine_governed(&transactions, &catalog, &config, &governor);
        assert_eq!(
            result.termination,
            Termination::DeadlineExceeded,
            "{algorithm:?}"
        );
    }
}

/// Tier-1 fixtures under a generous budget terminate `Complete` and match
/// the ungoverned run exactly — the governor never perturbs a full run.
#[test]
fn generous_budget_is_invisible_on_tier1_fixtures() {
    for dataset in [compas(400, 7), synthetic_peak(400, 7)] {
        let outcomes = outcomes_for(&dataset);
        let config = HDivExplorerConfig {
            min_support: 0.05,
            ..HDivExplorerConfig::default()
        };
        let free = pipeline_for(&dataset, config).fit_mode(
            &dataset.frame,
            &outcomes,
            ExplorationMode::Generalized,
        );
        let governed_config = HDivExplorerConfig {
            budget: RunBudget::unbounded()
                .with_deadline(Duration::from_secs(600))
                .with_max_itemsets(1_000_000),
            ..config
        };
        let governed = pipeline_for(&dataset, governed_config).fit_mode(
            &dataset.frame,
            &outcomes,
            ExplorationMode::Generalized,
        );
        assert_eq!(
            governed.termination(),
            Termination::Complete,
            "{}",
            dataset.name
        );
        assert!(!governed.is_partial(), "{}", dataset.name);
        assert_eq!(
            governed.report.records.len(),
            free.report.records.len(),
            "{}",
            dataset.name
        );
    }
}

/// The pathological acceptance scenario end to end: a tight itemset budget
/// plus a wall-clock deadline on a low-support run still yields non-empty
/// partial results and a truthful termination reason.
#[test]
fn pathological_pipeline_run_degrades_instead_of_dying() {
    let dataset = compas(1500, 3);
    let outcomes = dataset.classification_outcomes(OutcomeFn::Fpr);
    let config = HDivExplorerConfig {
        min_support: 0.01,
        budget: RunBudget::unbounded()
            .with_max_itemsets(8)
            .with_deadline(Duration::from_secs(30)),
        ..HDivExplorerConfig::default()
    };
    let result = pipeline_for(&dataset, config).fit_mode(
        &dataset.frame,
        &outcomes,
        ExplorationMode::Generalized,
    );
    assert_eq!(result.termination(), Termination::BudgetExhausted);
    assert!(result.is_partial());
    assert!(!result.report.records.is_empty());
    assert!(result.report.records.len() <= 8);
    assert_eq!(result.counters().itemsets, 8);
}

/// With `adaptive_support`, the same budget produces a *complete* (coarser)
/// run instead of a truncated one.
#[test]
fn adaptive_support_completes_within_budget() {
    let dataset = compas(800, 3);
    let outcomes = dataset.classification_outcomes(OutcomeFn::Fpr);
    // Measure how many subgroups a coarse support yields, then demand that
    // count as the budget of a run starting at 0.025: the doubling retry
    // ladder (0.05 → 0.1 → 0.2) lands exactly on the measured support, where
    // the count fits the budget and the run completes.
    let coarse = HDivExplorerConfig {
        min_support: 0.2,
        ..HDivExplorerConfig::default()
    };
    let cap = pipeline_for(&dataset, coarse)
        .fit_mode(&dataset.frame, &outcomes, ExplorationMode::Base)
        .report
        .records
        .len() as u64;
    let config = HDivExplorerConfig {
        min_support: 0.025,
        budget: RunBudget::unbounded().with_max_itemsets(cap),
        adaptive_support: true,
        ..HDivExplorerConfig::default()
    };
    let result =
        pipeline_for(&dataset, config).fit_mode(&dataset.frame, &outcomes, ExplorationMode::Base);
    assert_eq!(result.termination(), Termination::Complete);
    assert!(result.adaptive_retries > 0);
    assert!(result.effective_min_support > 0.025);
}

/// §ISSUE (observability): [`Governor::snapshot`] observed at arbitrary
/// points of a charged run is monotone — elapsed time and every charge
/// counter never decrease, the remaining deadline never increases, and a
/// snapshot taken after a trip still reports the accumulated charges.
#[test]
fn governor_snapshots_are_monotone_across_a_charged_run() {
    let governor = Governor::new(
        RunBudget::unbounded()
            .with_deadline(Duration::from_secs(600))
            .with_max_itemsets(75),
    );
    let mut prev = governor.snapshot();
    for step in 0..50u64 {
        // Interleave every charge path the miners use.
        governor.record_itemsets(2);
        governor.record_candidate_bytes(64 * (step + 1));
        if step % 3 == 0 {
            governor.record_tree_nodes(1);
        }
        let _ = governor.keep_going();
        let snap = governor.snapshot();
        assert!(
            snap.elapsed >= prev.elapsed,
            "step {step}: elapsed went back"
        );
        assert!(
            snap.itemsets >= prev.itemsets,
            "step {step}: itemsets shrank"
        );
        assert!(
            snap.candidate_bytes >= prev.candidate_bytes,
            "step {step}: candidate_bytes shrank"
        );
        assert!(
            snap.tree_nodes >= prev.tree_nodes,
            "step {step}: tree_nodes shrank"
        );
        assert!(snap.checks >= prev.checks, "step {step}: checks shrank");
        let (now, before) = (
            snap.deadline_remaining.expect("deadline set"),
            prev.deadline_remaining.expect("deadline set"),
        );
        assert!(now <= before, "step {step}: deadline remaining grew");
        prev = snap;
    }
    // 50 steps × 2 itemsets blew the 75-itemset budget mid-run: the final
    // snapshot reports the trip, and the overflowing charge was rolled back
    // (74 charged, never more than the cap).
    assert_eq!(prev.termination, Termination::BudgetExhausted);
    assert_eq!(prev.itemsets, 74);
    assert!(prev.checks > 0);
}

/// Cancelling from another thread mid-run stops the pipeline cooperatively.
#[test]
fn cross_thread_cancellation_is_cooperative() {
    let dataset = compas(1500, 3);
    let outcomes = dataset.classification_outcomes(OutcomeFn::Fpr);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            token.cancel();
        })
    };
    let config = HDivExplorerConfig {
        min_support: 0.005,
        ..HDivExplorerConfig::default()
    };
    let result = pipeline_for(&dataset, config)
        .with_cancel_token(token)
        .fit_mode(&dataset.frame, &outcomes, ExplorationMode::Generalized);
    canceller.join().expect("canceller thread");
    // Either the run was fast enough to finish, or it reports Cancelled;
    // it must never panic or return a corrupt report.
    assert!(matches!(
        result.termination(),
        Termination::Complete | Termination::Cancelled(_)
    ));
}
