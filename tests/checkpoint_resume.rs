//! Facade-level checkpoint/resume integration: interrupt a mining run with a
//! budget trip, resume it from the persisted state, and require the final
//! report to be identical to an uninterrupted run — for every mining
//! algorithm — plus corruption fallback on the way.

use h_divexplorer::checkpoint::CheckpointStore;
use h_divexplorer::core::{ExplorationMode, HDivExplorer, HDivExplorerConfig};
use h_divexplorer::data::{DataFrame, DataFrameBuilder, Value};
use h_divexplorer::governor::RunBudget;
use h_divexplorer::mining::MiningAlgorithm;
use h_divexplorer::stats::Outcome;

/// Deterministic fixture: errors cluster at x > 55 & g = b.
fn setup() -> (DataFrame, Vec<Outcome>) {
    let mut b = DataFrameBuilder::new();
    b.add_continuous("x").unwrap();
    b.add_categorical("g").unwrap();
    let mut outcomes = Vec::new();
    for i in 0..400usize {
        let x = (i % 100) as f64;
        let g = if i % 2 == 0 { "a" } else { "b" };
        b.push_row(vec![Value::Num(x), Value::Cat(g.to_string())])
            .unwrap();
        outcomes.push(Outcome::Bool(x > 55.0 && g == "b" && i % 5 != 0));
    }
    (b.finish(), outcomes)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hdx-facade-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(algorithm: MiningAlgorithm, budget: RunBudget) -> HDivExplorerConfig {
    HDivExplorerConfig {
        min_support: 0.05,
        algorithm,
        budget,
        ..HDivExplorerConfig::default()
    }
}

/// Asserts two reports describe the same subgroups with the same statistics.
fn assert_same_report(
    a: &h_divexplorer::core::DivergenceReport,
    b: &h_divexplorer::core::DivergenceReport,
) {
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.label, rb.label);
        assert!((ra.support - rb.support).abs() < 1e-12, "{}", ra.label);
        match (ra.divergence, rb.divergence) {
            (Some(da), Some(db)) => {
                assert!((da - db).abs() < 1e-12, "{}: {da} vs {db}", ra.label);
            }
            (da, db) => assert_eq!(da, db, "{}", ra.label),
        }
    }
}

/// Budget-trips a checkpointed run two itemsets short of completion, then
/// resumes it unbounded: the resumed report must equal the uninterrupted one.
fn interrupted_resume_roundtrip(algorithm: MiningAlgorithm, tag: &str) {
    let (df, outcomes) = setup();
    let plain = HDivExplorer::new(config(algorithm, RunBudget::unbounded())).fit_mode(
        &df,
        &outcomes,
        ExplorationMode::Generalized,
    );
    assert!(!plain.is_partial());
    let total = plain.report.records.len() as u64;
    assert!(total > 4, "fixture must mine enough itemsets to interrupt");

    let dir = tmp_dir(tag);
    let store = CheckpointStore::create(&dir).unwrap();
    let capped = HDivExplorer::new(config(
        algorithm,
        RunBudget::unbounded().with_max_itemsets(total - 2),
    ))
    .fit_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
    .unwrap();
    assert!(capped.result.is_partial(), "cap must trip mid-mining");
    assert!(capped.checkpoint_writes > 0, "boundaries must persist");
    assert!(capped.checkpoint_error.is_none());

    let store = CheckpointStore::open(&dir).unwrap();
    let resumed = HDivExplorer::new(config(algorithm, RunBudget::unbounded()))
        .resume_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
        .unwrap();
    assert!(!resumed.result.is_partial());
    assert!(resumed.resumed_seq.is_some());
    assert_eq!(resumed.rejected_checkpoints, 0);
    assert_same_report(&plain.report, &resumed.result.report);
}

#[test]
fn apriori_interrupt_and_resume_match_uninterrupted() {
    interrupted_resume_roundtrip(MiningAlgorithm::Apriori, "apriori");
}

#[test]
fn fpgrowth_interrupt_and_resume_match_uninterrupted() {
    interrupted_resume_roundtrip(MiningAlgorithm::FpGrowth, "fpgrowth");
}

#[test]
fn vertical_interrupt_and_resume_match_uninterrupted() {
    interrupted_resume_roundtrip(MiningAlgorithm::Vertical, "vertical");
}

/// Flipping one byte in the newest checkpoint must not break resume: the
/// loader detects the damage and falls back to the previous valid file.
#[test]
fn corrupt_newest_checkpoint_falls_back_to_older_one() {
    let (df, outcomes) = setup();
    let plain = HDivExplorer::new(config(MiningAlgorithm::Vertical, RunBudget::unbounded()))
        .fit_mode(&df, &outcomes, ExplorationMode::Generalized);
    let total = plain.report.records.len() as u64;

    let dir = tmp_dir("corrupt");
    let store = CheckpointStore::create(&dir).unwrap();
    let capped = HDivExplorer::new(config(
        MiningAlgorithm::Vertical,
        RunBudget::unbounded().with_max_itemsets(total - 2),
    ))
    .fit_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
    .unwrap();
    assert!(
        capped.checkpoint_writes >= 2,
        "need an older file to fall back to"
    );

    // Damage the newest checkpoint mid-payload.
    let store = CheckpointStore::open(&dir).unwrap();
    let newest = *store.sequences().unwrap().last().unwrap();
    let path = store.path_of(newest);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, bytes).unwrap();

    let resumed = HDivExplorer::new(config(MiningAlgorithm::Vertical, RunBudget::unbounded()))
        .resume_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
        .unwrap();
    assert_eq!(
        resumed.rejected_checkpoints, 1,
        "the flipped byte was detected"
    );
    assert!(!resumed.result.is_partial());
    assert_same_report(&plain.report, &resumed.result.report);
}

/// Resuming against a dataset whose cells changed is refused outright — the
/// persisted statistics would silently describe the wrong data.
#[test]
fn resume_is_refused_for_a_different_dataset() {
    let (df, mut outcomes) = setup();
    let plain = HDivExplorer::new(config(MiningAlgorithm::Vertical, RunBudget::unbounded()))
        .fit_mode(&df, &outcomes, ExplorationMode::Generalized);
    let total = plain.report.records.len() as u64;

    let dir = tmp_dir("identity");
    let store = CheckpointStore::create(&dir).unwrap();
    HDivExplorer::new(config(
        MiningAlgorithm::Vertical,
        RunBudget::unbounded().with_max_itemsets(total - 2),
    ))
    .fit_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
    .unwrap();

    outcomes[0] = Outcome::Bool(true);
    let store = CheckpointStore::open(&dir).unwrap();
    let err = HDivExplorer::new(config(MiningAlgorithm::Vertical, RunBudget::unbounded()))
        .resume_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
        .unwrap_err();
    assert!(
        err.to_string().contains("dataset fingerprint mismatch"),
        "{err}"
    );
}
