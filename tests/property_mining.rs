//! Property-based tests of the mining substrate: the three miners agree on
//! arbitrary transaction databases, results match a brute-force oracle, and
//! the classic frequent-itemset invariants hold.

use std::collections::HashMap;

use h_divexplorer::core::invariants::validate_sign_homogeneity;
use h_divexplorer::core::{mine_with_polarity, split_by_polarity};
use h_divexplorer::data::AttrId;
use h_divexplorer::items::invariants as item_invariants;
use h_divexplorer::items::{Interval, Item, ItemCatalog, ItemId, Itemset};
use h_divexplorer::mining::invariants as mining_invariants;
use h_divexplorer::mining::{mine, MiningAlgorithm, MiningConfig, Transactions};
use h_divexplorer::stats::Outcome;
use proptest::prelude::*;

/// A random transaction database over `n_attrs` attributes with up to
/// `max_levels` items each; generalized-style rows may carry several items
/// of the same attribute.
#[derive(Debug, Clone)]
struct Db {
    catalog: ItemCatalog,
    transactions: Transactions,
}

fn db_strategy() -> impl Strategy<Value = Db> {
    // (n_attrs, levels per attr, rows as (item indices, outcome))
    (2usize..5, 2usize..4, 5usize..60).prop_flat_map(|(n_attrs, n_levels, n_rows)| {
        let n_items = n_attrs * n_levels;
        let row = (
            proptest::collection::vec(0..n_items, 0..=n_items.min(6)),
            prop_oneof![
                Just(Outcome::Undefined),
                any::<bool>().prop_map(Outcome::Bool),
                (-100.0..100.0f64).prop_map(Outcome::Real),
            ],
        );
        proptest::collection::vec(row, n_rows).prop_map(move |rows| {
            let mut catalog = ItemCatalog::new();
            let ids: Vec<ItemId> = (0..n_items)
                .map(|i| {
                    let attr = AttrId((i / n_levels) as u16);
                    catalog.intern(Item::cat_eq(
                        attr,
                        (i % n_levels) as u32,
                        &format!("a{}", i / n_levels),
                        &format!("v{}", i % n_levels),
                    ))
                })
                .collect();
            let (items, outcomes): (Vec<Vec<ItemId>>, Vec<Outcome>) = rows
                .into_iter()
                .map(|(idxs, o)| (idxs.into_iter().map(|i| ids[i]).collect::<Vec<_>>(), o))
                .unzip();
            Db {
                catalog,
                transactions: Transactions::from_rows(items, outcomes),
            }
        })
    })
}

fn normalised(
    db: &Db,
    algorithm: MiningAlgorithm,
    min_support: f64,
) -> Vec<(Itemset, u64, u64, Option<f64>)> {
    let config = MiningConfig {
        min_support,
        max_len: None,
        algorithm,
        threads: None,
    };
    let result = mine(&db.transactions, &db.catalog, &config);
    let mut v: Vec<(Itemset, u64, u64, Option<f64>)> = result
        .itemsets
        .iter()
        .map(|fi| {
            (
                fi.itemset.clone(),
                fi.accum.count(),
                fi.accum.valid_count(),
                fi.accum.statistic(),
            )
        })
        .collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Equality up to floating-point summation order (FP-Growth merges node
/// accumulators in a different order than the row-order miners, which can
/// shift the statistic by an ulp).
fn assert_equivalent(
    a: &[(Itemset, u64, u64, Option<f64>)],
    b: &[(Itemset, u64, u64, Option<f64>)],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(&x.0, &y.0);
        prop_assert_eq!(x.1, y.1);
        prop_assert_eq!(x.2, y.2);
        match (x.3, y.3) {
            (None, None) => {}
            (Some(p), Some(q)) => {
                prop_assert!((p - q).abs() <= 1e-9 * (1.0 + p.abs()), "{} vs {}", p, q)
            }
            other => prop_assert!(false, "statistic mismatch {:?}", other),
        }
    }
    Ok(())
}

/// Brute-force accumulator recount for one itemset.
fn brute_force(db: &Db, itemset: &Itemset) -> (u64, u64, f64) {
    let t = &db.transactions;
    let mut count = 0u64;
    let mut acc = h_divexplorer::stats::StatAccum::new();
    for row in 0..t.n_rows() {
        let items = t.items(row);
        if itemset.items().iter().all(|i| items.contains(i)) {
            count += 1;
            acc.push(t.outcome(row));
        }
    }
    (
        count,
        acc.valid_count(),
        acc.statistic().unwrap_or(f64::NAN),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apriori, FP-Growth and the vertical miner return identical itemsets
    /// with identical accumulators.
    #[test]
    fn miners_agree(db in db_strategy(), s in 0.02f64..0.6) {
        let a = normalised(&db, MiningAlgorithm::Apriori, s);
        let f = normalised(&db, MiningAlgorithm::FpGrowth, s);
        let v = normalised(&db, MiningAlgorithm::Vertical, s);
        let vp = normalised(&db, MiningAlgorithm::VerticalParallel, s);
        assert_equivalent(&a, &v)?;
        assert_equivalent(&f, &v)?;
        assert_equivalent(&vp, &v)?;
    }

    /// Every mined itemset's count and statistic match a brute-force scan,
    /// and meet the support threshold; no itemset constrains an attribute
    /// twice.
    #[test]
    fn mined_itemsets_are_correct(db in db_strategy(), s in 0.05f64..0.5) {
        let result = mine(
            &db.transactions,
            &db.catalog,
            &MiningConfig { min_support: s, max_len: None, algorithm: MiningAlgorithm::Vertical, threads: None },
        );
        let min_count = (s * db.transactions.n_rows() as f64).ceil().max(1.0) as u64;
        for fi in &result.itemsets {
            let (count, valid, stat) = brute_force(&db, &fi.itemset);
            prop_assert_eq!(fi.accum.count(), count);
            prop_assert_eq!(fi.accum.valid_count(), valid);
            if !stat.is_nan() {
                prop_assert!((fi.accum.statistic().unwrap() - stat).abs() < 1e-9);
            }
            prop_assert!(count >= min_count);
            let attrs: Vec<_> = fi.itemset.items().iter().map(|&i| db.catalog.attr_of(i)).collect();
            let mut unique = attrs.clone();
            unique.sort();
            unique.dedup();
            prop_assert_eq!(attrs.len(), unique.len());
        }
    }

    /// Anti-monotonicity: every subset of a frequent itemset is frequent,
    /// with support at least as large.
    #[test]
    fn support_is_anti_monotone(db in db_strategy(), s in 0.05f64..0.5) {
        let result = mine(
            &db.transactions,
            &db.catalog,
            &MiningConfig { min_support: s, max_len: None, algorithm: MiningAlgorithm::FpGrowth, threads: None },
        );
        let counts: HashMap<&Itemset, u64> = result
            .itemsets
            .iter()
            .map(|fi| (&fi.itemset, fi.accum.count()))
            .collect();
        for fi in &result.itemsets {
            if fi.itemset.len() < 2 {
                continue;
            }
            for sub in fi.itemset.sub_itemsets() {
                let sub_count = counts.get(&sub).copied();
                prop_assert!(sub_count.is_some(), "subset {:?} missing", sub);
                prop_assert!(sub_count.unwrap() >= fi.accum.count());
            }
        }
    }

    /// Completeness at the singleton level: every item with count ≥ ⌈s·n⌉
    /// appears as a frequent singleton.
    #[test]
    fn singletons_complete(db in db_strategy(), s in 0.05f64..0.5) {
        let result = mine(
            &db.transactions,
            &db.catalog,
            &MiningConfig { min_support: s, max_len: None, algorithm: MiningAlgorithm::Vertical, threads: None },
        );
        let min_count = (s * db.transactions.n_rows() as f64).ceil().max(1.0) as u64;
        for (item, acc) in db.transactions.item_stats() {
            let singleton = Itemset::singleton(item);
            let mined = result.find(&singleton);
            if acc.count() >= min_count {
                prop_assert!(mined.is_some());
            } else {
                prop_assert!(mined.is_none());
            }
        }
    }

    /// Polarity pruning returns a subset without duplicates, always keeping
    /// the all-same-polarity itemsets (in particular every singleton).
    #[test]
    fn polarity_pruning_is_consistent(db in db_strategy(), s in 0.05f64..0.5) {
        let config = MiningConfig { min_support: s, max_len: None, algorithm: MiningAlgorithm::Vertical, threads: None };
        let full = mine(&db.transactions, &db.catalog, &config);
        let pruned = mine_with_polarity(&db.transactions, &db.catalog, &config);
        let full_set: std::collections::HashSet<&Itemset> =
            full.itemsets.iter().map(|fi| &fi.itemset).collect();
        let mut seen = std::collections::HashSet::new();
        for fi in &pruned.itemsets {
            prop_assert!(full_set.contains(&fi.itemset));
            prop_assert!(seen.insert(fi.itemset.clone()), "duplicate {:?}", fi.itemset);
        }
        // Singletons always survive pruning.
        let singles_full = full.itemsets.iter().filter(|fi| fi.itemset.len() == 1).count();
        let singles_pruned = pruned.itemsets.iter().filter(|fi| fi.itemset.len() == 1).count();
        prop_assert_eq!(singles_full, singles_pruned);
        // The polarity split covers every item.
        let (pos, neg) = split_by_polarity(&db.transactions);
        for item in db.transactions.distinct_items() {
            prop_assert!(pos.contains(&item) || neg.contains(&item));
        }
    }

    /// The runtime invariant checker accepts every miner's output: canonical
    /// itemsets, support ≥ ⌈s·n⌉ and anti-monotonicity. These are exactly the
    /// checks `--features debug-invariants` runs inside `mine` itself, so this
    /// doubles as a meta-test of the checker on arbitrary databases.
    #[test]
    fn invariant_checker_accepts_miner_output(db in db_strategy(), s in 0.05f64..0.5) {
        for algorithm in [
            MiningAlgorithm::Apriori,
            MiningAlgorithm::FpGrowth,
            MiningAlgorithm::Vertical,
            MiningAlgorithm::VerticalParallel,
        ] {
            let config = MiningConfig { min_support: s, max_len: None, algorithm, threads: None };
            let result = mine(&db.transactions, &db.catalog, &config);
            let min_count = config.min_count(db.transactions.n_rows());
            let verdict = mining_invariants::validate_result(&result, &db.catalog, min_count);
            prop_assert!(verdict.is_ok(), "{:?}: {}", algorithm, verdict.unwrap_err());
        }
    }

    /// The sign-homogeneity checker accepts every polarity-pruned result
    /// (§V-C): no mined itemset mixes strictly-positive and strictly-negative
    /// items.
    #[test]
    fn invariant_checker_accepts_polarity_output(db in db_strategy(), s in 0.05f64..0.5) {
        let config = MiningConfig {
            min_support: s,
            max_len: None,
            algorithm: MiningAlgorithm::Vertical,
            threads: None,
        };
        let pruned = mine_with_polarity(&db.transactions, &db.catalog, &config);
        let verdict = validate_sign_homogeneity(&pruned, &db.transactions);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}

/// Negative tests: the checker must reject hand-built ill-formed itemsets
/// that no miner should ever produce.
mod invariant_rejections {
    use super::*;

    /// An itemset combining an ancestor interval item with its descendant —
    /// two items of the same attribute — violates the one-item-per-attribute
    /// invariant and is rejected with `DuplicateAttribute`.
    #[test]
    fn ancestor_descendant_itemset_rejected() {
        let mut catalog = ItemCatalog::new();
        let attr = AttrId(0);
        let ancestor = catalog.intern(Item::range(attr, Interval::new(0.0, 10.0), "x"));
        let descendant = catalog.intern(Item::range(attr, Interval::new(0.0, 5.0), "x"));
        let mut ids = vec![ancestor, descendant];
        ids.sort();
        // Bypasses `Itemset::new`'s attribute check (ids are sorted, so the
        // canonical-order debug assertion stays quiet).
        let itemset = Itemset::from_sorted_unchecked(ids);
        match item_invariants::validate_itemset(&itemset, &catalog) {
            Err(item_invariants::InvariantViolation::DuplicateAttribute {
                first, second, ..
            }) => {
                let mut reported = [first, second];
                reported.sort();
                let mut expected = [ancestor, descendant];
                expected.sort();
                assert_eq!(reported, expected);
            }
            other => panic!("expected DuplicateAttribute, got {other:?}"),
        }
    }

    /// Out-of-order item ids are rejected with `NotCanonical`.
    #[test]
    fn unsorted_items_rejected() {
        let ids = [ItemId(3), ItemId(1)];
        match item_invariants::validate_canonical_order(&ids) {
            Err(item_invariants::InvariantViolation::NotCanonical { .. }) => {}
            other => panic!("expected NotCanonical, got {other:?}"),
        }
    }
}
