//! Property-based tests of the checkpoint envelope: sealing must round-trip
//! arbitrary payloads, and *any* single-byte corruption or truncation of the
//! sealed bytes must be rejected by the loader — never mis-decoded.

use h_divexplorer::checkpoint::envelope;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Seal → open is the identity on arbitrary payloads.
    #[test]
    fn seal_open_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let sealed = envelope::seal(&payload);
        prop_assert!(sealed.len() >= envelope::HEADER_LEN);
        prop_assert_eq!(&sealed[..envelope::MAGIC.len()], &envelope::MAGIC[..]);
        prop_assert_eq!(envelope::open(&sealed).unwrap(), payload);
    }

    /// Flipping any single byte anywhere in the sealed envelope — magic,
    /// length, CRC, or payload — makes `open` reject it.
    #[test]
    fn any_single_byte_flip_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
        pos_seed in any::<usize>(),
        flip in 1u8..,
    ) {
        let sealed = envelope::seal(&payload);
        let mut damaged = sealed.clone();
        let pos = pos_seed % damaged.len();
        damaged[pos] ^= flip;
        prop_assert!(
            envelope::open(&damaged).is_err(),
            "flip of byte {pos} (of {}) went undetected",
            damaged.len()
        );
    }

    /// Every strict prefix of a sealed envelope (a torn write) is rejected.
    #[test]
    fn truncation_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
        cut_seed in any::<usize>(),
    ) {
        let sealed = envelope::seal(&payload);
        let cut = cut_seed % sealed.len();
        prop_assert!(envelope::open(&sealed[..cut]).is_err());
    }

    /// Trailing garbage appended after the sealed payload is rejected — a
    /// checkpoint file is exactly one envelope.
    #[test]
    fn trailing_garbage_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut sealed = envelope::seal(&payload);
        sealed.extend_from_slice(&garbage);
        prop_assert!(envelope::open(&sealed).is_err());
    }
}
