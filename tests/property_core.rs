//! Property-based tests of the core data structures: bitsets, intervals,
//! accumulators and itemsets.

use h_divexplorer::data::{AttrId, DataFrameBuilder, Value};
use h_divexplorer::discretize::invariants as tree_invariants;
use h_divexplorer::discretize::{GainCriterion, TreeDiscretizer};
use h_divexplorer::items::{Bitset, Interval, Item, ItemCatalog, Itemset};
use h_divexplorer::stats::{MeanVar, Outcome, StatAccum};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bitset intersection agrees with set semantics, and all three
    /// intersection APIs agree with each other.
    #[test]
    fn bitset_intersection_semantics(
        len in 1usize..300,
        a_idx in proptest::collection::vec(0usize..300, 0..80),
        b_idx in proptest::collection::vec(0usize..300, 0..80),
    ) {
        let a: Vec<usize> = a_idx.into_iter().filter(|&i| i < len).collect();
        let b: Vec<usize> = b_idx.into_iter().filter(|&i| i < len).collect();
        let ba = Bitset::from_indices(len, a.iter().copied());
        let bb = Bitset::from_indices(len, b.iter().copied());
        let expected: std::collections::BTreeSet<usize> = a
            .iter()
            .filter(|i| b.contains(i))
            .copied()
            .collect();
        let and = ba.and(&bb);
        prop_assert_eq!(and.iter_ones().collect::<Vec<_>>(), expected.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.and_count(&bb), expected.len());
        let mut c = ba.clone();
        c.and_assign(&bb);
        prop_assert_eq!(c, and);
    }

    /// `iter_ones` inverts `from_indices`.
    #[test]
    fn bitset_roundtrip(len in 1usize..300, idx in proptest::collection::vec(0usize..300, 0..100)) {
        let idx: std::collections::BTreeSet<usize> = idx.into_iter().filter(|&i| i < len).collect();
        let b = Bitset::from_indices(len, idx.iter().copied());
        prop_assert_eq!(b.iter_ones().collect::<Vec<_>>(), idx.into_iter().collect::<Vec<_>>());
    }

    /// Splitting an interval partitions it: every point lands on exactly one
    /// side.
    #[test]
    fn interval_split_partitions(
        lo in -100.0f64..100.0,
        width in 0.1f64..100.0,
        t in 0.001f64..0.999,
        probes in proptest::collection::vec(-150.0f64..250.0, 20),
    ) {
        let hi = lo + width;
        let j = Interval::new(lo, hi);
        let split = lo + t * width;
        prop_assume!(split > lo && split < hi);
        let (l, r) = j.split_at(split);
        for p in probes {
            let in_j = j.contains(p);
            let in_l = l.contains(p);
            let in_r = r.contains(p);
            prop_assert_eq!(in_j, in_l || in_r);
            prop_assert!(!(in_l && in_r));
        }
    }

    /// StatAccum merging is associative-equivalent to sequential pushes, and
    /// the boolean statistic equals k⁺/(k⁺+k⁻).
    #[test]
    fn stat_accum_merge_consistency(
        bools in proptest::collection::vec(proptest::option::of(any::<bool>()), 1..100),
        split_at in 0usize..100,
    ) {
        let outcomes: Vec<Outcome> = bools
            .iter()
            .map(|o| o.map_or(Outcome::Undefined, Outcome::Bool))
            .collect();
        let cut = split_at % outcomes.len();
        let whole = StatAccum::from_outcomes(&outcomes);
        let mut left = StatAccum::from_outcomes(&outcomes[..cut]);
        left.merge(&StatAccum::from_outcomes(&outcomes[cut..]));
        prop_assert_eq!(whole, left);

        let k_pos = bools.iter().filter(|o| **o == Some(true)).count() as f64;
        let k_valid = bools.iter().filter(|o| o.is_some()).count() as f64;
        match whole.statistic() {
            Some(s) => prop_assert!((s - k_pos / k_valid).abs() < 1e-12),
            None => prop_assert_eq!(k_valid, 0.0),
        }
    }

    /// MeanVar matches the closed-form mean/variance.
    #[test]
    fn meanvar_matches_closed_form(xs in proptest::collection::vec(-1e3f64..1e3, 2..60)) {
        let acc: MeanVar = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((acc.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!((acc.variance() - var).abs() < 1e-8 * (1.0 + var));
    }

    /// Itemset construction enforces canonical order and per-attribute
    /// uniqueness for arbitrary item selections.
    #[test]
    fn itemset_invariants(picks in proptest::collection::vec((0u16..5, 0u32..4), 0..10)) {
        let mut catalog = ItemCatalog::new();
        let ids: Vec<_> = picks
            .iter()
            .map(|&(attr, code)| {
                catalog.intern(Item::cat_eq(
                    AttrId(attr),
                    code,
                    &format!("a{attr}"),
                    &format!("v{code}"),
                ))
            })
            .collect();
        match Itemset::new(ids.clone(), &catalog) {
            Some(itemset) => {
                // Sorted, unique, one per attribute.
                let items = itemset.items();
                prop_assert!(items.windows(2).all(|w| w[0] < w[1]));
                let attrs: std::collections::HashSet<_> =
                    items.iter().map(|&i| catalog.attr_of(i)).collect();
                prop_assert_eq!(attrs.len(), items.len());
                // All distinct inputs are members.
                for id in &ids {
                    prop_assert!(itemset.contains(*id));
                }
            }
            None => {
                // Rejection implies two *distinct* items share an attribute.
                let mut dedup = ids.clone();
                dedup.sort();
                dedup.dedup();
                let attrs: Vec<_> = dedup.iter().map(|&i| catalog.attr_of(i)).collect();
                let mut unique = attrs.clone();
                unique.sort();
                unique.dedup();
                prop_assert!(unique.len() < attrs.len());
            }
        }
    }

    /// Every tree the discretizer builds satisfies the structural invariants
    /// checked by `--features debug-invariants`: non-root supports ≥ st,
    /// binary splits only, children partitioning their parent's support —
    /// for both gain criteria, across arbitrary value/outcome columns
    /// (including missing values and undefined outcomes).
    #[test]
    fn discretization_trees_satisfy_invariants(
        cells in proptest::collection::vec(
            (proptest::option::of(-50.0f64..50.0), proptest::option::of(any::<bool>())),
            10..120,
        ),
        min_support in 0.05f64..0.45,
        entropy in any::<bool>(),
    ) {
        let mut b = DataFrameBuilder::new();
        let attr = b.add_continuous("x").expect("fresh builder accepts x");
        let mut outcomes = Vec::with_capacity(cells.len());
        for (value, outcome) in &cells {
            b.push_row(vec![Value::Num(value.unwrap_or(f64::NAN))])
                .expect("row arity matches schema");
            outcomes.push(outcome.map_or(Outcome::Undefined, Outcome::Bool));
        }
        let df = b.finish();
        let criterion = if entropy { GainCriterion::Entropy } else { GainCriterion::Divergence };
        let discretizer = TreeDiscretizer::with_support(min_support, criterion);
        let mut catalog = ItemCatalog::new();
        let (_, tree) = discretizer.discretize_attribute(&df, attr, &outcomes, &mut catalog);
        let verdict = tree_invariants::validate_tree(&tree, min_support);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}
