//! Property-based tests of the word-level outcome kernels: for arbitrary
//! outcome vectors (boolean, continuous, mixed, with missing values) and
//! arbitrary cover bitsets, [`OutcomePlanes`] produces accumulators that are
//! *exactly* equal to the scalar row-walking reference path. The kernels
//! drain cover words lowest-bit-first, so even the floating-point summation
//! order matches the scalar `StatAccum::push` loop bit for bit.

use h_divexplorer::items::Bitset;
use h_divexplorer::mining::accum_scalar;
use h_divexplorer::stats::{Outcome, OutcomePlanes, StatAccum};
use proptest::prelude::*;

/// An arbitrary outcome drawn from every kind the paper's statistics layer
/// supports: boolean (classification metrics), real (continuous divergence),
/// and missing.
fn outcome_strategy() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Undefined),
        any::<bool>().prop_map(Outcome::Bool),
        (-1e6f64..1e6).prop_map(Outcome::Real),
    ]
}

/// A purely boolean-or-missing outcome vector (takes the popcount fast path).
fn boolean_outcomes() -> impl Strategy<Value = Vec<Outcome>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Outcome::Undefined),
            any::<bool>().prop_map(Outcome::Bool),
        ],
        0..300,
    )
}

/// A mixed outcome vector (forces the masked word-chunked summation path).
fn mixed_outcomes() -> impl Strategy<Value = Vec<Outcome>> {
    proptest::collection::vec(outcome_strategy(), 0..300)
}

/// A random cover over `n` rows, as row indices.
fn cover_for(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..n.max(1), 0..=n)
}

fn bitset_from(n: usize, indices: &[usize]) -> Bitset {
    Bitset::from_indices(n, indices.iter().copied().filter(|&i| i < n))
}

/// Scalar reference accumulation over an explicit cover, bypassing the
/// mining crate entirely — a second, independent oracle.
fn brute(cover: &Bitset, outcomes: &[Outcome]) -> StatAccum {
    let mut acc = StatAccum::new();
    for row in cover.iter_ones() {
        acc.push(outcomes[row]);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Boolean fast path: three fused popcounts reproduce the pushed
    /// accumulator exactly (integer-valued sums are exact in f64).
    #[test]
    fn boolean_kernel_is_exact(outcomes in boolean_outcomes(), idxs in cover_for(300)) {
        let n = outcomes.len();
        let cover = bitset_from(n, &idxs);
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        prop_assert!(planes.is_boolean());
        let kernel = planes.accum(cover.words(), cover.count() as u64);
        prop_assert_eq!(kernel, accum_scalar(&cover, &outcomes));
        prop_assert_eq!(kernel, brute(&cover, &outcomes));
    }

    /// Numeric/mixed path: the masked word-chunked summation visits rows in
    /// ascending order, so sums match the scalar path bit for bit — not just
    /// within a tolerance.
    #[test]
    fn mixed_kernel_is_exact(outcomes in mixed_outcomes(), idxs in cover_for(300)) {
        let n = outcomes.len();
        let cover = bitset_from(n, &idxs);
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        let kernel = planes.accum(cover.words(), cover.count() as u64);
        let scalar = accum_scalar(&cover, &outcomes);
        prop_assert_eq!(kernel.count(), scalar.count());
        prop_assert_eq!(kernel.valid_count(), scalar.valid_count());
        // Exact equality: same values added in the same order.
        prop_assert_eq!(kernel, scalar);
        prop_assert_eq!(kernel, brute(&cover, &outcomes));
    }

    /// The fused pair kernel (used for leaf candidates that never
    /// materialise a joint bitset) equals accumulating over the
    /// materialised intersection.
    #[test]
    fn pair_kernel_equals_materialised(
        outcomes in mixed_outcomes(),
        a_idx in cover_for(300),
        b_idx in cover_for(300),
    ) {
        let n = outcomes.len();
        let a = bitset_from(n, &a_idx);
        let b = bitset_from(n, &b_idx);
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        let joint = a.and(&b);
        let fused = planes.accum_pair(a.words(), b.words(), joint.count() as u64);
        let materialised = planes.accum(joint.words(), joint.count() as u64);
        prop_assert_eq!(fused, materialised);
        prop_assert_eq!(fused, accum_scalar(&joint, &outcomes));
    }

    /// `StatAccum::from_counts` is bitwise-identical to pushing the same
    /// boolean outcomes one by one.
    #[test]
    fn from_counts_matches_pushes(outcomes in boolean_outcomes()) {
        let mut pushed = StatAccum::new();
        let (mut n_valid, mut positives) = (0u64, 0u64);
        for o in &outcomes {
            pushed.push(*o);
            if let Outcome::Bool(b) = o {
                n_valid += 1;
                positives += u64::from(*b);
            }
        }
        let direct = StatAccum::from_counts(outcomes.len() as u64, n_valid, positives);
        prop_assert_eq!(direct, pushed);
    }
}
