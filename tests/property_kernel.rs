//! Property-based tests of the word-level outcome kernels, over **every**
//! dispatch path the host can run ([`available_kernels`] — scalar, portable,
//! and whichever of AVX2/AVX-512/NEON the CPU offers; the `HDX_FORCE_SCALAR`
//! environment override is the same [`KernelPath::Scalar`] the CI dispatch
//! matrix pins). The equivalence contract under test:
//!
//! * **counts** (rows, valid rows) are exact on every path;
//! * **integer-valued** outcome sums are *bitwise identical* across all
//!   paths and equal to a row-walking reference — every partial stays well
//!   below 2⁵³ so f64 addition is associative on them;
//! * **arbitrary real** sums agree within the reassociation bound of the
//!   16-lane canonical layout (each row participates in one of ≤ 17
//!   accumulation chains, so the error is `O(n · eps · Σ|x|)`), and all
//!   vector paths agree with each other *bitwise* (shared lane layout and
//!   fixed-order reduction);
//! * the **boolean** popcount fast path and the **fused pair** kernel are
//!   exact accumulator-for-accumulator.
//!
//! [`KernelPath::Scalar`]: h_divexplorer::stats::KernelPath::Scalar

use h_divexplorer::items::Bitset;
use h_divexplorer::mining::accum_scalar;
use h_divexplorer::stats::simd::masked_sums_on;
use h_divexplorer::stats::{available_kernels, KernelPath, Outcome, OutcomePlanes, StatAccum};
use proptest::prelude::*;

/// An arbitrary outcome drawn from every kind the paper's statistics layer
/// supports: boolean (classification metrics), real (continuous divergence),
/// and missing.
fn outcome_strategy() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Undefined),
        any::<bool>().prop_map(Outcome::Bool),
        (-1e6f64..1e6).prop_map(Outcome::Real),
    ]
}

/// A purely boolean-or-missing outcome vector (takes the popcount fast path).
fn boolean_outcomes() -> impl Strategy<Value = Vec<Outcome>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Outcome::Undefined),
            any::<bool>().prop_map(Outcome::Bool),
        ],
        0..300,
    )
}

/// A mixed outcome vector (forces the masked word-chunked summation path).
fn mixed_outcomes() -> impl Strategy<Value = Vec<Outcome>> {
    proptest::collection::vec(outcome_strategy(), 0..300)
}

/// `(value, valid)` rows for driving [`masked_sums_on`] directly:
/// integer-valued f64s (exact under any summation order) or arbitrary reals.
fn rows(integer_valued: bool, max_len: usize) -> impl Strategy<Value = Vec<(f64, bool)>> {
    let value = if integer_valued {
        (-1_000_000i64..1_000_000).prop_map(|v| v as f64).boxed()
    } else {
        (-1e6f64..1e6).boxed()
    };
    proptest::collection::vec((value, any::<bool>()), 0..max_len)
}

/// A random cover over `n` rows, as row indices.
fn cover_for(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..n.max(1), 0..=n)
}

fn bitset_from(n: usize, indices: &[usize]) -> Bitset {
    Bitset::from_indices(n, indices.iter().copied().filter(|&i| i < n))
}

/// Packs per-row `(value, valid)` pairs into the word-parallel layout the
/// kernels consume (invalid rows keep their value but leave the mask bit
/// clear — the kernels must never touch them).
fn pack(rows: &[(f64, bool)]) -> (Vec<f64>, Vec<u64>) {
    let n = rows.len();
    let mut values = vec![0.0f64; n];
    let mut valid = vec![0u64; n.div_ceil(64)];
    for (i, &(v, ok)) in rows.iter().enumerate() {
        values[i] = v;
        if ok {
            valid[i / 64] |= 1u64 << (i % 64);
        }
    }
    (values, valid)
}

fn cover_words(n: usize, indices: &[usize]) -> Vec<u64> {
    let mut words = vec![0u64; n.div_ceil(64)];
    for &i in indices.iter().filter(|&&i| i < n) {
        words[i / 64] |= 1u64 << (i % 64);
    }
    words
}

/// Independent row-walking oracle for `(count, sum, sum_sq)`.
fn reference(rows: &[(f64, bool)], cover: &[u64]) -> (u64, f64, f64) {
    let (mut count, mut sum, mut sum_sq) = (0u64, 0.0f64, 0.0f64);
    for (i, &(v, ok)) in rows.iter().enumerate() {
        if ok && cover[i / 64] >> (i % 64) & 1 == 1 {
            count += 1;
            sum += v;
            sum_sq += v * v;
        }
    }
    (count, sum, sum_sq)
}

/// Reassociation tolerance for a sum of `n` doubles with magnitude budget
/// `abs_sum`: a generous multiple of `n · eps · Σ|x|`.
fn tolerance(n: usize, abs_sum: f64) -> f64 {
    16.0 * n.max(1) as f64 * f64::EPSILON * abs_sum.max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Integer-valued sums are bitwise identical on every available
    /// dispatch path — scalar, portable, and each arch kernel the host CPU
    /// supports — and equal to the row-walking reference.
    #[test]
    fn integer_sums_bitwise_identical_across_paths(
        data in rows(true, 300),
        idxs in cover_for(300),
    ) {
        let (values, valid) = pack(&data);
        let cover = cover_words(data.len(), &idxs);
        let (ref_count, ref_sum, ref_sq) = reference(&data, &cover);
        for path in available_kernels() {
            let (count, sum, sum_sq) = masked_sums_on(path, &values, &valid, &cover);
            prop_assert_eq!(count, ref_count, "count on {:?}", path);
            prop_assert_eq!(sum.to_bits(), ref_sum.to_bits(), "sum on {:?}", path);
            prop_assert_eq!(sum_sq.to_bits(), ref_sq.to_bits(), "sum_sq on {:?}", path);
        }
    }

    /// Arbitrary-real sums: counts exact on every path; sums agree with the
    /// reference within the reassociation bound; and all vector paths agree
    /// with each other bitwise.
    #[test]
    fn real_sums_ulp_bounded_across_paths(
        data in rows(false, 300),
        idxs in cover_for(300),
    ) {
        let (values, valid) = pack(&data);
        let cover = cover_words(data.len(), &idxs);
        let (ref_count, ref_sum, ref_sq) = reference(&data, &cover);
        let abs: f64 = data
            .iter()
            .filter(|&&(_, ok)| ok)
            .map(|&(v, _)| v.abs())
            .sum();
        let tol = tolerance(data.len(), abs.max(abs * abs));
        let mut vector_results: Vec<(KernelPath, u64, u64)> = Vec::new();
        for path in available_kernels() {
            let (count, sum, sum_sq) = masked_sums_on(path, &values, &valid, &cover);
            prop_assert_eq!(count, ref_count, "count on {:?}", path);
            prop_assert!(
                (sum - ref_sum).abs() <= tol,
                "sum on {:?}: {} vs {}", path, sum, ref_sum
            );
            prop_assert!(
                (sum_sq - ref_sq).abs() <= tol,
                "sum_sq on {:?}: {} vs {}", path, sum_sq, ref_sq
            );
            if path != KernelPath::Scalar {
                vector_results.push((path, sum.to_bits(), sum_sq.to_bits()));
            }
        }
        if let Some(&(first_path, first_sum, first_sq)) = vector_results.first() {
            for &(path, sum, sum_sq) in &vector_results[1..] {
                prop_assert_eq!(sum, first_sum, "{:?} vs {:?}", path, first_path);
                prop_assert_eq!(sum_sq, first_sq, "{:?} vs {:?}", path, first_path);
            }
        }
    }

    /// Boolean fast path: three fused popcounts reproduce the pushed
    /// accumulator exactly (integer-valued sums are exact in f64).
    #[test]
    fn boolean_kernel_is_exact(outcomes in boolean_outcomes(), idxs in cover_for(300)) {
        let n = outcomes.len();
        let cover = bitset_from(n, &idxs);
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        prop_assert!(planes.is_boolean());
        let kernel = planes.accum(cover.words(), cover.count() as u64);
        prop_assert_eq!(kernel, accum_scalar(&cover, &outcomes));
    }

    /// Mixed outcomes through the full [`OutcomePlanes`] pipeline (whatever
    /// kernel `active_kernel()` dispatched to): counts exact, sums within
    /// the reassociation bound of the scalar reference.
    #[test]
    fn mixed_accum_counts_exact_sums_bounded(
        outcomes in mixed_outcomes(),
        idxs in cover_for(300),
    ) {
        let n = outcomes.len();
        let cover = bitset_from(n, &idxs);
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        let kernel = planes.accum(cover.words(), cover.count() as u64);
        let scalar = accum_scalar(&cover, &outcomes);
        prop_assert_eq!(kernel.count(), scalar.count());
        prop_assert_eq!(kernel.valid_count(), scalar.valid_count());
        let (_, _, ksum, ksq) = kernel.raw_parts();
        let (_, _, ssum, ssq) = scalar.raw_parts();
        let abs: f64 = outcomes.iter().filter_map(|o| o.value()).map(f64::abs).sum();
        let tol = tolerance(n, abs.max(abs * abs));
        prop_assert!((ksum - ssum).abs() <= tol, "sum {} vs {}", ksum, ssum);
        prop_assert!((ksq - ssq).abs() <= tol, "sum_sq {} vs {}", ksq, ssq);
    }

    /// The fused pair kernel (used for leaf candidates that never
    /// materialise a joint bitset) is bitwise identical to accumulating
    /// over the materialised intersection: both feed the same masked words
    /// to the same kernel.
    #[test]
    fn pair_kernel_equals_materialised(
        outcomes in mixed_outcomes(),
        a_idx in cover_for(300),
        b_idx in cover_for(300),
    ) {
        let n = outcomes.len();
        let a = bitset_from(n, &a_idx);
        let b = bitset_from(n, &b_idx);
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        let joint = a.and(&b);
        let fused = planes.accum_pair(a.words(), b.words(), joint.count() as u64);
        let materialised = planes.accum(joint.words(), joint.count() as u64);
        prop_assert_eq!(fused, materialised);
    }

    /// `StatAccum::from_counts` is bitwise-identical to pushing the same
    /// boolean outcomes one by one.
    #[test]
    fn from_counts_matches_pushes(outcomes in boolean_outcomes()) {
        let mut pushed = StatAccum::new();
        let (mut n_valid, mut positives) = (0u64, 0u64);
        for o in &outcomes {
            pushed.push(*o);
            if let Outcome::Bool(b) = o {
                n_valid += 1;
                positives += u64::from(*b);
            }
        }
        let direct = StatAccum::from_counts(outcomes.len() as u64, n_valid, positives);
        prop_assert_eq!(direct, pushed);
    }
}
