//! Integration tests asserting the paper's headline experimental claims on
//! scaled-down data, via the same runners the experiment binaries use.

use hdx_bench::experiments::{fig5, fig6, fig7, fig8, table1, table3, table4};
use hdx_bench::Args;

fn args(scale: f64) -> Args {
    Args { scale, seed: 2 }
}

/// Table I: the FPR divergence ladder of the compas subgroups.
#[test]
fn table1_fpr_ladder() {
    let rows = table1::rows(args(0.5));
    assert_eq!(rows.len(), 5);
    let by_name = |name: &str| {
        rows.iter()
            .find(|r| r.subgroup == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    };
    let overall = by_name("Entire dataset");
    assert!(
        (overall.fpr - 0.088).abs() < 0.04,
        "FPR(D) = {}",
        overall.fpr
    );
    assert_eq!(overall.delta_fpr, 0.0);
    // The ladder: #prior>8 ≫ #prior>3 > overall; intersection strongest.
    let gt3 = by_name("#prior>3");
    let gt8 = by_name("#prior>8");
    let young = by_name("age<27");
    let both = by_name("age<27, #prior>3");
    assert!(gt3.delta_fpr > 0.05);
    assert!(gt8.delta_fpr > gt3.delta_fpr + 0.1);
    assert!(young.delta_fpr > 0.02);
    assert!(both.delta_fpr > gt3.delta_fpr);
    // Supports in the paper's ballpark.
    assert!((gt3.support - 0.29).abs() < 0.08);
    assert!((gt8.support - 0.11).abs() < 0.05);
    assert!((young.support - 0.31).abs() < 0.08);
}

/// Table III: manual ≤ tree-base ≤ tree-generalized at every support.
///
/// Uses the paper's full compas size (6,172 rows — still fast): on smaller
/// subsamples the manual-vs-tree comparison gets noisy, exactly because the
/// divergence-driven tree adapts to the sample.
#[test]
fn table3_discretization_ordering() {
    let rows = table3::rows(args(1.0));
    for s in [0.05, 0.025, 0.01] {
        let find = |setting: &str| {
            rows.iter()
                .find(|r| r.s == s && r.setting == setting)
                .unwrap()
                .stats
                .max_divergence
        };
        let manual = find("Manual discretization");
        let base = find("Tree discretization, base");
        let gen = find("Tree discretization, generalized");
        assert!(
            gen >= base - 1e-12,
            "s={s}: generalized {gen} < base {base}"
        );
        assert!(
            gen > manual,
            "s={s}: generalized {gen} should beat manual {manual}"
        );
    }
    // Divergence grows as support shrinks (smaller, more extreme subgroups).
    let gen_at = |s: f64| {
        rows.iter()
            .find(|r| r.s == s && r.setting == "Tree discretization, generalized")
            .unwrap()
            .stats
            .max_divergence
    };
    assert!(gen_at(0.01) > gen_at(0.05));
}

/// Table IV: generalized beats base on the income task at every support.
#[test]
fn table4_income_ordering() {
    let rows = table4::rows(args(0.1));
    for s in [0.05, 0.025, 0.01] {
        let find = |t: &str| {
            rows.iter()
                .find(|r| r.s == s && r.itemset_type == t)
                .unwrap()
                .stats
                .max_divergence
        };
        assert!(find("generalized") >= find("base") - 1e-9, "s={s}");
        assert!(find("base") > 10_000.0, "income divergence is in dollars");
    }
}

/// Fig. 5: at s=0.05, base constrains fewer attributes than generalized and
/// is far less divergent; the generalized ranges bracket the anomaly centre.
#[test]
fn fig5_peak_ranges() {
    let best = fig5::best_itemsets(args(0.5));
    let find = |s: f64, mode: &str| best.iter().find(|b| b.s == s && b.mode == mode).unwrap();
    let base = find(0.05, "base");
    let gen = find(0.05, "generalized");
    let n_constrained = |b: &fig5::BestItemset| b.ranges.iter().flatten().count();
    assert!(n_constrained(base) < n_constrained(gen));
    assert!(gen.divergence > 2.0 * base.divergence);
    // Each generalized range contains the anomaly coordinate.
    for (range, centre) in gen.ranges.iter().zip([0.0, 1.0, 2.0]) {
        if let Some(j) = range {
            assert!(j.contains(centre), "{j} should contain {centre}");
        }
    }
    // Support threshold honoured.
    assert!(gen.support >= 0.05 - 1e-9);
}

/// Fig. 6 / §VI-G: Slice Finder's default search stops shallow; with
/// threshold 1 it returns a slice with tiny support. SliceLine matches base
/// DivExplorer.
#[test]
fn fig6_baseline_behaviour() {
    let r = fig6::results(args(0.5));
    let sf_default = r.sf_default.expect("default search finds a slice");
    let sf_t1 = r.sf_threshold_1.expect("threshold-1 search finds a slice");
    assert!(sf_default.itemset.len() <= 2, "stops shallow");
    assert_eq!(sf_t1.itemset.len(), 3, "forced to the intersection");
    let sup_t1 = sf_t1.size as f64 / r.n_rows as f64;
    assert!(
        sup_t1 < 0.01,
        "no support control: sup = {sup_t1} (paper: 0.0013)"
    );
    // SliceLine's best slice label appears among base DivExplorer's top
    // itemsets at one of the supports.
    assert!(!r.sliceline.is_empty());
    let (_, _, sl_best) = &r.sliceline[0];
    let (_, dx_label, _) = &r.divexplorer_base[0];
    assert_eq!(&sl_best.label, dx_label);
}

/// Fig. 7: tree-hierarchical dominates the best quantile discretization.
#[test]
fn fig7_quantile_dominated() {
    for p in fig7::points(args(0.5)) {
        assert!(
            p.tree_div >= p.quantile_div - 1e-9,
            "s={}: tree {} < quantile {}",
            p.s,
            p.tree_div,
            p.quantile_div
        );
    }
}

/// Fig. 8: generalized exploration is stable in st and always ≥ base.
#[test]
fn fig8_stability() {
    let pts = fig8::points(args(0.5));
    for p in &pts {
        assert!(
            p.gen_div >= p.base_div - 1e-9,
            "{} st={}: gen {} < base {}",
            p.dataset,
            p.st,
            p.gen_div,
            p.base_div
        );
    }
    // Stability: over the paper's st ∈ [0.025, 0.15] range the generalized
    // max divergence varies far less than the base one (relative spread).
    for name in ["synthetic-peak", "compas"] {
        let series: Vec<&fig8::Point> = pts
            .iter()
            .filter(|p| p.dataset == name && (0.025..=0.15).contains(&p.st))
            .collect();
        let spread = |f: &dyn Fn(&fig8::Point) -> f64| {
            let lo = series.iter().map(|p| f(p)).fold(f64::INFINITY, f64::min);
            let hi = series
                .iter()
                .map(|p| f(p))
                .fold(f64::NEG_INFINITY, f64::max);
            (hi - lo) / hi.max(1e-9)
        };
        let gen_spread = spread(&|p| p.gen_div);
        let base_spread = spread(&|p| p.base_div);
        assert!(
            gen_spread <= base_spread + 1e-9,
            "{name}: gen spread {gen_spread} vs base spread {base_spread}"
        );
    }
}
