//! Property-based tests of discretization: trees always produce valid item
//! hierarchies whose leaves partition the data, under both gain criteria and
//! arbitrary data/outcome configurations.

use h_divexplorer::data::{DataFrameBuilder, Value};
use h_divexplorer::discretize::{
    quantile_hierarchy, uniform_hierarchy, GainCriterion, TreeDiscretizer,
};
use h_divexplorer::items::{item_cover, item_matches, HierarchySet, ItemCatalog};
use h_divexplorer::stats::Outcome;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    values: Vec<f64>,
    outcomes: Vec<Outcome>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let cell = (
        prop_oneof![
            8 => -50.0..50.0f64,
            1 => Just(f64::NAN), // nulls
            1 => (0..5i32).prop_map(f64::from), // heavy ties
        ],
        prop_oneof![
            3 => any::<bool>().prop_map(Outcome::Bool),
            1 => Just(Outcome::Undefined),
            2 => (-10.0..10.0f64).prop_map(Outcome::Real),
        ],
    );
    proptest::collection::vec(cell, 20..200).prop_map(|cells| {
        let (values, outcomes) = cells.into_iter().unzip();
        Case { values, outcomes }
    })
}

fn frame_of(case: &Case) -> h_divexplorer::data::DataFrame {
    let mut b = DataFrameBuilder::new();
    b.add_continuous("x").unwrap();
    for &v in &case.values {
        b.push_row(vec![if v.is_nan() {
            Value::Null
        } else {
            Value::Num(v)
        }])
        .unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tree leaves partition the non-null rows; every node's support honours
    /// `st`; the hierarchy mirrors the tree and satisfies Definition 4.1.
    #[test]
    fn tree_invariants(
        case in case_strategy(),
        st in 0.05f64..0.45,
        entropy in any::<bool>(),
    ) {
        let df = frame_of(&case);
        let attr = df.schema().id("x").unwrap();
        let criterion = if entropy { GainCriterion::Entropy } else { GainCriterion::Divergence };
        let mut catalog = ItemCatalog::new();
        let discretizer = TreeDiscretizer::with_support(st, criterion);
        let (hierarchy, tree) =
            discretizer.discretize_attribute(&df, attr, &case.outcomes, &mut catalog);

        // Supports.
        let min_count = (st * df.n_rows() as f64).ceil();
        for node in &tree.nodes[1..] {
            prop_assert!(node.support * df.n_rows() as f64 >= min_count - 1e-9);
        }

        if hierarchy.is_empty() {
            return Ok(());
        }

        // Leaves partition the non-null rows.
        let leaves = hierarchy.leaves();
        for row in 0..df.n_rows() {
            let matched = leaves
                .iter()
                .filter(|&&l| item_matches(&df, &catalog, l, row))
                .count();
            if case.values[row].is_nan() {
                prop_assert_eq!(matched, 0, "null rows match nothing");
            } else {
                prop_assert_eq!(matched, 1, "row {} value {}", row, case.values[row]);
            }
        }

        // Definition 4.1 partition property via covers.
        let mut set = HierarchySet::new();
        set.push(hierarchy);
        prop_assert_eq!(
            set.validate_partition(&catalog, |i| item_cover(&df, &catalog, i)),
            Ok(())
        );
    }

    /// Parent statistics are consistent: a node's accumulated statistic is
    /// the cover-weighted combination of its children's.
    #[test]
    fn tree_statistics_consistent(case in case_strategy(), st in 0.05f64..0.3) {
        let df = frame_of(&case);
        let attr = df.schema().id("x").unwrap();
        let mut catalog = ItemCatalog::new();
        let discretizer = TreeDiscretizer::with_support(st, GainCriterion::Divergence);
        let (_, tree) = discretizer.discretize_attribute(&df, attr, &case.outcomes, &mut catalog);
        for node in &tree.nodes {
            if node.children.is_empty() {
                continue;
            }
            // Support adds up exactly.
            let child_support: f64 = node.children.iter().map(|&c| tree.nodes[c].support).sum();
            prop_assert!((child_support - node.support).abs() < 1e-9);
        }
    }

    /// Flat discretizers (quantile/uniform) produce partitions too.
    #[test]
    fn flat_discretizers_partition(case in case_strategy(), k in 2usize..10) {
        let df = frame_of(&case);
        let attr = df.schema().id("x").unwrap();
        for flavour in 0..2 {
            let mut catalog = ItemCatalog::new();
            let h = if flavour == 0 {
                quantile_hierarchy(&df, attr, k, &mut catalog)
            } else {
                uniform_hierarchy(&df, attr, k, &mut catalog)
            };
            if h.is_empty() {
                continue;
            }
            for row in 0..df.n_rows() {
                let matched = h
                    .items()
                    .iter()
                    .filter(|&&i| item_matches(&df, &catalog, i, row))
                    .count();
                if case.values[row].is_nan() {
                    prop_assert_eq!(matched, 0);
                } else {
                    prop_assert_eq!(matched, 1);
                }
            }
        }
    }

    /// Determinism: the same inputs give the same tree.
    #[test]
    fn tree_is_deterministic(case in case_strategy()) {
        let df = frame_of(&case);
        let attr = df.schema().id("x").unwrap();
        let discretizer = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
        let mut c1 = ItemCatalog::new();
        let (h1, t1) = discretizer.discretize_attribute(&df, attr, &case.outcomes, &mut c1);
        let mut c2 = ItemCatalog::new();
        let (h2, t2) = discretizer.discretize_attribute(&df, attr, &case.outcomes, &mut c2);
        prop_assert_eq!(h1.items(), h2.items());
        prop_assert_eq!(t1.nodes.len(), t2.nodes.len());
        for (a, b) in t1.nodes.iter().zip(&t2.nodes) {
            prop_assert_eq!(a.interval, b.interval);
            prop_assert_eq!(a.support, b.support);
        }
    }
}
