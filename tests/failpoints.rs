//! Fault-injection integration tests (compiled only with
//! `--features hdx-fail`): arm named fail points in the miners, the tree
//! discretizer and the CSV loader, and assert that every layer degrades
//! instead of dying.
//!
//! The fail-point registry is process-global; each test arms a *distinct*
//! point name, so the tests can run concurrently.

#![cfg(feature = "hdx-fail")]

use h_divexplorer::core::{ExplorationMode, HDivExplorerConfig, OutcomeFn, Termination};
use h_divexplorer::data::{read_csv_str, CsvOptions, DataError};
use h_divexplorer::datasets::compas;
use h_divexplorer::governor::failpoint::{self, FailAction};
use h_divexplorer::governor::{Governor, RunBudget};
use h_divexplorer::items::{Item, ItemCatalog, ItemId};
use h_divexplorer::mining::{
    mine, mine_governed, MiningAlgorithm, MiningConfig, MiningError, Transactions,
};
use h_divexplorer::stats::Outcome;
use std::sync::Mutex;
use std::time::Duration;

/// Serialises the tests that arm `discretize::split` (the registry is
/// process-global, so two tests arming the same point would race).
static DISCRETIZE_SPLIT_LOCK: Mutex<()> = Mutex::new(());

/// Same deterministic fixture as `tests/governor.rs`.
fn fixture() -> (Transactions, ItemCatalog) {
    let mut catalog = ItemCatalog::new();
    let ids: Vec<ItemId> = (0..6)
        .map(|i| {
            catalog.intern(Item::cat_eq(
                h_divexplorer::data::AttrId(i as u16),
                0,
                &format!("a{i}"),
                "v",
            ))
        })
        .collect();
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for r in 0..200usize {
        let row: Vec<ItemId> = (0..6)
            .filter(|k| (r * (k + 3) / 7 + r / (k + 1)) % (k + 2) == 0)
            .map(|k| ids[k])
            .collect();
        rows.push(row);
        outcomes.push(Outcome::Bool(r % 3 == 0));
    }
    (Transactions::from_rows(rows, outcomes), catalog)
}

/// Killing one parallel worker degrades the run: the panic is caught,
/// reported as a typed [`MiningError::WorkerPanicked`], and the surviving
/// workers' itemsets — an exact subset of the full answer — are returned.
#[test]
fn killed_worker_degrades_instead_of_dying() {
    let (transactions, catalog) = fixture();
    let config = MiningConfig {
        min_support: 0.1,
        max_len: None,
        algorithm: MiningAlgorithm::VerticalParallel,
        threads: None,
    };
    let full = mine(&transactions, &catalog, &config);

    failpoint::arm_once("mining::vertical-worker", FailAction::Panic, 1);
    // Quiet the default panic hook for the injected panic: it is caught by
    // the worker's catch_unwind, but the hook would still print a backtrace.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let degraded = mine(&transactions, &catalog, &config);
    std::panic::set_hook(hook);
    failpoint::disarm("mining::vertical-worker");

    assert_eq!(degraded.errors.len(), 1, "exactly one worker died");
    assert!(matches!(
        degraded.errors[0],
        MiningError::WorkerPanicked { .. }
    ));
    assert_eq!(degraded.termination, Termination::Complete);
    // Whatever the survivors mined is an exact subset of the full answer.
    for fi in &degraded.itemsets {
        assert!(
            full.itemsets
                .iter()
                .any(|f| f.itemset == fi.itemset && f.accum.count() == fi.accum.count()),
            "orphan itemset {:?}",
            fi.itemset
        );
    }
    assert!(degraded.itemsets.len() < full.itemsets.len());
}

/// An injected CSV-layer fault surfaces as a typed `DataError::Csv`, not a
/// panic.
#[test]
fn csv_read_fault_is_a_typed_error() {
    failpoint::arm(
        "data::csv-read",
        FailAction::Error("injected I/O fault".into()),
        1,
    );
    let result = read_csv_str("a,b\n1,2\n", &CsvOptions::default());
    failpoint::disarm("data::csv-read");
    match result {
        Err(DataError::Csv { line: 0, message }) => {
            assert!(message.contains("injected"));
        }
        other => panic!("expected injected DataError::Csv, got {other:?}"),
    }
}

/// A stalling split search (slow dependency simulation) trips the
/// wall-clock deadline: the pipeline returns a partial result rather than
/// hanging.
#[test]
fn stalled_discretizer_split_trips_the_deadline() {
    let _guard = DISCRETIZE_SPLIT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dataset = compas(400, 7);
    let outcomes = dataset.classification_outcomes(OutcomeFn::Fpr);
    failpoint::arm(
        "discretize::split",
        FailAction::Stall(Duration::from_millis(40)),
        1,
    );
    let config = HDivExplorerConfig {
        min_support: 0.05,
        budget: RunBudget::unbounded().with_deadline(Duration::from_millis(10)),
        ..HDivExplorerConfig::default()
    };
    let result = h_divexplorer::core::HDivExplorer::new(config).fit_mode(
        &dataset.frame,
        &outcomes,
        ExplorationMode::Base,
    );
    failpoint::disarm("discretize::split");
    assert_eq!(result.termination(), Termination::DeadlineExceeded);
    assert!(result.is_partial());
}

/// An injected panic inside the tree discretizer's split search propagates
/// as a clean unwind — no poisoned global state, and the very next run (same
/// process, fail point disarmed) succeeds from scratch.
#[test]
fn discretizer_split_panic_is_a_clean_unwind() {
    let _guard = DISCRETIZE_SPLIT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dataset = compas(300, 11);
    let outcomes = dataset.classification_outcomes(OutcomeFn::Fpr);
    let config = || HDivExplorerConfig {
        min_support: 0.05,
        ..HDivExplorerConfig::default()
    };

    failpoint::arm("discretize::split", FailAction::Panic, 1);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(|| {
        h_divexplorer::core::HDivExplorer::new(config()).fit_mode(
            &dataset.frame,
            &outcomes,
            ExplorationMode::Base,
        )
    });
    std::panic::set_hook(hook);
    failpoint::disarm("discretize::split");
    assert!(outcome.is_err(), "injected panic must propagate");

    // The unwind left nothing behind: an immediate retry completes.
    let retry = h_divexplorer::core::HDivExplorer::new(config()).fit_mode(
        &dataset.frame,
        &outcomes,
        ExplorationMode::Base,
    );
    assert_eq!(retry.termination(), Termination::Complete);
    assert!(!retry.report.records.is_empty());
}

/// Checkpoint-write faults (disk full, permission loss) degrade persistence
/// only: the mining run itself completes with full results, reporting the
/// write failure out-of-band.
#[test]
fn checkpoint_write_faults_do_not_lose_the_run() {
    use h_divexplorer::checkpoint::CheckpointStore;
    use h_divexplorer::data::{DataFrameBuilder, Value};

    let mut b = DataFrameBuilder::new();
    b.add_continuous("x").unwrap();
    b.add_categorical("g").unwrap();
    let mut outcomes = Vec::new();
    for i in 0..200usize {
        let x = (i % 50) as f64;
        let g = if i % 2 == 0 { "a" } else { "b" };
        b.push_row(vec![Value::Num(x), Value::Cat(g.to_string())])
            .unwrap();
        outcomes.push(Outcome::Bool(x > 30.0 && g == "b"));
    }
    let df = b.finish();
    let config = HDivExplorerConfig {
        min_support: 0.1,
        ..HDivExplorerConfig::default()
    };

    let plain = h_divexplorer::core::HDivExplorer::new(config.clone()).fit_mode(
        &df,
        &outcomes,
        ExplorationMode::Generalized,
    );

    let dir = std::env::temp_dir().join(format!("hdx-fp-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::create(&dir).unwrap();
    failpoint::arm(
        "checkpoint::write",
        FailAction::Error("injected disk full".into()),
        1,
    );
    let run = h_divexplorer::core::HDivExplorer::new(config)
        .fit_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
        .unwrap();
    failpoint::disarm("checkpoint::write");

    assert_eq!(run.checkpoint_writes, 0, "every write was injected to fail");
    let err = run.checkpoint_error.expect("failure must be surfaced");
    assert!(err.contains("injected disk full"), "{err}");
    // The run itself is complete and identical to the unpersisted one.
    assert_eq!(run.result.termination(), Termination::Complete);
    assert_eq!(run.result.report.records.len(), plain.report.records.len());
}

/// Injected *I/O* faults at the checkpoint-write fail point — ENOSPC and a
/// torn (short) write, not just clean typed errors — degrade persistence
/// only: the previous checkpoint stays loadable, the torn scratch file is
/// ignored by recovery, and a retry after the "device recovers" advances
/// the sequence normally.
#[test]
fn checkpoint_io_faults_preserve_the_previous_checkpoint() {
    use h_divexplorer::checkpoint::CheckpointStore;
    use h_divexplorer::data::{DataFrameBuilder, Value};
    use h_divexplorer::governor::failpoint::IoFault;

    let mut b = DataFrameBuilder::new();
    b.add_continuous("x").unwrap();
    b.add_categorical("g").unwrap();
    let mut outcomes = Vec::new();
    for i in 0..200usize {
        let x = (i % 50) as f64;
        let g = if i % 2 == 0 { "a" } else { "b" };
        b.push_row(vec![Value::Num(x), Value::Cat(g.to_string())])
            .unwrap();
        outcomes.push(Outcome::Bool(x > 30.0 && g == "b"));
    }
    let df = b.finish();
    let config = HDivExplorerConfig {
        min_support: 0.1,
        ..HDivExplorerConfig::default()
    };

    // A clean checkpointed run seeds the store with real state.
    let dir = std::env::temp_dir().join(format!("hdx-fp-ckpt-io-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::create(&dir).unwrap();
    h_divexplorer::core::HDivExplorer::new(config)
        .fit_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
        .unwrap();

    let store = CheckpointStore::open(&dir).unwrap();
    let seqs = store.sequences().unwrap();
    assert!(!seqs.is_empty(), "the clean run must have checkpointed");
    let loaded = store.load_latest().unwrap();
    let state = loaded.state;

    // ENOSPC: fails before a byte lands; nothing on disk changes.
    failpoint::arm("checkpoint::write", FailAction::Io(IoFault::Enospc), 1);
    let err = store.write(&state).expect_err("injected ENOSPC");
    failpoint::disarm("checkpoint::write");
    assert!(err.to_string().contains("no space left"), "{err}");
    assert_eq!(store.sequences().unwrap(), seqs);

    // Short write: half the sealed bytes land in the scratch file — the
    // crash-mid-write artifact — and recovery must skip it.
    failpoint::arm(
        "checkpoint::write",
        FailAction::Io(IoFault::ShortWrite),
        1,
    );
    let err = store.write(&state).expect_err("injected short write");
    failpoint::disarm("checkpoint::write");
    assert!(err.to_string().contains("short write"), "{err}");
    let tmp = dir.join("ckpt.tmp");
    assert!(tmp.exists(), "the torn scratch file must really exist");
    assert!(std::fs::metadata(&tmp).unwrap().len() > 0);
    assert_eq!(store.sequences().unwrap(), seqs, "no sequence consumed");
    let reloaded = store.load_latest().unwrap();
    assert_eq!(
        reloaded.state, state,
        "the previous checkpoint survives both faults"
    );

    // Device "recovers": the next write advances the sequence normally.
    let next = store.write(&state).unwrap();
    assert_eq!(next, seqs.last().unwrap() + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected panic in a single-threaded miner *does* propagate (there is
/// no worker boundary to absorb it) — but the governor's budget machinery
/// still prevents the partial state from leaking: the caller sees a clean
/// unwind, not a corrupt result.
#[test]
fn single_thread_miner_panics_are_clean_unwinds() {
    let (transactions, catalog) = fixture();
    failpoint::arm("mining::vertical", FailAction::Panic, 1);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(|| {
        let config = MiningConfig {
            min_support: 0.1,
            max_len: None,
            algorithm: MiningAlgorithm::Vertical,
            threads: None,
        };
        mine_governed(
            &transactions,
            &catalog,
            &config,
            &Governor::new(RunBudget::unbounded()),
        )
    });
    std::panic::set_hook(hook);
    failpoint::disarm("mining::vertical");
    assert!(outcome.is_err(), "injected panic must propagate");
}
