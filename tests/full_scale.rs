//! Paper-scale stress tests — `#[ignore]`d by default because they take
//! minutes in release mode. Run with:
//!
//! ```text
//! cargo test --release --test full_scale -- --ignored
//! ```

use h_divexplorer::core::{ExplorationMode, HDivExplorerConfig};
use h_divexplorer::datasets::{compas, default_rows, folktables, synthetic_peak};
use hdx_bench::experiments::run_exploration;

/// Full-size compas (6,172 rows), s = 0.01 — the hardest Table III cell.
#[test]
#[ignore = "paper-scale; run with --ignored"]
fn compas_full_scale_table3() {
    let d = compas(default_rows::COMPAS, 42);
    let config = HDivExplorerConfig {
        min_support: 0.01,
        ..HDivExplorerConfig::default()
    };
    let (_, base) = run_exploration(&d, config, ExplorationMode::Base);
    let (_, hier) = run_exploration(&d, config, ExplorationMode::Generalized);
    assert!(hier.max_divergence >= base.max_divergence);
    assert!(hier.max_divergence > 0.5, "hier = {}", hier.max_divergence);
}

/// Full-size synthetic-peak (10,000 rows), the Fig. 5 setting.
#[test]
#[ignore = "paper-scale; run with --ignored"]
fn synthetic_peak_full_scale_fig5() {
    let d = synthetic_peak(default_rows::SYNTHETIC_PEAK, 42);
    for s in [0.05, 0.025] {
        let config = HDivExplorerConfig {
            min_support: s,
            ..HDivExplorerConfig::default()
        };
        let (_, base) = run_exploration(&d, config, ExplorationMode::Base);
        let (_, hier) = run_exploration(&d, config, ExplorationMode::Generalized);
        assert!(
            hier.max_divergence > 2.0 * base.max_divergence,
            "s={s}: hier {} vs base {}",
            hier.max_divergence,
            base.max_divergence
        );
    }
}

/// Full-size folktables (195,556 rows), Table IV at s = 0.025 with the
/// paper's max itemset length.
#[test]
#[ignore = "paper-scale; run with --ignored"]
fn folktables_full_scale_table4() {
    let d = folktables(default_rows::FOLKTABLES, 42);
    let config = HDivExplorerConfig {
        min_support: 0.025,
        max_len: Some(4),
        ..HDivExplorerConfig::default()
    };
    let (_, base) = run_exploration(&d, config, ExplorationMode::Base);
    let (result, hier) = run_exploration(&d, config, ExplorationMode::Generalized);
    assert!(hier.max_divergence > base.max_divergence);
    // The winner uses a generalized (non-leaf) item, as in Table IV.
    let top = result.report.top().unwrap();
    let uses_generalized = top.itemset.items().iter().any(|&item| {
        result
            .hierarchies
            .get(result.catalog.attr_of(item))
            .is_some_and(|h| !h.is_leaf(item))
    });
    assert!(uses_generalized, "top = {}", top.label);
}
