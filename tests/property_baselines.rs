//! Property-based tests of the baseline implementations: SliceLine's
//! upper-bound pruning never changes the top-k, Slice Finder's effect sizes
//! match a brute-force computation, and the combined tree always partitions.

use h_divexplorer::baselines::{
    CombinedTreeConfig, CombinedTreeExplorer, SliceFinder, SliceFinderConfig, SliceLine,
    SliceLineConfig,
};
use h_divexplorer::data::{DataFrame, DataFrameBuilder, Value};
use h_divexplorer::items::{Interval, Item, ItemCatalog, ItemId};
use h_divexplorer::stats::{MeanVar, Outcome};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    xs: Vec<f64>,
    gs: Vec<u8>,
    losses: Vec<f64>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    proptest::collection::vec(
        (
            0.0..100.0f64,
            0u8..3,
            prop_oneof![3 => Just(0.0), 1 => Just(1.0), 1 => 0.0..1.0f64],
        ),
        40..200,
    )
    .prop_map(|rows| {
        let mut case = Case {
            xs: Vec::new(),
            gs: Vec::new(),
            losses: Vec::new(),
        };
        for (x, g, loss) in rows {
            case.xs.push(x);
            case.gs.push(g);
            case.losses.push(loss);
        }
        case
    })
}

fn build(case: &Case) -> (DataFrame, ItemCatalog, Vec<ItemId>) {
    let mut b = DataFrameBuilder::new();
    let x = b.add_continuous("x").unwrap();
    let g = b.add_categorical("g").unwrap();
    for i in 0..case.xs.len() {
        b.push_row(vec![
            Value::Num(case.xs[i]),
            Value::Cat(format!("g{}", case.gs[i])),
        ])
        .unwrap();
    }
    let df = b.finish();
    let mut catalog = ItemCatalog::new();
    let mut items = vec![
        catalog.intern(Item::range(x, Interval::at_most(33.0), "x")),
        catalog.intern(Item::range(x, Interval::new(33.0, 66.0), "x")),
        catalog.intern(Item::range(x, Interval::greater_than(66.0), "x")),
    ];
    let col = df.categorical(g).clone();
    for code in 0..col.n_levels() as u32 {
        items.push(catalog.intern(Item::cat_eq(g, code, "g", col.level(code))));
    }
    (df, catalog, items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SliceLine with small k (aggressive pruning) finds exactly the same
    /// top slices as an effectively-exhaustive run.
    #[test]
    fn sliceline_pruning_is_lossless(case in case_strategy(), alpha in 0.5f64..1.0) {
        prop_assume!(case.losses.iter().sum::<f64>() > 0.0);
        let (df, catalog, items) = build(&case);
        let config = SliceLineConfig {
            alpha,
            k: 2,
            min_size: 5,
            max_len: 2,
        };
        let pruned = SliceLine::new(config).find(&df, &catalog, &items, &case.losses);
        let exhaustive = SliceLine::new(SliceLineConfig { k: 10_000, ..config })
            .find(&df, &catalog, &items, &case.losses);
        for (p, e) in pruned.iter().zip(&exhaustive) {
            prop_assert!((p.score - e.score).abs() < 1e-9,
                "rank mismatch: {} ({}) vs {} ({})", p.label, p.score, e.label, e.score);
        }
        prop_assert!(pruned.len() <= 2);
    }

    /// Slice Finder's reported effect sizes and sizes match a brute-force
    /// recomputation over the slice rows.
    #[test]
    fn slice_finder_matches_brute_force(case in case_strategy()) {
        let (df, catalog, items) = build(&case);
        let results = SliceFinder::new(SliceFinderConfig {
            effect_size_threshold: 0.0,
            k: 5,
            max_len: 2,
            min_t: 0.0,
        })
        .find(&df, &catalog, &items, &case.losses);
        for r in results {
            // Recount the slice rows.
            let mut slice = MeanVar::new();
            let mut rest = MeanVar::new();
            for row in 0..df.n_rows() {
                let inside = r
                    .itemset
                    .items()
                    .iter()
                    .all(|&i| h_divexplorer::items::item_matches(&df, &catalog, i, row));
                if inside {
                    slice.push(case.losses[row]);
                } else {
                    rest.push(case.losses[row]);
                }
            }
            prop_assert_eq!(slice.count() as usize, r.size);
            prop_assert!((slice.mean() - r.mean_loss).abs() < 1e-9);
            let denom = ((slice.variance() + rest.variance()) / 2.0).sqrt();
            let expected = if denom > 0.0 { (slice.mean() - rest.mean()) / denom } else { 0.0 };
            prop_assert!((expected - r.effect_size).abs() < 1e-9);
        }
    }

    /// The combined tree's leaves always partition the dataset and respect
    /// the support constraint, for any outcome mix.
    #[test]
    fn combined_tree_partitions(case in case_strategy(), min_support in 0.05f64..0.4) {
        let (df, _, _) = build(&case);
        let outcomes: Vec<Outcome> = case
            .losses
            .iter()
            .map(|&l| Outcome::Bool(l > 0.5))
            .collect();
        let leaves = CombinedTreeExplorer::new(CombinedTreeConfig {
            min_support,
            max_depth: None,
        })
        .explore(&df, &outcomes);
        let total: f64 = leaves.iter().map(|l| l.support).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "supports sum to {total}");
        let min_frac = min_support - 1e-9;
        for leaf in &leaves {
            prop_assert!(leaf.support >= min_frac, "{}: {}", leaf.label, leaf.support);
        }
    }
}
