//! Offline stand-in for `criterion` (see `Cargo.toml` for the why).
//!
//! The measurement model is intentionally simple: warm up for a fixed
//! iteration count, then time `SAMPLE_ITERS` iterations with `Instant` and
//! report the mean. That is enough for the relative comparisons the benches
//! are used for in this container; upstream criterion's outlier rejection and
//! confidence intervals are out of scope.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 10;
const SAMPLE_ITERS: u64 = 50;

/// Top-level benchmark driver (the `c: &mut Criterion` handle).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A fresh driver. Upstream parses CLI args here; the stub does not.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[criterion-stub] group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }
}

/// Identifies one benchmark within a group by function name and parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work-per-iteration hint used to report a rate alongside the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Records the throughput used when reporting subsequent benchmarks.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark labelled `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), &mut f);
        self
    }

    /// Runs `f` with `input` as a benchmark labelled `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group. (No-op in the stub; exists for API compatibility.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        eprintln!("[criterion-stub]   {group}/{id}: no iterations recorded");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
    eprintln!(
        "[criterion-stub]   {group}/{id}: {} ns/iter ({} iters)",
        per_iter, bencher.iters
    );
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, discarding a short warm-up first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..SAMPLE_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += SAMPLE_ITERS;
    }
}

/// Bundles benchmark functions under one name (upstream-compatible form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub-selftest");
        group.sample_size(10).throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(stub_group, sample_bench);

    #[test]
    fn group_and_macros_run() {
        stub_group();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
