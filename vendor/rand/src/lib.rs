//! Offline stand-in for the `rand` crate (see `Cargo.toml` for the why).
//!
//! Surface implemented: [`Rng`], [`RngExt`], [`SeedableRng`],
//! [`rngs::StdRng`], [`seq::SliceRandom`]. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality and fast, but *not* the upstream
//! ChaCha12-based `StdRng`: identical seeds produce different streams than
//! real `rand`, which only matters if a value baked into a fixture was
//! derived from the upstream generator.

/// A source of random `u64`s. The base trait every generator implements and
/// every generic sampling helper bounds on (`R: Rng + ?Sized`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the stub's
/// equivalent of the upstream `Standard`/`StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T` (the stub's equivalent of
/// the upstream `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit multiply-shift.
fn index_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(index_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in random_range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(index_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (import as `use rand::{RngExt as _}`).
pub trait RngExt: Rng {
    /// A uniform value of `T` (full integer range, `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64. Deterministic per seed; not the
    /// upstream ChaCha12 `StdRng` (streams differ for identical seeds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling, blanket-implemented for `[T]`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::index_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: u16 = rng.random_range(0..=5);
            assert!(i <= 5);
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
