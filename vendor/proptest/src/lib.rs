//! Offline stand-in for `proptest` (see `Cargo.toml` for the why).
//!
//! Differences from upstream that matter when reading test failures:
//!
//! * **No shrinking.** A failing case prints the raw generated inputs.
//! * **Deterministic seeding.** The RNG seed is a hash of the test's module
//!   path and name, so failures reproduce exactly on re-run.
//! * `prop_assume!` rejections retry with fresh inputs (bounded at 20×
//!   the configured case count, so an always-false assumption still fails).

use std::fmt;

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, span)`.
    pub fn index_below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not counted.
    Reject(String),
    /// A `prop_assert*!` failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with `msg`.
    pub fn fail(msg: String) -> Self {
        Self::Fail(msg)
    }

    /// A rejection (assumption not met).
    pub fn reject(msg: String) -> Self {
        Self::Reject(msg)
    }

    /// `true` for [`TestCaseError::Reject`].
    pub fn is_reject(&self) -> bool {
        matches!(self, Self::Reject(_))
    }

    /// The embedded message.
    pub fn message(&self) -> &str {
        match self {
            Self::Reject(m) | Self::Fail(m) => m,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

/// Runner configuration (only the knobs this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of `Self::Value`.
///
/// Object-safe: `generate` takes the concrete [`TestRng`], so strategies can
/// be boxed ([`BoxedStrategy`]) for heterogeneous unions (`prop_oneof!`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates from `self`, builds a second strategy with `f`, and draws
    /// the final value from that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait ArbitraryStub: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryStub for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryStub for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: ArbitraryStub> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T` (upstream `any::<T>()`).
pub fn any<T: ArbitraryStub>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// `&str` as a strategy: the pattern is interpreted as a small regex subset
/// (literals, `\x` escapes, `[a-z…]` classes with ranges, and `{n}`/`{m,n}`/
/// `*`/`+`/`?` quantifiers) generating matching `String`s. Upstream proptest
/// supports full regex syntax; unsupported constructs panic at generation
/// time so a new pattern fails loudly instead of silently mis-generating.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut it = self.chars().peekable();
        while let Some(c) = it.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let c = it.next().expect("regex-subset: unclosed `[` class");
                        match c {
                            ']' => break,
                            '\\' => set.push(
                                it.next().expect("regex-subset: trailing `\\` in class"),
                            ),
                            _ if it.peek() == Some(&'-') => {
                                it.next();
                                match it.next() {
                                    Some(']') => {
                                        // Trailing `-` is a literal.
                                        set.push(c);
                                        set.push('-');
                                        break;
                                    }
                                    Some(hi) => set.extend(c..=hi),
                                    None => panic!("regex-subset: unclosed `[` class"),
                                }
                            }
                            _ => set.push(c),
                        }
                    }
                    assert!(!set.is_empty(), "regex-subset: empty `[]` class");
                    set
                }
                '\\' => vec![it.next().expect("regex-subset: trailing `\\`")],
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    panic!("regex-subset: unsupported construct {c:?} in {self:?}")
                }
                _ => vec![c],
            };
            // Optional quantifier after the atom.
            let (lo, hi): (usize, usize) = match it.peek() {
                Some('{') => {
                    it.next();
                    let spec: String = (&mut it).take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.parse().expect("regex-subset: bad `{m,n}`"),
                            n.parse().expect("regex-subset: bad `{m,n}`"),
                        ),
                        None => {
                            let n = spec.parse().expect("regex-subset: bad `{n}`");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    it.next();
                    (0, 8)
                }
                Some('+') => {
                    it.next();
                    (1, 8)
                }
                Some('?') => {
                    it.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(lo <= hi, "regex-subset: bad quantifier in {self:?}");
            let count = lo + rng.index_below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(set[rng.index_below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

macro_rules! impl_strategy_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.index_below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.index_below(span + 1) as $t)
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
impl_strategy_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_range_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Weighted union of boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// A union over `arms`; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! needs at least one positive weight"
        );
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.index_below(total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification: an exact count or a range of counts.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.index_below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3:1 Some:None — missing values stay common enough to exercise
            // the missing-data paths without dominating the sample.
            if rng.index_below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option<T>` values: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The property-test macro: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `ProptestConfig::cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __config: $crate::ProptestConfig = $cfg;
            // As in upstream proptest, `PROPTEST_CASES` overrides the case
            // count — used to shrink runs under Miri/sanitizers.
            if let Some(n) = ::std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
            {
                __config.cases = n;
            }
            let mut __rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts: u32 = __config.cases.saturating_mul(20).max(1000);
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest-stub: `{}` rejected too many cases ({} attempts for {} accepted)",
                    stringify!($name),
                    __attempts,
                    __accepted,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __case_desc =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => {}
                    ::core::result::Result::Err(e) => panic!(
                        "proptest-stub: case {} of `{}` failed:\n  {}\n  inputs: {}",
                        __accepted + 1,
                        stringify!($name),
                        e.message(),
                        __case_desc,
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts `cond`, failing the current case (not the process) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts `left == right` with a value-carrying failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts `left != right` with a value-carrying failure message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both sides are {:?}",
                l
            )));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "prop_assume!({}) rejected",
                stringify!($cond)
            )));
        }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, pair in (1u16..4, -1.0f64..1.0)) {
            prop_assert!(x < 10);
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_and_oneof(v in crate::collection::vec(prop_oneof![Just(0u8), 1u8..10], 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(flag in any::<bool>(), opt in crate::option::of(0u8..5)) {
            prop_assert!(flag || !flag);
            if let Some(v) = opt {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("label");
        let mut b = crate::TestRng::deterministic("label");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
