//! Dependency-free fail-point fault injection (compiled only under the
//! `hdx-fail` feature).
//!
//! Library code marks named trigger points with the
//! [`fail_point!`](crate::fail_point) macro; tests *arm* a point with a
//! [`FailAction`] and a 1-based hit index, then drive the code under test and
//! assert that the degradation paths behave. Without the feature the macro
//! expands to nothing, so production builds carry zero overhead.
//!
//! The registry is process-global (tests touching the same point must not
//! run concurrently; keep fail-point tests in a dedicated integration-test
//! binary or serialise them with a mutex).
//!
//! ```
//! use hdx_governor::failpoint::{self, FailAction};
//!
//! failpoint::arm("demo", FailAction::Error("boom".into()), 2);
//! assert_eq!(failpoint::hit("demo"), None); // 1st hit: pass through
//! assert_eq!(failpoint::hit("demo"), Some("boom".into())); // 2nd: fire
//! failpoint::reset();
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed fail point does when it fires.
#[derive(Debug, Clone)]
pub enum FailAction {
    /// Panic with the fail point's name (simulates a crashing worker).
    Panic,
    /// Sleep for the given duration (simulates a stall / slow dependency).
    Stall(Duration),
    /// Surface the message as an error to the caller.
    Error(String),
}

#[derive(Debug)]
struct Armed {
    action: FailAction,
    /// Fire on the `nth` hit (1-based); repeating ones keep firing after it.
    nth: u64,
    /// Fire on exactly the `nth` hit, then pass through again.
    once: bool,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `name` to perform `action` from the `nth` hit (1-based) onward.
/// Re-arming replaces the previous action and resets the hit count.
pub fn arm(name: &str, action: FailAction, nth: u64) {
    insert(name, action, nth, false);
}

/// Arms `name` to perform `action` on exactly the `nth` hit (1-based); every
/// other hit passes through. Use to fault a single worker out of a pool.
pub fn arm_once(name: &str, action: FailAction, nth: u64) {
    insert(name, action, nth, true);
}

fn insert(name: &str, action: FailAction, nth: u64, once: bool) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.insert(
        name.to_owned(),
        Armed {
            action,
            nth: nth.max(1),
            once,
            hits: 0,
        },
    );
}

/// Disarms `name` (no-op when not armed).
pub fn disarm(name: &str) {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(name);
}

/// Disarms every fail point. Call from test teardown.
pub fn reset() {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Hits the fail point `name`. Returns `Some(message)` when an armed
/// [`FailAction::Error`] fires; panics when [`FailAction::Panic`] fires;
/// sleeps then returns `None` when [`FailAction::Stall`] fires; returns
/// `None` when unarmed or before the armed hit index.
pub fn hit(name: &str) -> Option<String> {
    // Decide while holding the lock, act after releasing it, so a panicking
    // fail point never poisons the registry.
    let fired: Option<FailAction> = {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.get_mut(name).and_then(|armed| {
            armed.hits += 1;
            let fires = if armed.once {
                armed.hits == armed.nth
            } else {
                armed.hits >= armed.nth
            };
            fires.then(|| armed.action.clone())
        })
    };
    if fired.is_some() {
        hdx_obs::counter_add!(GovernorFailpointHits, 1);
    }
    match fired {
        None => None,
        Some(FailAction::Panic) => panic!("fail point `{name}` fired: injected panic"),
        Some(FailAction::Stall(d)) => {
            std::thread::sleep(d);
            None
        }
        Some(FailAction::Error(msg)) => Some(msg),
    }
}

/// How many times `name` has been hit since it was (re-)armed.
pub fn hit_count(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
        .map_or(0, |a| a.hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests use distinct names so they
    // can run concurrently.

    #[test]
    fn unarmed_points_pass_through() {
        assert_eq!(hit("fp-tests::unarmed"), None);
        assert_eq!(hit_count("fp-tests::unarmed"), 0);
    }

    #[test]
    fn error_fires_from_nth_hit() {
        arm("fp-tests::err", FailAction::Error("boom".into()), 3);
        assert_eq!(hit("fp-tests::err"), None);
        assert_eq!(hit("fp-tests::err"), None);
        assert_eq!(hit("fp-tests::err"), Some("boom".into()));
        assert_eq!(hit("fp-tests::err"), Some("boom".into()), "keeps firing");
        assert_eq!(hit_count("fp-tests::err"), 4);
        disarm("fp-tests::err");
        assert_eq!(hit("fp-tests::err"), None);
    }

    #[test]
    fn panic_action_panics() {
        arm("fp-tests::panic", FailAction::Panic, 1);
        let err = std::panic::catch_unwind(|| hit("fp-tests::panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fp-tests::panic"));
        disarm("fp-tests::panic");
        // The registry survived the panic un-poisoned.
        assert_eq!(hit("fp-tests::panic"), None);
    }

    #[test]
    fn stall_sleeps_then_passes() {
        arm(
            "fp-tests::stall",
            FailAction::Stall(Duration::from_millis(20)),
            1,
        );
        let t0 = std::time::Instant::now();
        assert_eq!(hit("fp-tests::stall"), None);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        disarm("fp-tests::stall");
    }

    #[test]
    fn arm_once_fires_exactly_once() {
        arm_once("fp-tests::once", FailAction::Error("boom".into()), 2);
        assert_eq!(hit("fp-tests::once"), None);
        assert_eq!(hit("fp-tests::once"), Some("boom".into()));
        assert_eq!(hit("fp-tests::once"), None, "one-shot points rearm-safe");
        assert_eq!(hit_count("fp-tests::once"), 3);
        disarm("fp-tests::once");
    }

    #[test]
    fn rearming_resets_count() {
        arm("fp-tests::rearm", FailAction::Error("a".into()), 1);
        assert_eq!(hit("fp-tests::rearm"), Some("a".into()));
        arm("fp-tests::rearm", FailAction::Error("b".into()), 2);
        assert_eq!(hit("fp-tests::rearm"), None, "count reset by re-arm");
        assert_eq!(hit("fp-tests::rearm"), Some("b".into()));
        disarm("fp-tests::rearm");
    }
}
