//! Dependency-free fail-point fault injection (compiled only under the
//! `hdx-fail` feature).
//!
//! Library code marks named trigger points with the
//! [`fail_point!`](crate::fail_point) macro; tests *arm* a point with a
//! [`FailAction`] and a 1-based hit index, then drive the code under test and
//! assert that the degradation paths behave. Without the feature the macro
//! expands to nothing, so production builds carry zero overhead.
//!
//! The registry is process-global (tests touching the same point must not
//! run concurrently; keep fail-point tests in a dedicated integration-test
//! binary or serialise them with a mutex).
//!
//! ```
//! use hdx_governor::failpoint::{self, FailAction};
//!
//! failpoint::arm("demo", FailAction::Error("boom".into()), 2);
//! assert_eq!(failpoint::hit("demo"), None); // 1st hit: pass through
//! assert_eq!(failpoint::hit("demo"), Some("boom".into())); // 2nd: fire
//! failpoint::reset();
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed fail point does when it fires.
#[derive(Debug, Clone)]
pub enum FailAction {
    /// Panic with the fail point's name (simulates a crashing worker).
    Panic,
    /// Sleep for the given duration (simulates a stall / slow dependency).
    Stall(Duration),
    /// Surface the message as an error to the caller.
    Error(String),
    /// Inject a structured I/O fault at sites that call
    /// [`io_hit`]. Invisible to [`hit`]: the plain channel never fires for
    /// an `Io` arming (and vice versa), so a site probing both channels
    /// counts each arming exactly once.
    Io(IoFault),
}

/// A structured injectable I/O fault (see [`FailAction::Io`]). Unlike
/// [`FailAction::Error`]'s opaque message, the call site can *enact* these:
/// a short write really leaves a torn prefix on disk before erroring, which
/// is what WAL torn-tail recovery tests need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The device is full: fail before writing a single byte.
    Enospc,
    /// A torn write: persist only a prefix of the payload, then fail.
    ShortWrite,
}

impl IoFault {
    /// The `std::io::Error` this fault surfaces as.
    pub fn to_error(self) -> std::io::Error {
        match self {
            IoFault::Enospc => std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "injected fault: no space left on device",
            ),
            IoFault::ShortWrite => std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "injected fault: short write (torn tail)",
            ),
        }
    }
}

#[derive(Debug)]
struct Armed {
    action: FailAction,
    /// Fire on the `nth` hit (1-based); repeating ones keep firing after it.
    nth: u64,
    /// Fire on exactly the `nth` hit, then pass through again.
    once: bool,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `name` to perform `action` from the `nth` hit (1-based) onward.
/// Re-arming replaces the previous action and resets the hit count.
pub fn arm(name: &str, action: FailAction, nth: u64) {
    insert(name, action, nth, false);
}

/// Arms `name` to perform `action` on exactly the `nth` hit (1-based); every
/// other hit passes through. Use to fault a single worker out of a pool.
pub fn arm_once(name: &str, action: FailAction, nth: u64) {
    insert(name, action, nth, true);
}

fn insert(name: &str, action: FailAction, nth: u64, once: bool) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.insert(
        name.to_owned(),
        Armed {
            action,
            nth: nth.max(1),
            once,
            hits: 0,
        },
    );
}

/// Disarms `name` (no-op when not armed).
pub fn disarm(name: &str) {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(name);
}

/// Disarms every fail point. Call from test teardown.
pub fn reset() {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Hits the fail point `name`. Returns `Some(message)` when an armed
/// [`FailAction::Error`] fires; panics when [`FailAction::Panic`] fires;
/// sleeps then returns `None` when [`FailAction::Stall`] fires; returns
/// `None` when unarmed or before the armed hit index.
pub fn hit(name: &str) -> Option<String> {
    // Decide while holding the lock, act after releasing it, so a panicking
    // fail point never poisons the registry.
    let fired: Option<FailAction> = {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.get_mut(name).and_then(|armed| {
            if matches!(armed.action, FailAction::Io(_)) {
                // Armed for the io channel: invisible here, not counted.
                return None;
            }
            armed.hits += 1;
            let fires = if armed.once {
                armed.hits == armed.nth
            } else {
                armed.hits >= armed.nth
            };
            fires.then(|| armed.action.clone())
        })
    };
    if fired.is_some() {
        hdx_obs::counter_add!(GovernorFailpointHits, 1);
    }
    match fired {
        None => None,
        Some(FailAction::Panic) => panic!("fail point `{name}` fired: injected panic"),
        Some(FailAction::Stall(d)) => {
            std::thread::sleep(d);
            None
        }
        Some(FailAction::Error(msg)) => Some(msg),
        // Unreachable (filtered above); kept total for exhaustiveness.
        Some(FailAction::Io(fault)) => Some(fault.to_error().to_string()),
    }
}

/// Hits the *io channel* of fail point `name`: returns the armed
/// [`IoFault`] when a [`FailAction::Io`] arming is due, `None` otherwise.
/// Armings of any other action are invisible here (and not counted), the
/// mirror image of [`hit`], so a call site probing both channels gives each
/// arming exactly one hit per passage.
pub fn io_hit(name: &str) -> Option<IoFault> {
    let fired: Option<IoFault> = {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.get_mut(name).and_then(|armed| {
            let FailAction::Io(fault) = armed.action else {
                return None;
            };
            armed.hits += 1;
            let fires = if armed.once {
                armed.hits == armed.nth
            } else {
                armed.hits >= armed.nth
            };
            fires.then_some(fault)
        })
    };
    if fired.is_some() {
        hdx_obs::counter_add!(GovernorFailpointHits, 1);
    }
    fired
}

/// How many times `name` has been hit since it was (re-)armed.
pub fn hit_count(name: &str) -> u64 {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
        .map_or(0, |a| a.hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests use distinct names so they
    // can run concurrently.

    #[test]
    fn unarmed_points_pass_through() {
        assert_eq!(hit("fp-tests::unarmed"), None);
        assert_eq!(hit_count("fp-tests::unarmed"), 0);
    }

    #[test]
    fn error_fires_from_nth_hit() {
        arm("fp-tests::err", FailAction::Error("boom".into()), 3);
        assert_eq!(hit("fp-tests::err"), None);
        assert_eq!(hit("fp-tests::err"), None);
        assert_eq!(hit("fp-tests::err"), Some("boom".into()));
        assert_eq!(hit("fp-tests::err"), Some("boom".into()), "keeps firing");
        assert_eq!(hit_count("fp-tests::err"), 4);
        disarm("fp-tests::err");
        assert_eq!(hit("fp-tests::err"), None);
    }

    #[test]
    fn panic_action_panics() {
        arm("fp-tests::panic", FailAction::Panic, 1);
        let err = std::panic::catch_unwind(|| hit("fp-tests::panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fp-tests::panic"));
        disarm("fp-tests::panic");
        // The registry survived the panic un-poisoned.
        assert_eq!(hit("fp-tests::panic"), None);
    }

    #[test]
    fn stall_sleeps_then_passes() {
        arm(
            "fp-tests::stall",
            FailAction::Stall(Duration::from_millis(20)),
            1,
        );
        let t0 = std::time::Instant::now();
        assert_eq!(hit("fp-tests::stall"), None);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        disarm("fp-tests::stall");
    }

    #[test]
    fn arm_once_fires_exactly_once() {
        arm_once("fp-tests::once", FailAction::Error("boom".into()), 2);
        assert_eq!(hit("fp-tests::once"), None);
        assert_eq!(hit("fp-tests::once"), Some("boom".into()));
        assert_eq!(hit("fp-tests::once"), None, "one-shot points rearm-safe");
        assert_eq!(hit_count("fp-tests::once"), 3);
        disarm("fp-tests::once");
    }

    #[test]
    fn io_channel_is_invisible_to_the_plain_channel_and_vice_versa() {
        arm("fp-tests::io", FailAction::Io(IoFault::Enospc), 2);
        assert_eq!(hit("fp-tests::io"), None, "plain channel never fires Io");
        assert_eq!(hit_count("fp-tests::io"), 0, "and does not count it");
        assert_eq!(io_hit("fp-tests::io"), None, "1st io hit: pass through");
        assert_eq!(io_hit("fp-tests::io"), Some(IoFault::Enospc));
        assert_eq!(io_hit("fp-tests::io"), Some(IoFault::Enospc), "keeps firing");
        disarm("fp-tests::io");

        arm("fp-tests::io-vv", FailAction::Error("boom".into()), 1);
        assert_eq!(io_hit("fp-tests::io-vv"), None, "io channel ignores Error");
        assert_eq!(hit_count("fp-tests::io-vv"), 0);
        assert_eq!(hit("fp-tests::io-vv"), Some("boom".into()));
        disarm("fp-tests::io-vv");
    }

    #[test]
    fn io_faults_render_as_io_errors() {
        let e = IoFault::Enospc.to_error();
        assert!(e.to_string().contains("no space left"), "{e}");
        let e = IoFault::ShortWrite.to_error();
        assert!(e.to_string().contains("short write"), "{e}");
    }

    #[test]
    fn io_arm_once_fires_exactly_once() {
        arm_once("fp-tests::io-once", FailAction::Io(IoFault::ShortWrite), 1);
        assert_eq!(io_hit("fp-tests::io-once"), Some(IoFault::ShortWrite));
        assert_eq!(io_hit("fp-tests::io-once"), None, "one-shot");
        disarm("fp-tests::io-once");
    }

    #[test]
    fn rearming_resets_count() {
        arm("fp-tests::rearm", FailAction::Error("a".into()), 1);
        assert_eq!(hit("fp-tests::rearm"), Some("a".into()));
        arm("fp-tests::rearm", FailAction::Error("b".into()), 2);
        assert_eq!(hit("fp-tests::rearm"), None, "count reset by re-arm");
        assert_eq!(hit("fp-tests::rearm"), Some("b".into()));
        disarm("fp-tests::rearm");
    }
}
