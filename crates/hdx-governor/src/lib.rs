//! # hdx-governor
//!
//! Run governor: deadlines, budgets, and cooperative cancellation for the
//! mining pipeline.
//!
//! The itemset lattice explored by the miners is exponential in the worst
//! case; a slightly-too-low `min_support` turns an interactive query into an
//! unbounded one. This crate provides the substrate that makes every run
//! *boundable* and every overrun *degrade, not die*:
//!
//! * [`RunBudget`] — declarative per-run limits (wall-clock deadline, mined
//!   itemsets, candidate bitset bytes, discretization tree nodes);
//! * [`CancelToken`] — a cheap shared flag for caller-initiated cancellation
//!   (one relaxed atomic load to test);
//! * [`Governor`] — the runtime object threaded through the miners and the
//!   discretizer: it polls the deadline and token every
//!   [`POLL_INTERVAL`] checks, charges work against the budget, and latches
//!   the first limit that trips;
//! * [`Termination`] — how a stage ended ([`Complete`](Termination::Complete)
//!   or one of the degraded-but-usable outcomes);
//! * [`RunCounters`] — a snapshot of the work charged, reported alongside
//!   results.
//!
//! The design is *cooperative*: hot loops call [`Governor::keep_going`] (or
//! one of the `record_*` methods) and stop emitting when it returns `false`.
//! Everything emitted before the trip is exact — an itemset's accumulator is
//! completed before the itemset is charged — so a truncated result is always
//! a valid subset of the unbounded result.
//!
//! Under the `hdx-fail` feature the [`failpoint`] module adds a
//! dependency-free fault-injection registry with named trigger points
//! (armable from tests to panic, stall, or return errors on the Nth hit).
//!
//! ```
//! use hdx_governor::{Governor, RunBudget, Termination};
//!
//! let governor = Governor::new(RunBudget::default().with_max_itemsets(2));
//! assert!(governor.record_itemsets(1)); // 1/2 — keep going
//! assert!(governor.record_itemsets(1)); // 2/2 — still within budget
//! assert!(!governor.record_itemsets(1)); // would exceed — trip
//! assert_eq!(governor.termination(), Termination::BudgetExhausted);
//! assert_eq!(governor.counters().itemsets, 2);
//! ```

use crate::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use crate::sync::Arc;
use std::time::{Duration, Instant};

/// The concurrency primitives behind the governor, swapped for the
/// `hdx-loom` modeled twins under `--cfg hdx_loom` so the models in
/// `tests/loom_models.rs` drive the *real* governor code through every
/// interleaving (see DESIGN.md §13 and `cargo xtask sanitize`).
#[cfg(not(hdx_loom))]
pub(crate) mod sync {
    pub(crate) use std::sync::{atomic, Arc};
}
/// `hdx-loom` twin of the `sync` facade (active under `--cfg hdx_loom`).
#[cfg(hdx_loom)]
pub(crate) mod sync {
    pub(crate) use hdx_loom::sync::{atomic, Arc};
}

/// Dependency-free fault injection: named fail points armed from tests
/// (compiled only under the `hdx-fail` feature).
#[cfg(feature = "hdx-fail")]
pub mod failpoint;

/// Marks a named fail-point trigger site (see [`failpoint`]).
///
/// Expands to nothing unless the *calling* crate enables its own `hdx-fail`
/// feature (which must forward to `hdx-governor/hdx-fail`). Two forms:
///
/// * `fail_point!("name")` — an armed [`failpoint::FailAction::Error`]
///   panics with its message (alongside `Panic`/`Stall`, which behave as
///   documented on [`failpoint::hit`]);
/// * `fail_point!("name", |msg| MyError::from(msg))` — an armed `Error`
///   makes the enclosing function `return Err(...)` instead.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        #[cfg(feature = "hdx-fail")]
        {
            if let Some(msg) = $crate::failpoint::hit($name) {
                panic!("fail point `{}` fired: {}", $name, msg);
            }
        }
    };
    ($name:expr, $to_err:expr) => {
        #[cfg(feature = "hdx-fail")]
        {
            if let Some(msg) = $crate::failpoint::hit($name) {
                return Err(($to_err)(msg));
            }
        }
    };
}

/// Marks a named *io-channel* fail-point trigger site (see
/// [`failpoint::io_hit`]): an armed [`failpoint::FailAction::Io`] makes the
/// enclosing function `return Err(($to_err)(io_error))`, where `io_error`
/// is the fault's `std::io::Error`. Sites that can *enact* a fault (e.g.
/// really leave a torn prefix on disk for a short write) should call
/// [`failpoint::io_hit`] directly instead and branch on the
/// [`failpoint::IoFault`]. Expands to nothing unless the calling crate
/// enables its own `hdx-fail` feature.
#[macro_export]
macro_rules! fail_point_io {
    ($name:expr, $to_err:expr) => {
        #[cfg(feature = "hdx-fail")]
        {
            if let Some(fault) = $crate::failpoint::io_hit($name) {
                return Err(($to_err)(fault.to_error()));
            }
        }
    };
}

/// How often (in [`Governor::keep_going`] calls) the deadline and the cancel
/// token are actually polled. Between polls the cost of a check is a single
/// relaxed atomic load, so governed hot loops stay hot.
pub const POLL_INTERVAL: u64 = 1024;

/// Declarative limits for one pipeline run. `None` everywhere (the default)
/// means unbounded.
///
/// Budgets are *cooperative*: each limit is enforced at the matching
/// `record_*` / `keep_going` call sites, so a run may overshoot by at most
/// one poll interval's worth of work before it notices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Wall-clock deadline for the run, measured from [`Governor`] creation.
    pub deadline: Option<Duration>,
    /// Maximum number of frequent itemsets to mine.
    pub max_itemsets: Option<u64>,
    /// Maximum bytes of candidate covers (bitsets) the miners may allocate.
    pub max_candidate_bytes: Option<u64>,
    /// Maximum nodes across all discretization trees.
    pub max_tree_nodes: Option<u64>,
}

impl RunBudget {
    /// An explicitly unbounded budget (same as `Default`).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Returns `true` when no limit is set.
    pub fn is_unbounded(&self) -> bool {
        *self == Self::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the mined-itemset cap.
    #[must_use]
    pub fn with_max_itemsets(mut self, max: u64) -> Self {
        self.max_itemsets = Some(max);
        self
    }

    /// Sets the candidate-bytes cap.
    #[must_use]
    pub fn with_max_candidate_bytes(mut self, max: u64) -> Self {
        self.max_candidate_bytes = Some(max);
        self
    }

    /// Sets the discretization tree-node cap.
    #[must_use]
    pub fn with_max_tree_nodes(mut self, max: u64) -> Self {
        self.max_tree_nodes = Some(max);
        self
    }

    /// Derives a per-job budget from a per-tenant budget when the tenant is
    /// running `shares` concurrent jobs: every *work* cap is divided evenly
    /// (never below 1, so a configured cap can't round away to unbounded),
    /// while the wall-clock deadline applies to each job in full — jobs run
    /// on separate workers, so their wall clocks don't add up.
    ///
    /// `shares == 0` is treated as 1.
    #[must_use]
    pub fn split_among(self, shares: u64) -> Self {
        let shares = shares.max(1);
        let div = |cap: Option<u64>| cap.map(|c| (c / shares).max(1));
        Self {
            deadline: self.deadline,
            max_itemsets: div(self.max_itemsets),
            max_candidate_bytes: div(self.max_candidate_bytes),
            max_tree_nodes: div(self.max_tree_nodes),
        }
    }
}

/// Why a [`CancelToken`] was cancelled. The token latches the *first* reason
/// it is cancelled with, so a shutdown drain arriving after an explicit user
/// cancel does not rewrite history (and vice versa).
///
/// The split exists for reporting: a service must tell "cancelled by user"
/// apart from "drained for shutdown", and both apart from a deadline trip
/// ([`Termination::DeadlineExceeded`], which the governor latches itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CancelReason {
    /// An explicit caller/user cancellation request.
    #[default]
    User,
    /// A service shutdown drain: stop at the next checkpoint boundary.
    Shutdown,
}

impl CancelReason {
    /// A stable lower-case label (used in reports and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::User => "user",
            Self::Shutdown => "shutdown",
        }
    }
}

/// How a governed stage ended.
///
/// Ordered by severity: [`Complete`](Termination::Complete) <
/// [`BudgetExhausted`](Termination::BudgetExhausted) <
/// [`DeadlineExceeded`](Termination::DeadlineExceeded) <
/// [`Cancelled`](Termination::Cancelled); [`Termination::worst`] merges
/// multi-stage outcomes. A cancellation carries its [`CancelReason`] so an
/// explicit user cancel is distinguishable from a shutdown drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Termination {
    /// The stage ran to completion; results are exhaustive.
    #[default]
    Complete,
    /// A [`RunBudget`] work limit tripped; results are a valid subset.
    BudgetExhausted,
    /// The wall-clock deadline passed; results are a valid subset.
    DeadlineExceeded,
    /// The [`CancelToken`] was cancelled (carrying the latched
    /// [`CancelReason`]); results are a valid subset.
    Cancelled(CancelReason),
}

/// Latch code for [`Termination::BudgetExhausted`] (see `RUNNING`).
const LATCH_BUDGET: u8 = 1;
/// Latch code for [`Termination::DeadlineExceeded`].
const LATCH_DEADLINE: u8 = 2;
/// Latch code for [`Termination::Cancelled`]`(`[`CancelReason::User`]`)`.
const LATCH_CANCELLED_USER: u8 = 3;
/// Latch code for [`Termination::Cancelled`]`(`[`CancelReason::Shutdown`]`)`.
const LATCH_CANCELLED_SHUTDOWN: u8 = 4;

impl Termination {
    /// `true` only for [`Termination::Complete`].
    pub fn is_complete(self) -> bool {
        self == Self::Complete
    }

    /// `true` for every degraded (non-`Complete`) outcome.
    pub fn is_partial(self) -> bool {
        !self.is_complete()
    }

    /// Severity rank backing [`Termination::worst`] (higher is worse). Both
    /// cancellation reasons rank equally — *why* a run was cancelled does
    /// not change how degraded its results are.
    fn severity(self) -> u8 {
        match self {
            Self::Complete => 0,
            Self::BudgetExhausted => 1,
            Self::DeadlineExceeded => 2,
            Self::Cancelled(_) => 3,
        }
    }

    /// The latch code stored in the governor's `tripped` atomic.
    fn latch_code(self) -> u8 {
        match self {
            Self::Complete => RUNNING,
            Self::BudgetExhausted => LATCH_BUDGET,
            Self::DeadlineExceeded => LATCH_DEADLINE,
            Self::Cancelled(CancelReason::User) => LATCH_CANCELLED_USER,
            Self::Cancelled(CancelReason::Shutdown) => LATCH_CANCELLED_SHUTDOWN,
        }
    }

    /// Decodes a latch code; anything unrecognised (notably `RUNNING`) is
    /// [`Termination::Complete`].
    fn from_latch_code(code: u8) -> Self {
        match code {
            LATCH_BUDGET => Self::BudgetExhausted,
            LATCH_DEADLINE => Self::DeadlineExceeded,
            LATCH_CANCELLED_USER => Self::Cancelled(CancelReason::User),
            LATCH_CANCELLED_SHUTDOWN => Self::Cancelled(CancelReason::Shutdown),
            _ => Self::Complete,
        }
    }

    /// The more severe of two stage outcomes (for multi-stage pipelines).
    /// Ties keep `self` (the earlier stage's outcome).
    #[must_use]
    pub fn worst(self, other: Self) -> Self {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }

    /// A stable lower-case label (used in reports and JSON). A user cancel
    /// keeps the historical `"cancelled"` label; a shutdown drain reports
    /// `"cancelled_shutdown"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Complete => "complete",
            Self::BudgetExhausted => "budget_exhausted",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Cancelled(CancelReason::User) => "cancelled",
            Self::Cancelled(CancelReason::Shutdown) => "cancelled_shutdown",
        }
    }

    /// A human-facing phrase for banners and status lines ("timed out",
    /// "cancelled by user", ...), where [`as_str`](Self::as_str) is the
    /// stable machine label.
    pub fn describe(self) -> &'static str {
        match self {
            Self::Complete => "complete",
            Self::BudgetExhausted => "budget exhausted",
            Self::DeadlineExceeded => "timed out",
            Self::Cancelled(CancelReason::User) => "cancelled by user",
            Self::Cancelled(CancelReason::Shutdown) => "cancelled by shutdown drain",
        }
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `CancelToken` flag value while not cancelled; a cancel latches
/// `1 + CancelReason as u8` (first reason wins).
const UNCANCELLED: u8 = 0;

/// A shared cancellation flag. Cloning yields a handle to the *same* flag,
/// so a caller can keep one half and hand the other to a [`Governor`].
///
/// The flag latches a [`CancelReason`]: the first cancel wins and later
/// cancels (with any reason) are no-ops, so the reported reason is always
/// the one that actually stopped the run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation on behalf of the user/caller
    /// ([`CancelReason::User`]). Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancel_with(CancelReason::User);
    }

    /// Requests cancellation for a shutdown drain
    /// ([`CancelReason::Shutdown`]): cooperating stages stop at their next
    /// poll (for checkpointed runs, at a checkpoint boundary). Idempotent;
    /// never blocks.
    pub fn cancel_for_shutdown(&self) {
        self.cancel_with(CancelReason::Shutdown);
    }

    /// Requests cancellation with an explicit `reason`. The first reason to
    /// land wins; repeats never rewrite it.
    pub fn cancel_with(&self, reason: CancelReason) {
        let _ = self.flag.compare_exchange(
            UNCANCELLED,
            1 + reason as u8,
            // ORDERING: sticky one-way latch, polled cooperatively; no data
            // is published under it, so observing it a poll late is
            // harmless, and the CAS alone serialises racing reasons.
            Ordering::Relaxed,
            // ORDERING: the failure load is only used to discard repeats.
            Ordering::Relaxed,
        );
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: see `cancel_with` — the flag value itself is the message.
        self.flag.load(Ordering::Relaxed) != UNCANCELLED
    }

    /// The latched cancellation reason, or `None` while un-cancelled.
    pub fn reason(&self) -> Option<CancelReason> {
        // ORDERING: see `cancel_with` — the flag value itself is the message.
        match self.flag.load(Ordering::Relaxed) {
            x if x == 1 + CancelReason::User as u8 => Some(CancelReason::User),
            x if x == 1 + CancelReason::Shutdown as u8 => Some(CancelReason::Shutdown),
            _ => None,
        }
    }
}

/// A point-in-time view of one governor's budget consumption: what is
/// spent, what wall clock remains, and whether anything has tripped yet.
///
/// Sampled by the miners at every lattice level (under the `obs` feature,
/// via [`Governor::record_obs_snapshot`]) so run telemetry shows budget
/// consumption over time; all spend fields are monotonically non-decreasing
/// across consecutive snapshots of the same governor, and
/// `deadline_remaining` is non-increasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorSnapshot {
    /// Time since the governor was created.
    pub elapsed: Duration,
    /// Wall-clock budget still available (`None` when no deadline is set;
    /// zero once the deadline has passed).
    pub deadline_remaining: Option<Duration>,
    /// Itemsets charged so far.
    pub itemsets: u64,
    /// Candidate-cover bytes charged so far.
    pub candidate_bytes: u64,
    /// Discretization tree nodes charged so far.
    pub tree_nodes: u64,
    /// `keep_going` checks performed so far.
    pub checks: u64,
    /// The outcome latched so far ([`Termination::Complete`] while running).
    pub termination: Termination,
}

/// A snapshot of the work a [`Governor`] has charged so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCounters {
    /// Frequent itemsets charged by the miners.
    pub itemsets: u64,
    /// Candidate cover bytes charged by the miners.
    pub candidate_bytes: u64,
    /// Discretization tree nodes charged.
    pub tree_nodes: u64,
    /// `keep_going` checks performed (≈ candidates examined / poll sites hit).
    pub checks: u64,
}

impl RunCounters {
    /// Field-wise sum of two stage snapshots (for multi-stage pipelines
    /// whose stages run under separate governors).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            itemsets: self.itemsets + other.itemsets,
            candidate_bytes: self.candidate_bytes + other.candidate_bytes,
            tree_nodes: self.tree_nodes + other.tree_nodes,
            checks: self.checks + other.checks,
        }
    }
}

/// `Termination` latched as a `u8`; `RUNNING` means nothing tripped yet.
const RUNNING: u8 = u8::MAX;

#[derive(Debug)]
struct Inner {
    started: Instant,
    deadline_at: Option<Instant>,
    budget: RunBudget,
    cancel: CancelToken,
    /// First trip wins: `RUNNING` until a limit latches a `Termination`.
    tripped: AtomicU8,
    itemsets: AtomicU64,
    candidate_bytes: AtomicU64,
    tree_nodes: AtomicU64,
    checks: AtomicU64,
}

/// The runtime half of a [`RunBudget`]: threaded (by reference or clone —
/// clones share state) through the miners and the discretizer, which call
/// [`keep_going`](Governor::keep_going) in their hot loops and `record_*`
/// when they commit work.
///
/// Once any limit trips, the corresponding [`Termination`] is latched and
/// every subsequent check returns `false`, so all cooperating workers wind
/// down together.
#[derive(Debug, Clone)]
pub struct Governor {
    inner: Arc<Inner>,
}

impl Default for Governor {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl Governor {
    /// A governor with `budget` and a fresh internal [`CancelToken`].
    pub fn new(budget: RunBudget) -> Self {
        Self::with_token(budget, CancelToken::new())
    }

    /// A governor with `budget`, observing an external `cancel` token.
    pub fn with_token(budget: RunBudget, cancel: CancelToken) -> Self {
        let started = Instant::now();
        Self {
            inner: Arc::new(Inner {
                started,
                deadline_at: budget.deadline.and_then(|d| started.checked_add(d)),
                budget,
                cancel,
                tripped: AtomicU8::new(RUNNING),
                itemsets: AtomicU64::new(0),
                candidate_bytes: AtomicU64::new(0),
                tree_nodes: AtomicU64::new(0),
                checks: AtomicU64::new(0),
            }),
        }
    }

    /// A governor that never trips on its own (no limits, internal token).
    pub fn unbounded() -> Self {
        Self::new(RunBudget::default())
    }

    /// A governor for a *resumed* run: work counters start from `prior` so a
    /// budget keeps charging across the restart instead of resetting. The
    /// deadline clock still starts now — wall-clock spent by a dead process
    /// is not billed to its successor.
    pub fn resumed(budget: RunBudget, prior: RunCounters) -> Self {
        Self::resumed_with_token(budget, CancelToken::new(), prior)
    }

    /// [`resumed`](Self::resumed) observing an external `cancel` token.
    pub fn resumed_with_token(budget: RunBudget, cancel: CancelToken, prior: RunCounters) -> Self {
        let gov = Self::with_token(budget, cancel);
        let counters = &gov.inner;
        // ORDERING: plain counter seeding; the governor has not been shared
        // yet, and the Arc hand-off that shares it publishes these stores.
        counters.itemsets.store(prior.itemsets, Ordering::Relaxed);
        counters
            .candidate_bytes
            // ORDERING: same not-yet-shared argument as `itemsets` above.
            .store(prior.candidate_bytes, Ordering::Relaxed);
        counters
            .tree_nodes
            // ORDERING: same not-yet-shared argument as `itemsets` above.
            .store(prior.tree_nodes, Ordering::Relaxed);
        // ORDERING: same not-yet-shared argument as `itemsets` above.
        counters.checks.store(prior.checks, Ordering::Relaxed);
        gov
    }

    /// The budget this governor enforces.
    pub fn budget(&self) -> &RunBudget {
        &self.inner.budget
    }

    /// A handle to the cancel token observed by this governor.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Time elapsed since the governor was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Wall-clock budget still available (`None` when no deadline is set;
    /// zero once the deadline has passed).
    pub fn remaining_deadline(&self) -> Option<Duration> {
        self.inner
            .deadline_at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// The cheap cooperative check: `true` while the run should continue.
    ///
    /// Cost between polls is one relaxed load plus one relaxed increment;
    /// every [`POLL_INTERVAL`] calls it additionally tests the cancel token
    /// and the deadline clock.
    #[inline]
    pub fn keep_going(&self) -> bool {
        // ORDERING: `tripped` is a sticky latch polled cooperatively; acting
        // one iteration late is fine and no memory is read under it.
        if self.inner.tripped.load(Ordering::Relaxed) != RUNNING {
            return false;
        }
        // ORDERING: poll-pacing statistic; cross-thread exactness of the
        // modulo phase is not required.
        let n = self.inner.checks.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(POLL_INTERVAL) {
            self.poll()
        } else {
            true
        }
    }

    /// Forces a full poll of the cancel token and the deadline, regardless
    /// of the poll interval. Returns `true` while the run should continue.
    pub fn poll(&self) -> bool {
        // ORDERING: sticky-latch early-out, same argument as `keep_going`.
        if self.inner.tripped.load(Ordering::Relaxed) != RUNNING {
            return false;
        }
        if let Some(reason) = self.inner.cancel.reason() {
            self.trip(Termination::Cancelled(reason));
            return false;
        }
        if let Some(at) = self.inner.deadline_at {
            if Instant::now() >= at {
                self.trip(Termination::DeadlineExceeded);
                return false;
            }
        }
        true
    }

    /// Charges `n` mined itemsets. Returns `false` (tripping
    /// [`Termination::BudgetExhausted`]) when the charge would exceed
    /// `max_itemsets`; the caller must then *not* emit the work.
    #[inline]
    pub fn record_itemsets(&self, n: u64) -> bool {
        let ok = self.charge(&self.inner.itemsets, n, self.inner.budget.max_itemsets);
        if ok {
            hdx_obs::counter_add!(GovernorItemsetsCharged, n);
        }
        ok
    }

    /// Charges `n` bytes of candidate covers against `max_candidate_bytes`.
    #[inline]
    pub fn record_candidate_bytes(&self, n: u64) -> bool {
        let ok = self.charge(
            &self.inner.candidate_bytes,
            n,
            self.inner.budget.max_candidate_bytes,
        );
        if ok {
            hdx_obs::counter_add!(GovernorCandidateBytesCharged, n);
        }
        ok
    }

    /// Charges `n` discretization tree nodes against `max_tree_nodes`.
    #[inline]
    pub fn record_tree_nodes(&self, n: u64) -> bool {
        let ok = self.charge(&self.inner.tree_nodes, n, self.inner.budget.max_tree_nodes);
        if ok {
            hdx_obs::counter_add!(GovernorTreeNodesCharged, n);
        }
        ok
    }

    /// Charges `n` units to `counter`. On overflow of `cap` the charge is
    /// rolled back, the governor trips, and `false` is returned.
    fn charge(&self, counter: &AtomicU64, n: u64, cap: Option<u64>) -> bool {
        // ORDERING: sticky-latch early-out, same argument as `keep_going`.
        if self.inner.tripped.load(Ordering::Relaxed) != RUNNING {
            return false;
        }
        // ORDERING: the cap is enforced by fetch_add's atomicity on this one
        // counter; no other memory is published under the charge.
        let total = counter.fetch_add(n, Ordering::Relaxed) + n;
        if cap.is_some_and(|cap| total > cap) {
            // ORDERING: rollback of the same counter; same argument.
            counter.fetch_sub(n, Ordering::Relaxed);
            self.trip(Termination::BudgetExhausted);
            return false;
        }
        true
    }

    /// Latches `termination` as the run outcome (first trip wins).
    /// Tripping with [`Termination::Complete`] is a no-op.
    ///
    /// Under `obs`, the *winning* trip (the one that latches) is mirrored
    /// into run telemetry as a `trip:<reason>` span event plus one
    /// `hdx.governor.trip.*` counter; repeat trips stay silent so counters
    /// count run outcomes, not call sites.
    pub fn trip(&self, termination: Termination) {
        if termination.is_complete() {
            return;
        }
        let latched = self
            .inner
            .tripped
            .compare_exchange(
                RUNNING,
                termination.latch_code(),
                // ORDERING: first-trip-wins latch; readers consume the value
                // itself, never memory ordered by it.
                Ordering::Relaxed,
                // ORDERING: the failure load is only used to discard repeats.
                Ordering::Relaxed,
            )
            .is_ok();
        if latched {
            hdx_obs::event!("trip", str termination.as_str());
            match termination {
                Termination::Complete => {}
                Termination::BudgetExhausted => {
                    hdx_obs::counter_add!(GovernorTripBudget, 1);
                }
                Termination::DeadlineExceeded => {
                    hdx_obs::counter_add!(GovernorTripDeadline, 1);
                }
                Termination::Cancelled(_) => {
                    hdx_obs::counter_add!(GovernorTripCancelled, 1);
                }
            }
        }
    }

    /// Whether any limit has tripped.
    pub fn is_tripped(&self) -> bool {
        // ORDERING: sticky latch; the loaded value itself is the answer.
        self.inner.tripped.load(Ordering::Relaxed) != RUNNING
    }

    /// The outcome so far: [`Termination::Complete`] while running or after
    /// an untripped run, otherwise the latched degraded outcome.
    pub fn termination(&self) -> Termination {
        // ORDERING: sticky latch; the loaded value itself is the answer.
        Termination::from_latch_code(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// A snapshot of the charged work.
    pub fn counters(&self) -> RunCounters {
        RunCounters {
            // ORDERING: statistical snapshot; each counter is read
            // atomically and cross-counter consistency is not promised.
            itemsets: self.inner.itemsets.load(Ordering::Relaxed),
            // ORDERING: snapshot read, as `itemsets` above.
            candidate_bytes: self.inner.candidate_bytes.load(Ordering::Relaxed),
            // ORDERING: snapshot read, as `itemsets` above.
            tree_nodes: self.inner.tree_nodes.load(Ordering::Relaxed),
            // ORDERING: snapshot read, as `itemsets` above.
            checks: self.inner.checks.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time [`GovernorSnapshot`] of this governor's consumption.
    ///
    /// Successive snapshots of one governor are monotone: every spend field
    /// never decreases, `elapsed` never decreases, and `deadline_remaining`
    /// never increases (asserted by `tests/governor.rs`).
    pub fn snapshot(&self) -> GovernorSnapshot {
        let c = self.counters();
        GovernorSnapshot {
            elapsed: self.elapsed(),
            deadline_remaining: self.remaining_deadline(),
            itemsets: c.itemsets,
            candidate_bytes: c.candidate_bytes,
            tree_nodes: c.tree_nodes,
            checks: c.checks,
            termination: self.termination(),
        }
    }

    /// The current consumption as an `hdx_obs::SnapshotSample`, tagged with
    /// the mining `level` it was sampled at (0 = end of stage). Compiled
    /// only under the `obs` feature.
    #[cfg(feature = "obs")]
    pub fn obs_sample(&self, level: u64) -> hdx_obs::SnapshotSample {
        let s = self.snapshot();
        hdx_obs::SnapshotSample {
            level,
            elapsed_ns: s.elapsed.as_nanos() as u64,
            deadline_remaining_ns: s.deadline_remaining.map(|d| d.as_nanos() as u64),
            itemsets: s.itemsets,
            candidate_bytes: s.candidate_bytes,
            tree_nodes: s.tree_nodes,
        }
    }

    /// Records the current [`GovernorSnapshot`] into the hdx-obs recorder
    /// (see [`Self::obs_sample`]). The miners call it once per lattice level
    /// so telemetry shows budget consumption over time; samples also flow
    /// through the live tap (`hdx_obs::SnapshotObserver`) when one is
    /// installed, which is how hdx-serve streams per-level progress.
    #[cfg(feature = "obs")]
    pub fn record_obs_snapshot(&self, level: u64) {
        hdx_obs::record_snapshot(self.obs_sample(level));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resumed_governor_keeps_charging_from_prior_counters() {
        let prior = RunCounters {
            itemsets: 90,
            candidate_bytes: 1024,
            tree_nodes: 7,
            checks: 3,
        };
        let budget = RunBudget {
            max_itemsets: Some(100),
            ..RunBudget::default()
        };
        let g = Governor::resumed(budget, prior);
        assert_eq!(g.counters().itemsets, 90);
        assert_eq!(g.counters().candidate_bytes, 1024);
        assert!(g.record_itemsets(10), "exactly at the cap is allowed");
        assert!(!g.record_itemsets(1), "the resumed run shares the budget");
        assert_eq!(g.termination(), Termination::BudgetExhausted);
    }

    #[test]
    fn unbounded_never_trips() {
        let g = Governor::unbounded();
        for _ in 0..(POLL_INTERVAL * 3) {
            assert!(g.keep_going());
        }
        assert!(g.record_itemsets(1_000_000));
        assert!(g.record_candidate_bytes(u64::MAX / 2));
        assert_eq!(g.termination(), Termination::Complete);
        assert!(!g.is_tripped());
    }

    #[test]
    fn itemset_budget_trips_and_rolls_back() {
        let g = Governor::new(RunBudget::default().with_max_itemsets(10));
        assert!(g.record_itemsets(10));
        assert!(!g.record_itemsets(1));
        assert_eq!(g.termination(), Termination::BudgetExhausted);
        // The rejected charge is rolled back: counters report committed work.
        assert_eq!(g.counters().itemsets, 10);
        // Once tripped, everything reports false.
        assert!(!g.keep_going());
        assert!(!g.record_candidate_bytes(1));
    }

    #[test]
    fn cancel_token_trips_on_poll() {
        let token = CancelToken::new();
        let g = Governor::with_token(RunBudget::default(), token.clone());
        assert!(g.poll());
        token.cancel();
        assert!(!g.poll());
        assert_eq!(g.termination(), Termination::Cancelled(CancelReason::User));
    }

    #[test]
    fn shutdown_cancel_is_distinguishable_from_user_cancel() {
        let token = CancelToken::new();
        let g = Governor::with_token(RunBudget::default(), token.clone());
        token.cancel_for_shutdown();
        assert!(!g.poll());
        assert_eq!(
            g.termination(),
            Termination::Cancelled(CancelReason::Shutdown)
        );
        assert_eq!(g.termination().as_str(), "cancelled_shutdown");
        assert_eq!(g.termination().describe(), "cancelled by shutdown drain");
    }

    #[test]
    fn first_cancel_reason_wins() {
        let token = CancelToken::new();
        token.cancel();
        token.cancel_for_shutdown();
        assert_eq!(token.reason(), Some(CancelReason::User));

        let token = CancelToken::new();
        assert_eq!(token.reason(), None);
        token.cancel_for_shutdown();
        token.cancel();
        assert_eq!(token.reason(), Some(CancelReason::Shutdown));
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_noticed_within_one_poll_interval() {
        let g = Governor::unbounded();
        g.cancel_token().cancel();
        let mut steps = 0u64;
        while g.keep_going() {
            steps += 1;
            assert!(steps <= POLL_INTERVAL, "cancellation missed a poll window");
        }
        assert_eq!(g.termination(), Termination::Cancelled(CancelReason::User));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Governor::new(RunBudget::default().with_deadline(Duration::ZERO));
        assert!(!g.poll());
        assert_eq!(g.termination(), Termination::DeadlineExceeded);
        assert_eq!(g.remaining_deadline(), Some(Duration::ZERO));
    }

    #[test]
    fn first_trip_wins() {
        let g = Governor::new(RunBudget::default().with_max_itemsets(0));
        assert!(!g.record_itemsets(1));
        g.cancel_token().cancel();
        assert!(!g.poll());
        assert_eq!(g.termination(), Termination::BudgetExhausted);
    }

    #[test]
    fn trip_with_complete_is_noop() {
        let g = Governor::unbounded();
        g.trip(Termination::Complete);
        assert!(!g.is_tripped());
        assert!(g.keep_going());
    }

    #[test]
    fn worst_orders_severity() {
        use Termination::*;
        let cancelled = Cancelled(CancelReason::User);
        let drained = Cancelled(CancelReason::Shutdown);
        assert_eq!(Complete.worst(BudgetExhausted), BudgetExhausted);
        assert_eq!(DeadlineExceeded.worst(BudgetExhausted), DeadlineExceeded);
        assert_eq!(cancelled.worst(DeadlineExceeded), cancelled);
        assert_eq!(Complete.worst(Complete), Complete);
        // Equal severity keeps the earlier stage's reason.
        assert_eq!(cancelled.worst(drained), cancelled);
        assert_eq!(drained.worst(cancelled), drained);
    }

    #[test]
    fn budget_builders_compose() {
        let b = RunBudget::default()
            .with_deadline(Duration::from_millis(5))
            .with_max_itemsets(7)
            .with_max_candidate_bytes(1 << 20)
            .with_max_tree_nodes(64);
        assert!(!b.is_unbounded());
        assert_eq!(b.max_itemsets, Some(7));
        assert_eq!(b.max_candidate_bytes, Some(1 << 20));
        assert_eq!(b.max_tree_nodes, Some(64));
        assert!(RunBudget::unbounded().is_unbounded());
    }

    #[test]
    fn split_among_divides_work_caps_but_not_the_deadline() {
        let b = RunBudget::default()
            .with_deadline(Duration::from_secs(10))
            .with_max_itemsets(100)
            .with_max_candidate_bytes(3)
            .with_max_tree_nodes(64);
        let per_job = b.split_among(4);
        assert_eq!(per_job.deadline, Some(Duration::from_secs(10)));
        assert_eq!(per_job.max_itemsets, Some(25));
        assert_eq!(per_job.max_candidate_bytes, Some(1), "never rounds to 0");
        assert_eq!(per_job.max_tree_nodes, Some(16));
        // Unset caps stay unset; zero shares is treated as one.
        assert_eq!(RunBudget::default().split_among(8), RunBudget::default());
        assert_eq!(b.split_among(0), b);
    }

    #[test]
    fn snapshots_are_monotone_under_charging() {
        let g = Governor::new(
            RunBudget::default()
                .with_deadline(Duration::from_secs(3600))
                .with_max_itemsets(100),
        );
        let mut prev = g.snapshot();
        assert_eq!(prev.termination, Termination::Complete);
        for _ in 0..20 {
            g.record_itemsets(5);
            g.record_candidate_bytes(64);
            g.record_tree_nodes(1);
            let s = g.snapshot();
            assert!(s.itemsets >= prev.itemsets);
            assert!(s.candidate_bytes >= prev.candidate_bytes);
            assert!(s.tree_nodes >= prev.tree_nodes);
            assert!(s.checks >= prev.checks);
            assert!(s.elapsed >= prev.elapsed);
            assert!(s.deadline_remaining <= prev.deadline_remaining);
            prev = s;
        }
        assert_eq!(prev.itemsets, 100);
        assert!(!g.record_itemsets(1), "cap reached — next charge trips");
        assert_eq!(g.snapshot().termination, Termination::BudgetExhausted);
        assert_eq!(g.snapshot().itemsets, 100, "rejected charge rolled back");
    }

    #[test]
    fn shared_across_clones() {
        let g = Governor::new(RunBudget::default().with_max_itemsets(5));
        let g2 = g.clone();
        assert!(g.record_itemsets(5));
        assert!(!g2.record_itemsets(1));
        assert!(g.is_tripped());
    }
}
