//! hdx-loom models of the governor's concurrency protocols, run by
//! `cargo xtask sanitize`:
//!
//! ```text
//! RUSTFLAGS="--cfg hdx_loom" cargo test -p hdx-governor --test loom_models
//! ```
//!
//! Under `--cfg hdx_loom` the governor's `sync` facade swaps its atomics
//! for the modeled twins, so these tests drive the *real* `CancelToken`,
//! `charge`/rollback and `trip` code through every interleaving of their
//! atomic operations. Built as an empty test crate without the cfg.
#![cfg(hdx_loom)]

use hdx_governor::{CancelReason, CancelToken, Governor, RunBudget, Termination};

#[test]
fn cancel_is_sticky_and_visible_after_join() {
    hdx_loom::model(|| {
        let token = CancelToken::new();
        let remote = token.clone();
        let h = hdx_loom::thread::spawn(move || remote.cancel());
        // Mid-flight observation may be either value; it must never block
        // and must never un-cancel.
        let early = token.is_cancelled();
        h.join().expect("cancel thread panicked");
        assert!(token.is_cancelled(), "cancel lost after join");
        if early {
            assert!(token.is_cancelled(), "sticky flag reverted");
        }
    });
}

#[test]
fn concurrent_polls_latch_cancellation_exactly_once() {
    hdx_loom::model(|| {
        let g = Governor::unbounded();
        let token = g.cancel_token();
        let g2 = g.clone();
        let h = hdx_loom::thread::spawn(move || {
            token.cancel();
            g2.poll()
        });
        let local = g.poll();
        let remote = h.join().expect("poll thread panicked");
        // Whatever each in-flight poll saw, the latch is set afterwards
        // and every later check agrees.
        assert!(!remote, "the poll after cancel() must report a stop");
        assert!(!g.poll());
        assert!(g.is_tripped());
        assert_eq!(g.termination(), Termination::Cancelled(CancelReason::User));
        let _ = local; // may be true (pre-cancel) or false (post-cancel)
    });
}

#[test]
fn charges_from_two_threads_merge_exactly() {
    hdx_loom::model(|| {
        let g = Governor::unbounded();
        let g2 = g.clone();
        let h = hdx_loom::thread::spawn(move || {
            assert!(g2.record_itemsets(3));
            assert!(g2.record_candidate_bytes(5));
        });
        assert!(g.record_itemsets(4));
        h.join().expect("charging thread panicked");
        let c = g.counters();
        assert_eq!(c.itemsets, 7, "no charge may be lost or doubled");
        assert_eq!(c.candidate_bytes, 5);
        assert_eq!(g.termination(), Termination::Complete);
    });
}

#[test]
fn capped_budget_admits_exactly_one_of_two_racing_charges() {
    hdx_loom::model(|| {
        let g = Governor::new(RunBudget::default().with_max_itemsets(1));
        let g2 = g.clone();
        let h = hdx_loom::thread::spawn(move || g2.record_itemsets(1));
        let mine = g.record_itemsets(1);
        let theirs = h.join().expect("charging thread panicked");
        assert!(
            mine != theirs,
            "cap 1 must admit exactly one of two unit charges (got {mine}/{theirs})"
        );
        assert_eq!(g.counters().itemsets, 1, "the rejected charge rolls back");
        assert_eq!(g.termination(), Termination::BudgetExhausted);
    });
}

#[test]
fn first_trip_wins_under_racing_reasons() {
    hdx_loom::model(|| {
        let g = Governor::unbounded();
        let g2 = g.clone();
        let h =
            hdx_loom::thread::spawn(move || g2.trip(Termination::Cancelled(CancelReason::User)));
        g.trip(Termination::DeadlineExceeded);
        h.join().expect("tripping thread panicked");
        let first = g.termination();
        assert!(
            first == Termination::Cancelled(CancelReason::User)
                || first == Termination::DeadlineExceeded,
            "latched reason must be one of the racers, got {first:?}"
        );
        // The latch is stable: repeated reads and late trips change nothing.
        g.trip(Termination::BudgetExhausted);
        assert_eq!(g.termination(), first);
        assert!(g.is_tripped());
        assert!(!g.keep_going());
    });
}
