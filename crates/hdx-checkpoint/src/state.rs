//! The checkpointed run state: what is persisted, in plain-data form.
//!
//! Everything here is deliberately *untyped* with respect to the rest of the
//! workspace — item ids are `u32`, attributes `u16`, accumulators raw sums —
//! so the checkpoint crate sits below the mining/discretize crates in the
//! dependency graph. The conversion to and from the real `Itemset` /
//! `StatAccum` / `DiscretizationTree` types lives next to those types.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::CheckpointError;
use crate::fingerprint::Fingerprint;

/// Raw `StatAccum` sums of one itemset: enough to rebuild the accumulator
/// exactly (`StatAccum::from_sums`).
#[derive(Debug, Clone, PartialEq)]
pub struct AccumSnapshot {
    /// Number of covered rows.
    pub n: u64,
    /// Covered rows with a defined outcome.
    pub n_valid: u64,
    /// Sum of defined outcome values.
    pub sum: f64,
    /// Sum of squared defined outcome values.
    pub sum_sq: f64,
}

/// One emitted frequent itemset: sorted item ids plus its accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemsetSnapshot {
    /// Item ids, ascending.
    pub items: Vec<u32>,
    /// The itemset's outcome statistics.
    pub accum: AccumSnapshot,
}

/// Governor counters at checkpoint time, so a resumed run keeps charging the
/// same budget instead of resetting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Itemsets charged against `max_itemsets`.
    pub itemsets: u64,
    /// Bytes charged against `max_candidate_bytes`.
    pub candidate_bytes: u64,
    /// Nodes charged against `max_tree_nodes`.
    pub tree_nodes: u64,
}

/// Where a miner is in its traversal, plus everything it has emitted.
///
/// The `cursor` is algorithm-specific but always means "work units fully
/// completed": for Apriori it is the last *completed level* `k` (the
/// `frontier` holds that level's surviving itemsets); for the vertical and
/// FP-Growth miners it is the number of first-level subtrees (root items /
/// header entries) fully explored, and `frontier` is empty. All three miners
/// are deterministic, so `emitted[..]` + `cursor` reproduce the uninterrupted
/// run exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningProgress {
    /// The mining algorithm's stable name (`MiningAlgorithm::as_str`).
    pub algorithm: String,
    /// Completed-work cursor (see type docs).
    pub cursor: u64,
    /// Transaction count, re-checked on resume.
    pub n_rows: u64,
    /// Every frequent itemset emitted so far, in emission order.
    pub emitted: Vec<ItemsetSnapshot>,
    /// Apriori's current frontier (sorted itemsets of level `cursor`);
    /// empty for the depth-first miners.
    pub frontier: Vec<Vec<u32>>,
    /// Governor counters at the boundary.
    pub counters: CounterSnapshot,
}

/// One node of a persisted discretization tree (creation order, index 0 is
/// the root).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNodeSnapshot {
    /// Interval lower bound (exclusive; `-inf` at the left edge).
    pub lo: f64,
    /// Interval upper bound (inclusive; `+inf` at the right edge).
    pub hi: f64,
    /// Interned item id (`None` only for the root).
    pub item: Option<u32>,
    /// Node support as a fraction of the dataset.
    pub support: f64,
    /// Node statistic (`None` when all outcomes undefined).
    pub statistic: Option<f64>,
    /// Node divergence from the global statistic.
    pub divergence: Option<f64>,
    /// Child node indices.
    pub children: Vec<u32>,
    /// Depth (root = 0).
    pub depth: u32,
}

/// A persisted discretization tree for one continuous attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSnapshot {
    /// The raw attribute id.
    pub attr: u16,
    /// Nodes in creation order.
    pub nodes: Vec<TreeNodeSnapshot>,
}

/// The complete persisted state of a run: identity fingerprints, the
/// discretization trees, and the mining progress.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Fingerprint of the dataset + outcome vector the run was started on.
    pub dataset_fingerprint: u64,
    /// Fingerprint of the effective configuration (support thresholds,
    /// algorithm, exploration mode, …).
    pub config_fingerprint: u64,
    /// The discretization trees the item catalog was built from.
    pub trees: Vec<TreeSnapshot>,
    /// Mining traversal state.
    pub progress: MiningProgress,
}

impl CheckpointState {
    /// Encodes the state into a codec payload (not yet enveloped).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.dataset_fingerprint);
        w.put_u64(self.config_fingerprint);
        w.put_u64(self.trees.len() as u64);
        for tree in &self.trees {
            encode_tree(&mut w, tree);
        }
        encode_progress(&mut w, &self.progress);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    /// [`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`] on any
    /// structural mismatch; decoding never panics.
    pub fn decode(payload: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(payload);
        let dataset_fingerprint = r.u64()?;
        let config_fingerprint = r.u64()?;
        let n_trees = r.len_prefix()?;
        let mut trees = Vec::with_capacity(n_trees.min(1024));
        for _ in 0..n_trees {
            trees.push(decode_tree(&mut r)?);
        }
        let progress = decode_progress(&mut r)?;
        r.finish()?;
        Ok(Self {
            dataset_fingerprint,
            config_fingerprint,
            trees,
            progress,
        })
    }
}

/// Content fingerprint of a set of trees (used to verify that resume-time
/// re-discretization reproduced the checkpointed trees exactly).
pub fn fingerprint_trees(trees: &[TreeSnapshot]) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(trees.len() as u64);
    for tree in trees {
        encode_tree(&mut w, tree);
    }
    let mut f = Fingerprint::new();
    f.write_bytes(&w.into_bytes());
    f.finish()
}

fn encode_tree(w: &mut ByteWriter, tree: &TreeSnapshot) {
    w.put_u32(tree.attr as u32);
    w.put_u64(tree.nodes.len() as u64);
    for node in &tree.nodes {
        w.put_f64(node.lo);
        w.put_f64(node.hi);
        w.put_opt_u32(node.item);
        w.put_f64(node.support);
        w.put_opt_f64(node.statistic);
        w.put_opt_f64(node.divergence);
        w.put_u32_list(&node.children);
        w.put_u32(node.depth);
    }
}

fn decode_tree(r: &mut ByteReader<'_>) -> Result<TreeSnapshot, CheckpointError> {
    let attr_raw = r.u32()?;
    let attr = u16::try_from(attr_raw).map_err(|_| CheckpointError::Corrupt {
        message: format!("attribute id {attr_raw} out of range"),
    })?;
    let n_nodes = r.len_prefix()?;
    let mut nodes = Vec::with_capacity(n_nodes.min(65_536));
    for _ in 0..n_nodes {
        nodes.push(TreeNodeSnapshot {
            lo: r.f64()?,
            hi: r.f64()?,
            item: r.opt_u32()?,
            support: r.f64()?,
            statistic: r.opt_f64()?,
            divergence: r.opt_f64()?,
            children: r.u32_list()?,
            depth: r.u32()?,
        });
    }
    Ok(TreeSnapshot { attr, nodes })
}

fn encode_progress(w: &mut ByteWriter, p: &MiningProgress) {
    w.put_str(&p.algorithm);
    w.put_u64(p.cursor);
    w.put_u64(p.n_rows);
    w.put_u64(p.emitted.len() as u64);
    for fi in &p.emitted {
        w.put_u32_list(&fi.items);
        w.put_u64(fi.accum.n);
        w.put_u64(fi.accum.n_valid);
        w.put_f64(fi.accum.sum);
        w.put_f64(fi.accum.sum_sq);
    }
    w.put_u64(p.frontier.len() as u64);
    for itemset in &p.frontier {
        w.put_u32_list(itemset);
    }
    w.put_u64(p.counters.itemsets);
    w.put_u64(p.counters.candidate_bytes);
    w.put_u64(p.counters.tree_nodes);
}

fn decode_progress(r: &mut ByteReader<'_>) -> Result<MiningProgress, CheckpointError> {
    let algorithm = r.str()?;
    let cursor = r.u64()?;
    let n_rows = r.u64()?;
    let n_emitted = r.len_prefix()?;
    let mut emitted = Vec::with_capacity(n_emitted.min(1 << 20));
    for _ in 0..n_emitted {
        emitted.push(ItemsetSnapshot {
            items: r.u32_list()?,
            accum: AccumSnapshot {
                n: r.u64()?,
                n_valid: r.u64()?,
                sum: r.f64()?,
                sum_sq: r.f64()?,
            },
        });
    }
    let n_frontier = r.len_prefix()?;
    let mut frontier = Vec::with_capacity(n_frontier.min(1 << 20));
    for _ in 0..n_frontier {
        frontier.push(r.u32_list()?);
    }
    let counters = CounterSnapshot {
        itemsets: r.u64()?,
        candidate_bytes: r.u64()?,
        tree_nodes: r.u64()?,
    };
    Ok(MiningProgress {
        algorithm,
        cursor,
        n_rows,
        emitted,
        frontier,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_state() -> CheckpointState {
        CheckpointState {
            dataset_fingerprint: 0x1122_3344_5566_7788,
            config_fingerprint: 0x99aa_bbcc_ddee_ff00,
            trees: vec![TreeSnapshot {
                attr: 3,
                nodes: vec![
                    TreeNodeSnapshot {
                        lo: f64::NEG_INFINITY,
                        hi: f64::INFINITY,
                        item: None,
                        support: 1.0,
                        statistic: Some(0.25),
                        divergence: Some(0.0),
                        children: vec![1, 2],
                        depth: 0,
                    },
                    TreeNodeSnapshot {
                        lo: f64::NEG_INFINITY,
                        hi: 40.0,
                        item: Some(7),
                        support: 0.5,
                        statistic: Some(0.1),
                        divergence: Some(-0.15),
                        children: vec![],
                        depth: 1,
                    },
                    TreeNodeSnapshot {
                        lo: 40.0,
                        hi: f64::INFINITY,
                        item: Some(8),
                        support: 0.5,
                        statistic: None,
                        divergence: None,
                        children: vec![],
                        depth: 1,
                    },
                ],
            }],
            progress: MiningProgress {
                algorithm: "apriori".to_string(),
                cursor: 2,
                n_rows: 1000,
                emitted: vec![ItemsetSnapshot {
                    items: vec![7, 12],
                    accum: AccumSnapshot {
                        n: 312,
                        n_valid: 300,
                        sum: 45.5,
                        sum_sq: 91.25,
                    },
                }],
                frontier: vec![vec![7, 12], vec![8, 12]],
                counters: CounterSnapshot {
                    itemsets: 41,
                    candidate_bytes: 8192,
                    tree_nodes: 4,
                },
            },
        }
    }

    #[test]
    fn state_round_trips() {
        let state = demo_state();
        let decoded = CheckpointState::decode(&state.encode()).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn empty_state_round_trips() {
        let state = CheckpointState {
            dataset_fingerprint: 0,
            config_fingerprint: 0,
            trees: vec![],
            progress: MiningProgress {
                algorithm: String::new(),
                cursor: 0,
                n_rows: 0,
                emitted: vec![],
                frontier: vec![],
                counters: CounterSnapshot::default(),
            },
        };
        assert_eq!(CheckpointState::decode(&state.encode()).unwrap(), state);
    }

    #[test]
    fn truncated_payload_rejected_at_every_cut() {
        let payload = demo_state().encode();
        for cut in 0..payload.len() {
            assert!(
                CheckpointState::decode(&payload[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn tree_fingerprint_is_content_sensitive() {
        let state = demo_state();
        let base = fingerprint_trees(&state.trees);
        assert_eq!(base, fingerprint_trees(&state.trees.clone()));
        let mut tweaked = state.trees.clone();
        tweaked[0].nodes[1].hi = 41.0;
        assert_ne!(base, fingerprint_trees(&tweaked));
        assert_ne!(base, fingerprint_trees(&[]));
    }
}
