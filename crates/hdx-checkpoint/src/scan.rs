//! Run-directory scanning: sealed manifests, completion markers, and the
//! orphan scan behind `hdx serve`'s crash recovery and `hdx resume`.
//!
//! A *run directory* is one job's durable state: a sealed `manifest.hdx`
//! (opaque payload — the owner decides what identifies the run), the
//! sequence-numbered checkpoints of [`crate::CheckpointStore`], and — once
//! the run has finished — a sealed `done.hdx` completion marker whose
//! payload is the owner's final result. A directory with a manifest but no
//! valid completion marker is an *incomplete* run: the process that owned
//! it died, and its work should be resumed.
//!
//! [`list_manifests`] enumerates every run directory under a state
//! directory. It never fails on bad entries: a corrupt manifest or
//! completion marker is quarantined (renamed aside with a `.corrupt`
//! suffix) and reported as a warning, and checkpoint health is probed
//! newest-valid-wins exactly like resume itself would.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::envelope;
use crate::error::CheckpointError;
use crate::store::CheckpointStore;

/// File name of the sealed run manifest inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.hdx";
/// File name of the sealed completion marker inside a run directory.
pub const COMPLETE_FILE: &str = "done.hdx";
/// Suffix appended to a quarantined (corrupt) sealed file.
pub const QUARANTINE_SUFFIX: &str = "corrupt";

/// Atomically writes `payload` sealed in an [`envelope`] at `path`:
/// temp file → fsync → rename → best-effort directory fsync, the same
/// durability protocol as checkpoint writes. A crash leaves either the old
/// file or the new one, never a torn mix.
///
/// # Errors
/// [`CheckpointError::Io`] on any filesystem failure.
pub fn write_sealed(path: &Path, payload: &[u8]) -> Result<(), CheckpointError> {
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let sealed = envelope::seal(payload);
    {
        let mut file = fs::File::create(&tmp).map_err(|e| CheckpointError::io(&tmp, &e))?;
        file.write_all(&sealed)
            .map_err(|e| CheckpointError::io(&tmp, &e))?;
        file.sync_all().map_err(|e| CheckpointError::io(&tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| CheckpointError::io(path, &e))?;
    if let Ok(dirf) = fs::File::open(&dir) {
        let _ = dirf.sync_all();
    }
    Ok(())
}

/// Reads and verifies a sealed file written by [`write_sealed`], returning
/// its payload.
///
/// # Errors
/// [`CheckpointError::Io`] when the file cannot be read; the envelope's
/// corruption errors when it fails magic/length/CRC validation.
pub fn read_sealed(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| CheckpointError::io(path, &e))?;
    envelope::open(&bytes)
}

/// One run directory found by [`list_manifests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// The run directory itself.
    pub dir: PathBuf,
    /// The verified payload of its sealed `manifest.hdx`.
    pub manifest: Vec<u8>,
    /// The verified payload of its sealed `done.hdx`, when the run
    /// completed. `None` flags an incomplete (orphaned) run.
    pub completion: Option<Vec<u8>>,
    /// Sequence number of the newest checkpoint that passes validation
    /// (newest-valid-wins, exactly the file resume would load), or `None`
    /// when the directory holds no loadable checkpoint.
    pub resumable_seq: Option<u64>,
    /// Checkpoint files newer than `resumable_seq` rejected as corrupt.
    pub rejected_checkpoints: u64,
}

impl RunManifest {
    /// `true` when the run never sealed its completion marker and should be
    /// resumed by an orphan scan.
    pub fn is_incomplete(&self) -> bool {
        self.completion.is_none()
    }
}

/// What [`list_manifests`] found: the healthy runs plus one warning line
/// per quarantined entry. Corrupt state never fails the scan — a service
/// restarting after a crash must come up with whatever survived.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ManifestListing {
    /// Every run directory with a valid sealed manifest, sorted by path.
    pub runs: Vec<RunManifest>,
    /// One human-readable line per corrupt entry that was quarantined.
    pub warnings: Vec<String>,
}

impl ManifestListing {
    /// The incomplete (orphaned) runs, in scan order.
    pub fn incomplete(&self) -> impl Iterator<Item = &RunManifest> {
        self.runs.iter().filter(|r| r.is_incomplete())
    }
}

/// Enumerates the run directories under `dir` (one level deep): every
/// subdirectory holding a sealed [`MANIFEST_FILE`] becomes a
/// [`RunManifest`], flagged incomplete when no valid [`COMPLETE_FILE`] is
/// present, with its checkpoints probed newest-valid-wins.
///
/// Corrupt manifests and completion markers are *quarantined, not fatal*:
/// the file is renamed aside (`<name>.corrupt`) so it cannot shadow a
/// later rewrite, a warning is recorded, and — for a corrupt completion
/// marker — the run is treated as incomplete, which is safe because
/// resuming a finished run re-derives the same bytes. A missing or empty
/// `dir` yields an empty listing.
///
/// # Errors
/// [`CheckpointError::Io`] only when `dir` exists but cannot be scanned at
/// all; per-entry problems become warnings instead.
pub fn list_manifests(dir: &Path) -> Result<ManifestListing, CheckpointError> {
    let mut listing = ManifestListing::default();
    if !dir.is_dir() {
        return Ok(listing);
    }
    let entries = fs::read_dir(dir).map_err(|e| CheckpointError::io(dir, &e))?;
    let mut run_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CheckpointError::io(dir, &e))?;
        let path = entry.path();
        if path.is_dir() && path.join(MANIFEST_FILE).is_file() {
            run_dirs.push(path);
        }
    }
    run_dirs.sort();
    for run_dir in run_dirs {
        let manifest_path = run_dir.join(MANIFEST_FILE);
        let manifest = match read_sealed(&manifest_path) {
            Ok(payload) => payload,
            Err(err) => {
                listing.warnings.push(quarantine(&manifest_path, &err));
                continue;
            }
        };
        let complete_path = run_dir.join(COMPLETE_FILE);
        let completion = if complete_path.is_file() {
            match read_sealed(&complete_path) {
                Ok(payload) => Some(payload),
                Err(err) => {
                    listing.warnings.push(quarantine(&complete_path, &err));
                    None
                }
            }
        } else {
            None
        };
        let (resumable_seq, rejected_checkpoints) = match CheckpointStore::open(&run_dir) {
            Ok(store) => match store.load_latest() {
                Ok(loaded) => (Some(loaded.seq), loaded.rejected),
                Err(CheckpointError::NoValidCheckpoint { rejected, .. }) => (None, rejected),
                Err(_) => (None, 0),
            },
            Err(_) => (None, 0),
        };
        listing.runs.push(RunManifest {
            dir: run_dir,
            manifest,
            completion,
            resumable_seq,
            rejected_checkpoints,
        });
    }
    Ok(listing)
}

/// Renames a corrupt sealed file aside (best-effort) and renders the
/// warning line reported for it.
fn quarantine(path: &Path, err: &CheckpointError) -> String {
    let mut aside = path.as_os_str().to_owned();
    aside.push(".");
    aside.push(QUARANTINE_SUFFIX);
    let moved = fs::rename(path, PathBuf::from(&aside)).is_ok();
    format!(
        "quarantined corrupt `{}`{}: {err}",
        path.display(),
        if moved {
            format!(" (moved to `{}.{QUARANTINE_SUFFIX}`)", path.display())
        } else {
            String::new()
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{CheckpointState, CounterSnapshot, MiningProgress};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdx-scan-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn state(cursor: u64) -> CheckpointState {
        CheckpointState {
            dataset_fingerprint: 1,
            config_fingerprint: 2,
            trees: vec![],
            progress: MiningProgress {
                algorithm: "apriori".to_string(),
                cursor,
                n_rows: 4,
                emitted: vec![],
                frontier: vec![],
                counters: CounterSnapshot::default(),
            },
        }
    }

    fn make_run(root: &Path, name: &str, manifest: &[u8]) -> PathBuf {
        let dir = root.join(name);
        fs::create_dir_all(&dir).unwrap();
        write_sealed(&dir.join(MANIFEST_FILE), manifest).unwrap();
        dir
    }

    #[test]
    fn sealed_round_trip() {
        let dir = tmp_dir("sealed");
        let path = dir.join("m.hdx");
        write_sealed(&path, b"payload").unwrap();
        assert_eq!(read_sealed(&path).unwrap(), b"payload");
        // Overwrite is atomic and wins.
        write_sealed(&path, b"payload2").unwrap();
        assert_eq!(read_sealed(&path).unwrap(), b"payload2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lists_complete_and_incomplete_runs() {
        let root = tmp_dir("listing");
        let done = make_run(&root, "job-a", b"ma");
        write_sealed(&done.join(COMPLETE_FILE), b"result-a").unwrap();
        let orphan = make_run(&root, "job-b", b"mb");
        let store = CheckpointStore::create(&orphan).unwrap();
        store.write(&state(7)).unwrap();
        // A plain file and an empty directory at the top level are ignored.
        fs::write(root.join("stray.txt"), b"x").unwrap();
        fs::create_dir_all(root.join("not-a-run")).unwrap();

        let listing = list_manifests(&root).unwrap();
        assert!(listing.warnings.is_empty(), "{:?}", listing.warnings);
        assert_eq!(listing.runs.len(), 2);
        let a = &listing.runs[0];
        assert_eq!(a.manifest, b"ma");
        assert_eq!(a.completion.as_deref(), Some(&b"result-a"[..]));
        assert!(!a.is_incomplete());
        let b = &listing.runs[1];
        assert_eq!(b.manifest, b"mb");
        assert!(b.is_incomplete());
        assert_eq!(b.resumable_seq, Some(0));
        assert_eq!(listing.incomplete().count(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_manifest_is_quarantined_with_a_warning_not_an_error() {
        let root = tmp_dir("quarantine");
        make_run(&root, "good", b"ok");
        let bad = root.join("bad");
        fs::create_dir_all(&bad).unwrap();
        fs::write(bad.join(MANIFEST_FILE), b"garbage, not an envelope").unwrap();

        let listing = list_manifests(&root).unwrap();
        assert_eq!(listing.runs.len(), 1, "only the healthy run is listed");
        assert_eq!(listing.warnings.len(), 1);
        assert!(listing.warnings[0].contains("quarantined"));
        assert!(
            bad.join(format!("{MANIFEST_FILE}.{QUARANTINE_SUFFIX}"))
                .is_file(),
            "corrupt manifest moved aside"
        );
        assert!(!bad.join(MANIFEST_FILE).exists());
        // A second scan is quiet: the quarantined file no longer matches.
        let listing = list_manifests(&root).unwrap();
        assert!(listing.warnings.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_completion_marker_flags_the_run_incomplete() {
        let root = tmp_dir("baddone");
        let run = make_run(&root, "job", b"m");
        fs::write(run.join(COMPLETE_FILE), b"torn").unwrap();
        let listing = list_manifests(&root).unwrap();
        assert_eq!(listing.runs.len(), 1);
        assert!(listing.runs[0].is_incomplete(), "treated as orphaned");
        assert_eq!(listing.warnings.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn newest_valid_checkpoint_wins_in_the_probe() {
        let root = tmp_dir("probe");
        let run = make_run(&root, "job", b"m");
        let store = CheckpointStore::create(&run).unwrap();
        store.write(&state(1)).unwrap();
        let newest = store.write(&state(2)).unwrap();
        let path = store.path_of(newest);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let listing = list_manifests(&root).unwrap();
        assert_eq!(listing.runs[0].resumable_seq, Some(0));
        assert_eq!(listing.runs[0].rejected_checkpoints, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_state_dir_yields_an_empty_listing() {
        let root = tmp_dir("missing");
        let _ = fs::remove_dir_all(&root);
        let listing = list_manifests(&root).unwrap();
        assert!(listing.runs.is_empty());
        assert!(listing.warnings.is_empty());
    }
}
