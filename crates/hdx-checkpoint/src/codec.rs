//! A little-endian binary codec for checkpoint payloads.
//!
//! The workspace carries no serde; checkpoints are written with this
//! hand-rolled, length-prefixed format instead. Every read is bounds-checked
//! and returns a typed [`CheckpointError`] — a decoder must never panic on
//! attacker- or crash-shaped bytes.

use crate::error::CheckpointError;

/// Hard cap on any single length prefix (items, bytes, string length), a
/// sanity bound so a corrupt length cannot drive an allocation of terabytes.
const MAX_LEN: u64 = 1 << 32;

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes an optional `f64` (presence byte + value).
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes an optional `u32` (presence byte + value).
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u32(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a length-prefixed list of `u32`s.
    pub fn put_u32_list(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u32(x);
        }
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CheckpointError::Corrupt`] when bytes remain unread —
    /// a decoder that stops early has misparsed the payload.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt {
                message: format!("{} trailing bytes after payload", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated {
                expected: (self.pos + n) as u64,
                found: self.buf.len() as u64,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| CheckpointError::Corrupt {
            message: "u32 slice length".to_string(),
        })?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| CheckpointError::Corrupt {
            message: "u64 slice length".to_string(),
        })?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CheckpointError::Corrupt {
                message: format!("bool byte {other}"),
            }),
        }
    }

    /// Reads an optional `f64` written by [`ByteWriter::put_opt_f64`].
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an optional `u32` written by [`ByteWriter::put_opt_u32`].
    pub fn opt_u32(&mut self) -> Result<Option<u32>, CheckpointError> {
        if self.bool()? {
            Ok(Some(self.u32()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length prefix, rejecting lengths past the sanity cap or the
    /// remaining buffer (so corrupt lengths fail fast, not at alloc time).
    pub fn len_prefix(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        if n > MAX_LEN {
            return Err(CheckpointError::Corrupt {
                message: format!("length prefix {n} exceeds sanity cap"),
            });
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let n = self.len_prefix()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes).map_err(|e| CheckpointError::Corrupt {
            message: format!("invalid UTF-8 string: {e}"),
        })
    }

    /// Reads a length-prefixed list of `u32`s.
    pub fn u32_list(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let n = self.len_prefix()?;
        // Each element needs 4 bytes; check up front so a corrupt count
        // cannot reserve gigabytes.
        if self.remaining() < n.saturating_mul(4) {
            return Err(CheckpointError::Truncated {
                expected: (self.pos + n * 4) as u64,
                found: self.buf.len() as u64,
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(f64::NAN));
        w.put_opt_u32(Some(42));
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        w.put_u32_list(&[10, 20, 30]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert!(r.opt_f64().unwrap().is_some_and(f64::is_nan));
        assert_eq!(r.opt_u32().unwrap(), Some(42));
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u32_list().unwrap(), vec![10, 20, 30]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u64(99);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(CheckpointError::Truncated { .. })));
    }

    #[test]
    fn corrupt_length_prefix_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(CheckpointError::Corrupt { .. })));
        let mut r2 = ByteReader::new(&bytes);
        assert!(r2.u32_list().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.finish(), Err(CheckpointError::Corrupt { .. })));
    }

    #[test]
    fn bad_bool_byte_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.bool(), Err(CheckpointError::Corrupt { .. })));
    }
}
