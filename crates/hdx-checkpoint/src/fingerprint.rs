//! The 64-bit run fingerprint: a fast, stable content hash binding a
//! checkpoint to the exact dataset and configuration that produced it.
//!
//! FNV-1a over a canonical byte stream. Not cryptographic — the threat
//! model is *accidental* mismatch (resuming against an edited CSV or a
//! different support threshold), for which 64 bits of collision resistance
//! is ample. NaN payloads are canonicalised so the fingerprint is a function
//! of the data's *values*, not of which NaN bit pattern a parser produced.

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;
/// Canonical quiet-NaN bit pattern used for all NaN inputs.
const CANON_NAN: u64 = 0x7ff8_0000_0000_0000;

/// An incremental FNV-1a fingerprint builder.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh fingerprint at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: OFFSET }
    }

    /// Mixes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(PRIME);
        }
        self
    }

    /// Mixes one byte.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write_bytes(&[v])
    }

    /// Mixes a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Mixes an `f64` by bit pattern, with all NaNs canonicalised to one
    /// pattern (so a quarantined cell fingerprints identically however it
    /// was spelled in the source file).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        let bits = if v.is_nan() { CANON_NAN } else { v.to_bits() };
        self.write_u64(bits)
    }

    /// Mixes a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// fingerprint differently.
    pub fn write_str(&mut self, v: &str) -> &mut Self {
        self.write_u64(v.len() as u64);
        self.write_bytes(v.as_bytes())
    }

    /// The finished 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fingerprint::new();
        a.write_str("adult.csv").write_u64(32561).write_f64(0.05);
        let mut b = Fingerprint::new();
        b.write_str("adult.csv").write_u64(32561).write_f64(0.05);
        assert_eq!(a.finish(), b.finish());

        let mut c = Fingerprint::new();
        c.write_u64(32561).write_str("adult.csv").write_f64(0.05);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn single_value_changes_move_the_fingerprint() {
        let base = {
            let mut f = Fingerprint::new();
            f.write_f64(1.0).write_f64(2.0).write_f64(3.0);
            f.finish()
        };
        let tweaked = {
            let mut f = Fingerprint::new();
            f.write_f64(1.0).write_f64(2.0 + 1e-12).write_f64(3.0);
            f.finish()
        };
        assert_ne!(base, tweaked);
    }

    #[test]
    fn all_nans_fingerprint_identically() {
        let payloads = [f64::NAN, -f64::NAN, f64::from_bits(0x7ff8_dead_beef_0000)];
        let prints: Vec<u64> = payloads
            .iter()
            .map(|&v| {
                let mut f = Fingerprint::new();
                f.write_f64(v);
                f.finish()
            })
            .collect();
        assert!(prints.windows(2).all(|w| w[0] == w[1]));
        // But a NaN is still distinct from a finite value.
        let mut finite = Fingerprint::new();
        finite.write_f64(0.0);
        assert_ne!(prints[0], finite.finish());
    }

    #[test]
    fn string_framing_prevents_concatenation_collisions() {
        let mut a = Fingerprint::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(Fingerprint::new().finish(), OFFSET);
        let mut f = Fingerprint::new();
        f.write_bytes(b"a");
        assert_eq!(f.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
