//! CRC-32 (ISO-HDLC / IEEE 802.3 polynomial), the checksum sealing the
//! checkpoint envelope.
//!
//! Hand-rolled because the workspace carries no external serialization or
//! hashing dependencies: a 256-entry table built in a `const` context, the
//! same algorithm zlib and PNG use, so artifacts are checkable with standard
//! tooling (`crc32 <file payload>`).

/// The reflected CRC-32 polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8u8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), clean, "flip byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
