//! The typed checkpoint error: every way a checkpoint can fail to be
//! written, read, or trusted.

use std::path::PathBuf;

/// Why a checkpoint could not be written, read, or trusted.
///
/// Corruption variants ([`BadMagic`](Self::BadMagic),
/// [`Truncated`](Self::Truncated), [`CrcMismatch`](Self::CrcMismatch),
/// [`Corrupt`](Self::Corrupt)) are *expected* after a crash — the loader
/// treats them as "skip this file and fall back", never as fatal.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error rendered as text.
        message: String,
    },
    /// The file does not start with the `hdx-ckpt/v1` magic.
    BadMagic {
        /// The bytes actually found (at most the magic's length).
        found: Vec<u8>,
    },
    /// The file is shorter than its header or declared payload.
    Truncated {
        /// Bytes the envelope declared or required.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The payload checksum does not match the sealed CRC-32.
    CrcMismatch {
        /// The checksum recorded in the envelope.
        expected: u32,
        /// The checksum of the payload as read.
        found: u32,
    },
    /// The payload passed the CRC but failed structural decoding (a
    /// version-skew or writer-bug symptom, not bit rot).
    Corrupt {
        /// What the decoder was reading when it failed.
        message: String,
    },
    /// The directory holds no loadable checkpoint at all.
    NoValidCheckpoint {
        /// The directory scanned.
        dir: PathBuf,
        /// Files that existed but were rejected as corrupt/truncated.
        rejected: u64,
    },
    /// A resume-time identity check failed: the checkpoint was written for
    /// different data or a different configuration.
    FingerprintMismatch {
        /// Which fingerprint disagreed (`"dataset"`, `"config"`, `"trees"`).
        field: &'static str,
        /// The fingerprint stored in the checkpoint.
        expected: u64,
        /// The fingerprint recomputed from the resume-time inputs.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, message } => {
                write!(f, "checkpoint I/O on {}: {message}", path.display())
            }
            Self::BadMagic { found } => {
                write!(f, "not a checkpoint file (bad magic {found:02x?})")
            }
            Self::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated checkpoint: need {expected} bytes, have {found}"
                )
            }
            Self::CrcMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: sealed {expected:#010x}, computed {found:#010x}"
            ),
            Self::Corrupt { message } => write!(f, "corrupt checkpoint payload: {message}"),
            Self::NoValidCheckpoint { dir, rejected } => write!(
                f,
                "no valid checkpoint in {} ({rejected} rejected as corrupt)",
                dir.display()
            ),
            Self::FingerprintMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "{field} fingerprint mismatch: checkpoint has {expected:#018x}, \
                 resume inputs give {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CheckpointError {
    /// Wraps a `std::io::Error` with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, err: &std::io::Error) -> Self {
        Self::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// True when the error means "this file is damaged" (safe to skip and
    /// fall back) rather than an environment or identity problem.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            Self::BadMagic { .. }
                | Self::Truncated { .. }
                | Self::CrcMismatch { .. }
                | Self::Corrupt { .. }
        )
    }
}
