//! The on-disk checkpoint store: sequence-numbered files, atomic writes,
//! newest-valid-wins loading, and bounded retention.
//!
//! Write protocol (crash-safe on POSIX filesystems):
//!
//! 1. encode + seal the state into `ckpt.tmp` in the checkpoint directory;
//! 2. `fsync` the temp file (data durable before it becomes visible);
//! 3. `rename` to `ckpt-<seq>.hdx` (atomic within one filesystem);
//! 4. `fsync` the directory (the rename itself durable).
//!
//! A crash at any point leaves either the previous checkpoint intact or a
//! stray temp file the next writer overwrites. The loader scans sequence
//! numbers descending and returns the first file that passes the envelope's
//! magic + length + CRC checks, so a torn or bit-rotted newest file falls
//! back to its predecessor instead of resurrecting corrupt state.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use hdx_governor::fail_point;

use crate::envelope;
use crate::error::CheckpointError;
use crate::state::CheckpointState;

/// File-name prefix of a sealed checkpoint.
const FILE_PREFIX: &str = "ckpt-";
/// File-name extension of a sealed checkpoint.
const FILE_EXT: &str = "hdx";
/// Scratch name used during the atomic write.
const TMP_NAME: &str = "ckpt.tmp";
/// Valid checkpoints retained after a successful write (newest first).
const KEEP: usize = 3;

/// What [`CheckpointStore::load_latest`] found while scanning.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedCheckpoint {
    /// The decoded state.
    pub state: CheckpointState,
    /// Sequence number of the file it came from.
    pub seq: u64,
    /// Newer files that were rejected as corrupt/truncated before this one
    /// loaded (0 means the newest file was healthy).
    pub rejected: u64,
}

/// A directory of sequence-numbered, sealed checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CheckpointError::io(&dir, &e))?;
        Ok(Self { dir })
    }

    /// Opens an existing checkpoint directory.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the directory does not exist.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(CheckpointError::Io {
                path: dir,
                message: "checkpoint directory does not exist".to_string(),
            });
        }
        Ok(Self { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence numbers of all checkpoint-named files, ascending (the files
    /// are not validated — corrupt ones are only detected on load).
    pub fn sequences(&self) -> Result<Vec<u64>, CheckpointError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| CheckpointError::io(&self.dir, &e))?;
        let mut seqs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CheckpointError::io(&self.dir, &e))?;
            if let Some(seq) = parse_seq(&entry.file_name().to_string_lossy()) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Path of the checkpoint file with sequence number `seq`.
    pub fn path_of(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{FILE_PREFIX}{seq:010}.{FILE_EXT}"))
    }

    /// Atomically writes `state` as the next checkpoint and prunes old ones.
    /// Returns the new sequence number.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on any filesystem failure; the previous
    /// checkpoint is untouched in that case.
    pub fn write(&self, state: &CheckpointState) -> Result<u64, CheckpointError> {
        hdx_obs::span!("checkpoint_write");
        fail_point!("checkpoint::write", |message: String| CheckpointError::Io {
            path: self.dir.clone(),
            message,
        });
        #[cfg(feature = "hdx-fail")]
        if let Some(fault) = hdx_governor::failpoint::io_hit("checkpoint::write") {
            if matches!(fault, hdx_governor::failpoint::IoFault::ShortWrite) {
                // Enact the torn write: a prefix of the sealed bytes lands
                // in the scratch file, exactly what a crash mid-write
                // leaves behind. The rename never happens, so the previous
                // checkpoint stays intact — which is what the recovery
                // tests assert.
                let sealed = envelope::seal(&state.encode());
                let _ = fs::write(self.dir.join(TMP_NAME), &sealed[..sealed.len() / 2]);
            }
            return Err(CheckpointError::Io {
                path: self.dir.clone(),
                message: fault.to_error().to_string(),
            });
        }
        let seq = self.sequences()?.last().map_or(0, |s| s + 1);
        let sealed = envelope::seal(&state.encode());

        let tmp = self.dir.join(TMP_NAME);
        {
            let mut file = fs::File::create(&tmp).map_err(|e| CheckpointError::io(&tmp, &e))?;
            file.write_all(&sealed)
                .map_err(|e| CheckpointError::io(&tmp, &e))?;
            file.sync_all().map_err(|e| CheckpointError::io(&tmp, &e))?;
        }
        let dest = self.path_of(seq);
        fs::rename(&tmp, &dest).map_err(|e| CheckpointError::io(&dest, &e))?;
        // Make the rename itself durable. Directory fsync is best-effort:
        // some filesystems refuse it, and the data file is already synced.
        if let Ok(dirf) = fs::File::open(&self.dir) {
            let _ = dirf.sync_all();
        }
        hdx_obs::counter_add!(CheckpointWrites, 1);
        hdx_obs::counter_add!(CheckpointWriteBytes, sealed.len() as u64);
        self.prune(seq);
        Ok(seq)
    }

    /// Loads the newest checkpoint that passes validation, skipping (and
    /// counting) corrupt or truncated files.
    ///
    /// # Errors
    /// [`CheckpointError::NoValidCheckpoint`] when nothing loads;
    /// [`CheckpointError::Io`] when the directory cannot be scanned.
    pub fn load_latest(&self) -> Result<LoadedCheckpoint, CheckpointError> {
        hdx_obs::span!("checkpoint_load");
        let mut seqs = self.sequences()?;
        seqs.reverse();
        let mut rejected = 0u64;
        for seq in seqs {
            match self.load_seq(seq) {
                Ok(state) => {
                    hdx_obs::counter_add!(CheckpointLoads, 1);
                    return Ok(LoadedCheckpoint {
                        state,
                        seq,
                        rejected,
                    });
                }
                Err(err) if err.is_corruption() => {
                    hdx_obs::counter_add!(CheckpointLoadsRejected, 1);
                    rejected += 1;
                }
                Err(err) => return Err(err),
            }
        }
        Err(CheckpointError::NoValidCheckpoint {
            dir: self.dir.clone(),
            rejected,
        })
    }

    /// Loads and validates one specific checkpoint file.
    ///
    /// # Errors
    /// I/O errors, or any envelope/payload corruption error.
    pub fn load_seq(&self, seq: u64) -> Result<CheckpointState, CheckpointError> {
        let path = self.path_of(seq);
        let bytes = fs::read(&path).map_err(|e| CheckpointError::io(&path, &e))?;
        let payload = envelope::open(&bytes)?;
        CheckpointState::decode(&payload)
    }

    /// Removes checkpoints older than the `KEEP` newest (best-effort; a
    /// failed unlink never fails the write that triggered it).
    fn prune(&self, newest: u64) {
        let Ok(seqs) = self.sequences() else { return };
        for seq in seqs {
            if seq + KEEP as u64 <= newest {
                let _ = fs::remove_file(self.path_of(seq));
            }
        }
    }
}

fn parse_seq(name: &str) -> Option<u64> {
    let stem = name
        .strip_prefix(FILE_PREFIX)?
        .strip_suffix(&format!(".{FILE_EXT}"))?;
    stem.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{CounterSnapshot, MiningProgress};

    fn state(cursor: u64) -> CheckpointState {
        CheckpointState {
            dataset_fingerprint: 0xABCD,
            config_fingerprint: 0x1234,
            trees: vec![],
            progress: MiningProgress {
                algorithm: "vertical".to_string(),
                cursor,
                n_rows: 10,
                emitted: vec![],
                frontier: vec![],
                counters: CounterSnapshot::default(),
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdx-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_round_trip_and_sequencing() {
        let dir = tmp_dir("roundtrip");
        let store = CheckpointStore::create(&dir).unwrap();
        assert_eq!(store.write(&state(1)).unwrap(), 0);
        assert_eq!(store.write(&state(2)).unwrap(), 1);
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.rejected, 0);
        assert_eq!(loaded.state.progress.cursor, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_valid() {
        let dir = tmp_dir("fallback");
        let store = CheckpointStore::create(&dir).unwrap();
        store.write(&state(1)).unwrap();
        let newest = store.write(&state(2)).unwrap();
        // Flip one byte in the middle of the newest file.
        let path = store.path_of(newest);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.seq, 0, "fell back to the older checkpoint");
        assert_eq!(loaded.rejected, 1);
        assert_eq!(loaded.state.progress.cursor, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_newest_falls_back_too() {
        let dir = tmp_dir("truncated");
        let store = CheckpointStore::create(&dir).unwrap();
        store.write(&state(1)).unwrap();
        let newest = store.write(&state(2)).unwrap();
        let path = store.path_of(newest);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.state.progress.cursor, 1);
        assert_eq!(loaded.rejected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_is_a_typed_error() {
        let dir = tmp_dir("allcorrupt");
        let store = CheckpointStore::create(&dir).unwrap();
        store.write(&state(1)).unwrap();
        let path = store.path_of(0);
        fs::write(&path, b"not a checkpoint at all").unwrap();
        match store.load_latest() {
            Err(CheckpointError::NoValidCheckpoint { rejected, .. }) => {
                assert_eq!(rejected, 1);
            }
            other => panic!("expected NoValidCheckpoint, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_no_valid_checkpoint() {
        let dir = tmp_dir("empty");
        let store = CheckpointStore::create(&dir).unwrap();
        assert!(matches!(
            store.load_latest(),
            Err(CheckpointError::NoValidCheckpoint { rejected: 0, .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_only_the_newest_three() {
        let dir = tmp_dir("retention");
        let store = CheckpointStore::create(&dir).unwrap();
        for i in 0..6 {
            store.write(&state(i)).unwrap();
        }
        assert_eq!(store.sequences().unwrap(), vec![3, 4, 5]);
        // Stray temp files from a crash mid-write are ignored by the scan.
        fs::write(dir.join(TMP_NAME), b"torn write").unwrap();
        assert_eq!(store.sequences().unwrap(), vec![3, 4, 5]);
        assert_eq!(store.load_latest().unwrap().state.progress.cursor, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_requires_existing_directory() {
        let dir = tmp_dir("missing");
        assert!(CheckpointStore::open(&dir).is_err());
        let _ = CheckpointStore::create(&dir).unwrap();
        assert!(CheckpointStore::open(&dir).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
