//! Crash-safe checkpoint/resume for mining runs (`hdx_core::checkpoint`).
//!
//! Long mining jobs lose everything to a crash, OOM-kill, or preemption.
//! This crate persists the run's state — emitted itemsets with their exact
//! outcome accumulators, the miner's traversal cursor, the discretization
//! trees, governor counters, and dataset/config fingerprints — at *work
//! boundaries* (Apriori level ends, DFS root-subtree ends), so a killed run
//! restarts from its last boundary instead of from zero.
//!
//! Durability model (see DESIGN.md §12):
//!
//! * every file is a [`envelope`] (`hdx-ckpt/v1`): magic + length + CRC-32
//!   over a hand-rolled little-endian payload ([`codec`]);
//! * writes are atomic: temp file → fsync → rename → directory fsync
//!   ([`store`]); a crash never damages the previous checkpoint;
//! * loads fall back: the newest file failing magic/length/CRC is skipped
//!   (and counted) and the next-newest valid one wins;
//! * resume verifies [`fingerprint`]s of the dataset, the configuration and
//!   the re-derived discretization trees before trusting any state.
//!
//! Checkpoint *failures are non-fatal* by design: a run that cannot write
//! its checkpoint keeps mining (durability degrades, results don't), with
//! the failure recorded on the [`Checkpointer`] and surfaced once at the
//! end. The mining hot path never blocks on a checkpoint decision either:
//! [`Checkpointer::at_boundary`] costs a counter bump unless a write is due.

/// Length-prefixed little-endian binary codec for checkpoint payloads.
pub mod codec;
/// CRC-32 (IEEE) checksums guarding the envelope.
pub mod crc;
/// The sealed on-disk container: magic, length, CRC, payload.
pub mod envelope;
mod error;
/// Order-insensitive 64-bit fingerprints for run-identity checks.
pub mod fingerprint;
/// Run-directory scanning: sealed manifests, completion markers, orphan scan.
pub mod scan;
mod state;
mod store;

pub use error::CheckpointError;
pub use fingerprint::Fingerprint;
pub use scan::{
    list_manifests, read_sealed, write_sealed, ManifestListing, RunManifest, COMPLETE_FILE,
    MANIFEST_FILE,
};
pub use state::{
    fingerprint_trees, AccumSnapshot, CheckpointState, CounterSnapshot, ItemsetSnapshot,
    MiningProgress, TreeNodeSnapshot, TreeSnapshot,
};
pub use store::{CheckpointStore, LoadedCheckpoint};

/// Write policy + identity for one run's checkpoints: owns the store, the
/// static half of the state (fingerprints + trees), and the "every N
/// boundaries" cadence.
///
/// Miners call [`at_boundary`](Self::at_boundary) after each completed work
/// unit; the checkpointer stashes the progress and writes it through when
/// due. [`finalize`](Self::finalize) flushes the last stashed progress (the
/// governor-trip path: deadline hit ⇒ final checkpoint before exit-3).
#[derive(Debug)]
pub struct Checkpointer {
    store: CheckpointStore,
    every: u64,
    boundaries: u64,
    last_written_boundary: Option<u64>,
    pending: Option<MiningProgress>,
    dataset_fingerprint: u64,
    config_fingerprint: u64,
    trees: Vec<TreeSnapshot>,
    writes: u64,
    last_error: Option<CheckpointError>,
}

impl Checkpointer {
    /// A checkpointer writing every `every`-th boundary (0 is treated as 1)
    /// into `store`, stamping each state with the run's identity.
    pub fn new(
        store: CheckpointStore,
        every: u64,
        dataset_fingerprint: u64,
        config_fingerprint: u64,
        trees: Vec<TreeSnapshot>,
    ) -> Self {
        Self {
            store,
            every: every.max(1),
            boundaries: 0,
            last_written_boundary: None,
            pending: None,
            dataset_fingerprint,
            config_fingerprint,
            trees,
            writes: 0,
            last_error: None,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Stashes `progress` as the state to persist if the run stops before
    /// any boundary is recorded — so a run interrupted inside its very
    /// first work unit still leaves a resumable (zero-progress) checkpoint
    /// behind instead of an empty directory. No-op once a boundary has been
    /// recorded or a seed is already stashed.
    pub fn seed(&mut self, progress: MiningProgress) {
        if self.pending.is_none() && self.boundaries == 0 {
            self.pending = Some(progress);
        }
    }

    /// Records a completed work boundary. Writes a checkpoint when the
    /// cadence says so, otherwise stashes `progress` for a later
    /// [`finalize`](Self::finalize). Never fails: write errors are recorded
    /// on [`last_error`](Self::last_error) and the run continues.
    pub fn at_boundary(&mut self, progress: MiningProgress) {
        self.boundaries += 1;
        self.pending = Some(progress);
        if self.boundaries.is_multiple_of(self.every) {
            self.flush_pending();
        }
    }

    /// Writes the last stashed progress if it is newer than the last durable
    /// checkpoint. Call on normal completion and on governor trip alike.
    pub fn finalize(&mut self) {
        if self.last_written_boundary != Some(self.boundaries) {
            self.flush_pending();
        }
    }

    fn flush_pending(&mut self) {
        let Some(progress) = self.pending.clone() else {
            return;
        };
        let state = CheckpointState {
            dataset_fingerprint: self.dataset_fingerprint,
            config_fingerprint: self.config_fingerprint,
            trees: self.trees.clone(),
            progress,
        };
        match self.store.write(&state) {
            Ok(_) => {
                self.writes += 1;
                self.last_written_boundary = Some(self.boundaries);
            }
            Err(err) => {
                hdx_obs::counter_add!(CheckpointWritesFailed, 1);
                self.last_error = Some(err);
            }
        }
    }

    /// Checkpoints written successfully so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The most recent write failure, if any (checkpointing is non-fatal;
    /// callers surface this once, at the end of the run).
    pub fn last_error(&self) -> Option<&CheckpointError> {
        self.last_error.as_ref()
    }

    /// The dataset fingerprint this run was started with.
    pub fn dataset_fingerprint(&self) -> u64 {
        self.dataset_fingerprint
    }

    /// The config fingerprint this run was started with.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }
}

/// Verifies a loaded checkpoint against resume-time identities.
///
/// # Errors
/// [`CheckpointError::FingerprintMismatch`] naming the first field that
/// disagrees (`dataset`, `config`, then `trees`).
pub fn verify_identity(
    state: &CheckpointState,
    dataset_fingerprint: u64,
    config_fingerprint: u64,
    recomputed_trees: &[TreeSnapshot],
) -> Result<(), CheckpointError> {
    if state.dataset_fingerprint != dataset_fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            field: "dataset",
            expected: state.dataset_fingerprint,
            found: dataset_fingerprint,
        });
    }
    if state.config_fingerprint != config_fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            field: "config",
            expected: state.config_fingerprint,
            found: config_fingerprint,
        });
    }
    let expected = fingerprint_trees(&state.trees);
    let found = fingerprint_trees(recomputed_trees);
    if expected != found {
        return Err(CheckpointError::FingerprintMismatch {
            field: "trees",
            expected,
            found,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn progress(cursor: u64) -> MiningProgress {
        MiningProgress {
            algorithm: "apriori".to_string(),
            cursor,
            n_rows: 5,
            emitted: vec![],
            frontier: vec![],
            counters: CounterSnapshot::default(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdx-ckptr-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cadence_writes_every_nth_boundary_and_finalize_flushes() {
        let dir = tmp_dir("cadence");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut ck = Checkpointer::new(store, 3, 1, 2, vec![]);
        ck.at_boundary(progress(1));
        ck.at_boundary(progress(2));
        assert_eq!(ck.writes(), 0, "not due yet");
        ck.at_boundary(progress(3));
        assert_eq!(ck.writes(), 1);
        ck.at_boundary(progress(4));
        ck.finalize();
        assert_eq!(ck.writes(), 2, "finalize flushed the stashed boundary");
        ck.finalize();
        assert_eq!(ck.writes(), 2, "idempotent when nothing is newer");

        let loaded = CheckpointStore::open(&dir).unwrap().load_latest().unwrap();
        assert_eq!(loaded.state.progress.cursor, 4);
        assert_eq!(loaded.state.dataset_fingerprint, 1);
        assert_eq!(loaded.state.config_fingerprint, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_is_flushed_only_when_no_boundary_landed() {
        // Interrupted before the first boundary: finalize writes the seed.
        let dir = tmp_dir("seed-flushed");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut ck = Checkpointer::new(store, 1, 1, 2, vec![]);
        ck.seed(progress(0));
        ck.finalize();
        assert_eq!(ck.writes(), 1, "seed persisted");
        let loaded = CheckpointStore::open(&dir).unwrap().load_latest().unwrap();
        assert_eq!(loaded.state.progress.cursor, 0);
        let _ = fs::remove_dir_all(&dir);

        // A recorded boundary supersedes the seed.
        let dir = tmp_dir("seed-superseded");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut ck = Checkpointer::new(store, 1, 1, 2, vec![]);
        ck.seed(progress(0));
        ck.at_boundary(progress(1));
        ck.finalize();
        let loaded = CheckpointStore::open(&dir).unwrap().load_latest().unwrap();
        assert_eq!(loaded.state.progress.cursor, 1, "boundary wins over seed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_zero_is_clamped_to_one() {
        let dir = tmp_dir("clamp");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut ck = Checkpointer::new(store, 0, 0, 0, vec![]);
        ck.at_boundary(progress(1));
        assert_eq!(ck.writes(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_verification_names_the_mismatching_field() {
        let state = CheckpointState {
            dataset_fingerprint: 10,
            config_fingerprint: 20,
            trees: vec![],
            progress: progress(0),
        };
        assert!(verify_identity(&state, 10, 20, &[]).is_ok());
        match verify_identity(&state, 11, 20, &[]) {
            Err(CheckpointError::FingerprintMismatch { field, .. }) => {
                assert_eq!(field, "dataset");
            }
            other => panic!("expected dataset mismatch, got {other:?}"),
        }
        match verify_identity(&state, 10, 21, &[]) {
            Err(CheckpointError::FingerprintMismatch { field, .. }) => {
                assert_eq!(field, "config");
            }
            other => panic!("expected config mismatch, got {other:?}"),
        }
        let other_trees = vec![TreeSnapshot {
            attr: 0,
            nodes: vec![],
        }];
        match verify_identity(&state, 10, 20, &other_trees) {
            Err(CheckpointError::FingerprintMismatch { field, .. }) => {
                assert_eq!(field, "trees");
            }
            other => panic!("expected trees mismatch, got {other:?}"),
        }
    }

    #[test]
    fn write_failure_is_recorded_not_fatal() {
        let dir = tmp_dir("failsoft");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut ck = Checkpointer::new(store, 1, 0, 0, vec![]);
        // Remove the directory out from under the store: writes must fail
        // soft, leaving the error on the checkpointer.
        fs::remove_dir_all(&dir).unwrap();
        ck.at_boundary(progress(1));
        assert_eq!(ck.writes(), 0);
        assert!(ck.last_error().is_some());
    }
}
