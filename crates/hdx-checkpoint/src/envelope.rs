//! The versioned, checksummed on-disk envelope (`hdx-ckpt/v1`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       12    magic  b"hdx-ckpt/v1\n"
//! 12      8     payload length
//! 20      4     CRC-32 of the payload
//! 24      n     payload
//! ```
//!
//! [`open`] verifies magic, declared length, and checksum before returning a
//! single byte of payload; any mismatch is a typed corruption error the
//! store treats as "skip this file and fall back to an older one".

use crate::crc::crc32;
use crate::error::CheckpointError;

/// The format magic: name + version + newline (so `head -c12` identifies a
/// checkpoint file from a shell).
pub const MAGIC: &[u8; 12] = b"hdx-ckpt/v1\n";

/// Fixed header size in bytes (magic + length + CRC).
pub const HEADER_LEN: usize = MAGIC.len() + 8 + 4;

/// Seals `payload` into an envelope: magic, length, CRC-32, payload.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Opens an envelope, returning the verified payload.
///
/// # Errors
/// [`CheckpointError::BadMagic`] when the prefix is not `hdx-ckpt/v1`;
/// [`CheckpointError::Truncated`] when the file is shorter than the header
/// or its declared payload; [`CheckpointError::CrcMismatch`] when the
/// payload fails its checksum; [`CheckpointError::Corrupt`] when bytes trail
/// the declared payload.
pub fn open(bytes: &[u8]) -> Result<Vec<u8>, CheckpointError> {
    if bytes.len() < MAGIC.len() {
        return Err(CheckpointError::Truncated {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic {
            found: bytes[..MAGIC.len()].to_vec(),
        });
    }
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    let len_bytes: [u8; 8] = bytes[MAGIC.len()..MAGIC.len() + 8]
        .try_into()
        .map_err(|_| CheckpointError::Corrupt {
            message: "length field slice".to_string(),
        })?;
    let declared = u64::from_le_bytes(len_bytes);
    let crc_bytes: [u8; 4] =
        bytes[MAGIC.len() + 8..HEADER_LEN]
            .try_into()
            .map_err(|_| CheckpointError::Corrupt {
                message: "crc field slice".to_string(),
            })?;
    let sealed_crc = u32::from_le_bytes(crc_bytes);

    let body = &bytes[HEADER_LEN..];
    let Ok(declared_usize) = usize::try_from(declared) else {
        return Err(CheckpointError::Truncated {
            expected: u64::MAX,
            found: body.len() as u64,
        });
    };
    if body.len() < declared_usize {
        return Err(CheckpointError::Truncated {
            expected: HEADER_LEN as u64 + declared,
            found: bytes.len() as u64,
        });
    }
    if body.len() > declared_usize {
        return Err(CheckpointError::Corrupt {
            message: format!(
                "{} bytes trail the declared payload",
                body.len() - declared_usize
            ),
        });
    }
    let found_crc = crc32(body);
    if found_crc != sealed_crc {
        return Err(CheckpointError::CrcMismatch {
            expected: sealed_crc,
            found: found_crc,
        });
    }
    Ok(body.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_then_open_round_trips() {
        for payload in [&b""[..], &b"x"[..], &[0u8; 4096][..]] {
            let sealed = seal(payload);
            assert_eq!(open(&sealed).unwrap(), payload);
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let sealed = seal(b"mining state, level 3, 512 itemsets");
        for i in 0..sealed.len() {
            let mut copy = sealed.clone();
            copy[i] ^= 0x40;
            let err = open(&copy).expect_err("flip must be detected");
            assert!(err.is_corruption(), "byte {i}: {err}");
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let sealed = seal(b"some payload bytes");
        for cut in 0..sealed.len() {
            let err = open(&sealed[..cut]).expect_err("truncation must be detected");
            assert!(err.is_corruption(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut sealed = seal(b"payload");
        sealed.extend_from_slice(b"junk");
        assert!(matches!(
            open(&sealed),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        assert!(matches!(
            open(b"PK\x03\x04 definitely a zip file"),
            Err(CheckpointError::BadMagic { .. })
        ));
    }
}
