//! Bagged random forest over [`DecisionTree`]s.

use hdx_data::DataFrame;
use rand::rngs::StdRng;
use rand::{Rng, RngExt as _, SeedableRng};

use crate::tree::{DecisionTree, DecisionTreeConfig};

/// Random forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration. `max_features = None` here means
    /// "√#attributes", chosen at fit time.
    pub tree: DecisionTreeConfig,
    /// RNG seed (bootstrap + feature sampling), for reproducibility.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 20,
            tree: DecisionTreeConfig::default(),
            seed: 0,
        }
    }
}

/// A fitted random forest (majority vote over bootstrap-trained trees).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits a forest on all rows of `df` with labels `y`.
    ///
    /// # Panics
    /// Panics when `y.len() != df.n_rows()` or the frame is empty.
    pub fn fit(df: &DataFrame, y: &[bool], config: &RandomForestConfig) -> Self {
        assert_eq!(y.len(), df.n_rows(), "labels not parallel to rows");
        assert!(df.n_rows() > 0, "cannot fit on an empty frame");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = df.n_rows();
        let max_features = config
            .tree
            .max_features
            .unwrap_or_else(|| (df.n_attributes() as f64).sqrt().ceil() as usize);
        let tree_config = DecisionTreeConfig {
            max_features: Some(max_features),
            ..config.tree
        };
        let trees = (0..config.n_trees)
            .map(|_| {
                let sample: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                DecisionTree::fit(df, y, &sample, &tree_config, &mut rng)
            })
            .collect();
        Self { trees }
    }

    /// Mean predicted probability across trees for row `row`.
    pub fn predict_prob(&self, df: &DataFrame, row: usize) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_prob(df, row)).sum();
        sum / self.trees.len() as f64
    }

    /// Predicted labels (`prob ≥ 0.5`) for every row of `df`.
    pub fn predict(&self, df: &DataFrame) -> Vec<bool> {
        (0..df.n_rows())
            .map(|r| self.predict_prob(df, r) >= 0.5)
            .collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean-decrease-in-impurity feature importances, normalised to sum
    /// to 1 (all zeros when no tree ever split).
    pub fn feature_importances(&self) -> Vec<f64> {
        let n_attrs = self.trees.first().map_or(0, |t| t.importances().len());
        let mut total = vec![0.0; n_attrs];
        for tree in &self.trees {
            for (acc, &imp) in total.iter_mut().zip(tree.importances()) {
                *acc += imp;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        total
    }
}

/// Fits a forest and returns its predictions on the training frame — the
/// "default random forest" convenience the experiment harness uses.
pub fn fit_predict<R: Rng + ?Sized>(df: &DataFrame, y: &[bool], seed_source: &mut R) -> Vec<bool> {
    let config = RandomForestConfig {
        seed: seed_source.random(),
        ..RandomForestConfig::default()
    };
    RandomForest::fit(df, y, &config).predict(df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use hdx_data::{DataFrameBuilder, Value};

    fn noisy_frame(n: usize, seed: u64) -> (DataFrame, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_continuous("y").unwrap();
        b.add_categorical("g").unwrap();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            let g = ["a", "b"][rng.random_range(0..2usize)];
            b.push_row(vec![Value::Num(x), Value::Num(y), Value::Cat(g.into())])
                .unwrap();
            let signal = x + y + f64::from(u8::from(g == "b")) * 0.3 > 1.1;
            labels.push(signal != (rng.random::<f64>() < 0.05));
        }
        (b.finish(), labels)
    }

    #[test]
    fn forest_beats_chance_and_is_deterministic() {
        let (df, y) = noisy_frame(1500, 4);
        let config = RandomForestConfig {
            n_trees: 15,
            seed: 7,
            ..RandomForestConfig::default()
        };
        let f1 = RandomForest::fit(&df, &y, &config);
        let f2 = RandomForest::fit(&df, &y, &config);
        let p1 = f1.predict(&df);
        let p2 = f2.predict(&df);
        assert_eq!(p1, p2, "same seed → same predictions");
        let m = metrics(&y, &p1);
        assert!(m.accuracy > 0.9, "accuracy = {}", m.accuracy);
        assert_eq!(f1.n_trees(), 15);
    }

    #[test]
    fn different_seeds_differ() {
        let (df, y) = noisy_frame(500, 4);
        let a = RandomForest::fit(
            &df,
            &y,
            &RandomForestConfig {
                seed: 1,
                ..RandomForestConfig::default()
            },
        );
        let b = RandomForest::fit(
            &df,
            &y,
            &RandomForestConfig {
                seed: 2,
                ..RandomForestConfig::default()
            },
        );
        // Probabilities should differ somewhere even if labels agree.
        let diff_sum: f64 = (0..df.n_rows())
            .map(|r| (a.predict_prob(&df, r) - b.predict_prob(&df, r)).abs())
            .sum();
        assert!(diff_sum > 0.0);
    }

    #[test]
    fn feature_importances_identify_the_signal() {
        // Label depends only on x; y and g are noise.
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_continuous("noise").unwrap();
        b.add_categorical("g").unwrap();
        let mut labels = Vec::new();
        for _ in 0..800 {
            let x: f64 = rng.random_range(0.0..1.0);
            let noise: f64 = rng.random_range(0.0..1.0);
            let g = ["a", "b"][rng.random_range(0..2usize)];
            b.push_row(vec![Value::Num(x), Value::Num(noise), Value::Cat(g.into())])
                .unwrap();
            labels.push(x > 0.5);
        }
        let df = b.finish();
        let f = RandomForest::fit(&df, &labels, &RandomForestConfig::default());
        let imp = f.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "x dominates: {imp:?}");
        assert!(imp[0] > imp[1] && imp[0] > imp[2]);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (df, y) = noisy_frame(300, 11);
        let f = RandomForest::fit(&df, &y, &RandomForestConfig::default());
        for r in 0..df.n_rows() {
            let p = f.predict_prob(&df, r);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn empty_frame_panics() {
        let b = DataFrameBuilder::new();
        let df = b.finish();
        let _ = RandomForest::fit(&df, &[], &RandomForestConfig::default());
    }
}
