//! # hdx-model
//!
//! Machine-learning substrate: a CART-style decision tree and a bagged
//! random forest for binary classification.
//!
//! The paper's quantitative experiments (§VI-B, Fig. 2–4) analyse the error
//! rate of "a random forest classifier with default parameters" on each UCI
//! dataset. This crate provides that model so the full pipeline —
//! train → predict → outcome function → subgroup discovery — runs entirely
//! in-repo.
//!
//! Both models consume the [`DataFrame`](hdx_data::DataFrame) directly:
//! continuous attributes split on thresholds (`x ≤ t`), categorical
//! attributes split one-vs-rest on a level (`x = c`). Splits minimise Gini
//! impurity. Nulls always route to the left branch.

mod forest;
mod tree;

pub use forest::{fit_predict, RandomForest, RandomForestConfig};
pub use tree::{DecisionTree, DecisionTreeConfig};

/// Classification quality summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// False-positive rate (`FP / (FP + TN)`, 0 when no actual negatives).
    pub fpr: f64,
    /// False-negative rate (`FN / (FN + TP)`, 0 when no actual positives).
    pub fnr: f64,
}

/// Computes [`Metrics`] from parallel label/prediction slices.
///
/// # Panics
/// Panics when the slices differ in length or are empty.
pub fn metrics(y_true: &[bool], y_pred: &[bool]) -> Metrics {
    assert_eq!(y_true.len(), y_pred.len(), "labels/predictions mismatch");
    assert!(!y_true.is_empty(), "empty evaluation set");
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut tn = 0u64;
    let mut fn_ = 0u64;
    for (&t, &p) in y_true.iter().zip(y_pred) {
        match (t, p) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
            (true, false) => fn_ += 1,
        }
    }
    let total = (tp + fp + tn + fn_) as f64;
    Metrics {
        accuracy: (tp + tn) as f64 / total,
        fpr: if fp + tn > 0 {
            fp as f64 / (fp + tn) as f64
        } else {
            0.0
        },
        fnr: if fn_ + tp > 0 {
            fn_ as f64 / (fn_ + tp) as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_confusion_matrix() {
        let y_true = [true, true, false, false, true];
        let y_pred = [true, false, true, false, true];
        let m = metrics(&y_true, &y_pred);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
        assert!((m.fpr - 0.5).abs() < 1e-12);
        assert!((m.fnr - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_degenerate_classes() {
        let m = metrics(&[true, true], &[true, false]);
        assert_eq!(m.fpr, 0.0, "no actual negatives");
        let m2 = metrics(&[false, false], &[true, false]);
        assert_eq!(m2.fnr, 0.0, "no actual positives");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn metrics_length_checked() {
        let _ = metrics(&[true], &[]);
    }
}
