//! CART-style decision tree for binary classification (Gini impurity).

use hdx_data::{AttrId, AttributeKind, DataFrame, NULL_CODE};
use rand::seq::SliceRandom;
use rand::Rng;

/// Decision tree hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum rows needed to attempt a split.
    pub min_samples_split: usize,
    /// Minimum rows in each child.
    pub min_samples_leaf: usize,
    /// Number of attributes sampled per split (`None` = all; random forests
    /// pass ~√#attributes).
    pub max_features: Option<usize>,
    /// Maximum candidate thresholds evaluated per continuous attribute
    /// (evenly spaced order statistics; keeps training near-linear).
    pub max_thresholds: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            max_thresholds: 32,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Probability of the positive class among training rows.
        prob: f64,
    },
    SplitNum {
        attr: AttrId,
        threshold: f64,
        /// `value ≤ threshold` (and nulls) go left.
        left: usize,
        right: usize,
    },
    SplitCat {
        attr: AttrId,
        code: u32,
        /// `value = code` goes left; other levels and nulls go right.
        left: usize,
        right: usize,
    },
}

/// A fitted binary classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Per-attribute accumulated impurity decrease (importance).
    importance: Vec<f64>,
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

/// Weighted Gini of a candidate split.
fn split_gini(lp: f64, ln: f64, rp: f64, rn: f64) -> f64 {
    let l = lp + ln;
    let r = rp + rn;
    let total = l + r;
    (l / total) * gini(lp, l) + (r / total) * gini(rp, r)
}

impl DecisionTree {
    /// Fits a tree on the rows `rows` of `df` with boolean labels `y`.
    ///
    /// # Panics
    /// Panics when `y.len() != df.n_rows()` or `rows` is empty.
    pub fn fit<R: Rng + ?Sized>(
        df: &DataFrame,
        y: &[bool],
        rows: &[usize],
        config: &DecisionTreeConfig,
        rng: &mut R,
    ) -> Self {
        assert_eq!(y.len(), df.n_rows(), "labels not parallel to rows");
        assert!(!rows.is_empty(), "cannot fit on an empty sample");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            importance: vec![0.0; df.n_attributes()],
        };
        tree.grow(df, y, rows, 0, config, rng);
        tree
    }

    /// Per-attribute importance: total weighted Gini impurity decrease
    /// contributed by this tree's splits (unnormalised).
    pub fn importances(&self) -> &[f64] {
        &self.importance
    }

    /// Grows a node over `rows`, returning its index.
    fn grow<R: Rng + ?Sized>(
        &mut self,
        df: &DataFrame,
        y: &[bool],
        rows: &[usize],
        depth: usize,
        config: &DecisionTreeConfig,
        rng: &mut R,
    ) -> usize {
        let pos = rows.iter().filter(|&&r| y[r]).count();
        let prob = pos as f64 / rows.len() as f64;
        let make_leaf = depth >= config.max_depth
            || rows.len() < config.min_samples_split
            || pos == 0
            || pos == rows.len();
        if !make_leaf {
            if let Some((attr, split, gain)) = self.best_split(df, y, rows, config, rng) {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = match split {
                    SplitKind::Num(threshold) => {
                        let vals = df.continuous(attr).values();
                        rows.iter()
                            .partition(|&&r| vals[r].is_nan() || vals[r] <= threshold)
                    }
                    SplitKind::Cat(code) => {
                        let codes = df.categorical(attr).codes();
                        rows.iter().partition(|&&r| codes[r] == code)
                    }
                };
                if left_rows.len() >= config.min_samples_leaf
                    && right_rows.len() >= config.min_samples_leaf
                {
                    // Importance: impurity decrease weighted by node size.
                    self.importance[attr.index()] += gain * rows.len() as f64;
                    let idx = self.nodes.len();
                    // Reserve the slot; children indices patched below.
                    self.nodes.push(Node::Leaf { prob });
                    let left = self.grow(df, y, &left_rows, depth + 1, config, rng);
                    let right = self.grow(df, y, &right_rows, depth + 1, config, rng);
                    self.nodes[idx] = match split {
                        SplitKind::Num(threshold) => Node::SplitNum {
                            attr,
                            threshold,
                            left,
                            right,
                        },
                        SplitKind::Cat(code) => Node::SplitCat {
                            attr,
                            code,
                            left,
                            right,
                        },
                    };
                    return idx;
                }
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { prob });
        idx
    }

    fn best_split<R: Rng + ?Sized>(
        &self,
        df: &DataFrame,
        y: &[bool],
        rows: &[usize],
        config: &DecisionTreeConfig,
        rng: &mut R,
    ) -> Option<(AttrId, SplitKind, f64)> {
        let mut attrs: Vec<AttrId> = df.schema().iter().map(|(id, _)| id).collect();
        if let Some(k) = config.max_features {
            attrs.shuffle(rng);
            attrs.truncate(k.max(1));
        }
        let total_pos = rows.iter().filter(|&&r| y[r]).count() as f64;
        let total = rows.len() as f64;
        let parent = gini(total_pos, total);
        let mut best: Option<(f64, AttrId, SplitKind)> = None;
        for attr in attrs {
            let candidate = match df.schema().kind(attr) {
                AttributeKind::Continuous => {
                    self.best_numeric_split(df, y, rows, attr, total_pos, config)
                }
                AttributeKind::Categorical => self.best_categorical_split(df, y, rows, attr),
            };
            if let Some((g, split)) = candidate {
                if g < parent - 1e-12 && best.as_ref().is_none_or(|(bg, _, _)| g < *bg) {
                    best = Some((g, attr, split));
                }
            }
        }
        best.map(|(g, attr, split)| (attr, split, parent - g))
    }

    /// Best `value ≤ t` split of a continuous attribute: sort the node's
    /// values once, then scan candidate order statistics with running
    /// positive counts.
    fn best_numeric_split(
        &self,
        df: &DataFrame,
        y: &[bool],
        rows: &[usize],
        attr: AttrId,
        total_pos: f64,
        config: &DecisionTreeConfig,
    ) -> Option<(f64, SplitKind)> {
        let vals = df.continuous(attr).values();
        let mut sorted: Vec<usize> = rows.to_vec();
        sorted.sort_by(|&a, &b| {
            let (va, vb) = (vals[a], vals[b]);
            // Nulls first (they route left with any threshold).
            va.partial_cmp(&vb)
                .unwrap_or_else(|| vb.is_nan().cmp(&va.is_nan()))
        });
        let n = sorted.len();
        let total = n as f64;
        let step = (n / config.max_thresholds.max(1)).max(1);
        let mut best: Option<(f64, f64)> = None; // (gini, threshold)
        let mut left_pos = 0.0;
        let mut left_n = 0.0;
        for (i, &r) in sorted.iter().enumerate() {
            left_pos += f64::from(u8::from(y[r]));
            left_n += 1.0;
            if i + 1 >= n {
                break;
            }
            let (v, next) = (vals[r], vals[sorted[i + 1]]);
            if v.is_nan() || next.is_nan() || v >= next {
                continue; // not a boundary
            }
            if i % step != 0 && n > config.max_thresholds {
                continue; // thinned candidate set
            }
            let g = split_gini(
                left_pos,
                left_n - left_pos,
                total_pos - left_pos,
                (total - left_n) - (total_pos - left_pos),
            );
            if best.is_none_or(|(bg, _)| g < bg) {
                best = Some((g, v));
            }
        }
        best.map(|(g, t)| (g, SplitKind::Num(t)))
    }

    /// Best one-vs-rest split of a categorical attribute.
    fn best_categorical_split(
        &self,
        df: &DataFrame,
        y: &[bool],
        rows: &[usize],
        attr: AttrId,
    ) -> Option<(f64, SplitKind)> {
        let col = df.categorical(attr);
        let codes = col.codes();
        let n_levels = col.n_levels();
        if n_levels < 2 {
            return None;
        }
        let mut per_level = vec![(0.0f64, 0.0f64); n_levels]; // (pos, count)
        let mut total_pos = 0.0;
        for &r in rows {
            let c = codes[r];
            if c != NULL_CODE {
                per_level[c as usize].1 += 1.0;
                if y[r] {
                    per_level[c as usize].0 += 1.0;
                }
            }
            if y[r] {
                total_pos += 1.0;
            }
        }
        let total = rows.len() as f64;
        let mut best: Option<(f64, u32)> = None;
        for (code, &(lp, ln)) in per_level.iter().enumerate() {
            if ln == 0.0 || ln == total {
                continue;
            }
            let g = split_gini(lp, ln - lp, total_pos - lp, (total - ln) - (total_pos - lp));
            if best.is_none_or(|(bg, _)| g < bg) {
                best = Some((g, code as u32));
            }
        }
        best.map(|(g, c)| (g, SplitKind::Cat(c)))
    }

    /// Predicted probability of the positive class for row `row`.
    pub fn predict_prob(&self, df: &DataFrame, row: usize) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { prob } => return *prob,
                Node::SplitNum {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    let v = df.continuous(*attr).values()[row];
                    idx = if v.is_nan() || v <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                Node::SplitCat {
                    attr,
                    code,
                    left,
                    right,
                } => {
                    idx = if df.categorical(*attr).code(row) == *code {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted labels (`prob ≥ 0.5`) for every row of `df`.
    pub fn predict(&self, df: &DataFrame) -> Vec<bool> {
        (0..df.n_rows())
            .map(|r| self.predict_prob(df, r) >= 0.5)
            .collect()
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Debug, Clone, Copy)]
enum SplitKind {
    Num(f64),
    Cat(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use hdx_data::{DataFrameBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn xor_frame(n: usize, seed: u64) -> (DataFrame, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_continuous("y").unwrap();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            b.push_row(vec![Value::Num(x), Value::Num(y)]).unwrap();
            labels.push((x > 0.5) != (y > 0.5));
        }
        (b.finish(), labels)
    }

    #[test]
    fn learns_xor() {
        let (df, y) = xor_frame(2000, 3);
        let rows: Vec<usize> = (0..df.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&df, &y, &rows, &DecisionTreeConfig::default(), &mut rng);
        let pred = tree.predict(&df);
        let m = metrics(&y, &pred);
        assert!(m.accuracy > 0.95, "accuracy = {}", m.accuracy);
    }

    #[test]
    fn categorical_split_works() {
        let mut b = DataFrameBuilder::new();
        b.add_categorical("g").unwrap();
        let mut labels = Vec::new();
        for i in 0..300 {
            let g = ["a", "b", "c"][i % 3];
            b.push_row(vec![Value::Cat(g.into())]).unwrap();
            labels.push(g == "b");
        }
        let df = b.finish();
        let rows: Vec<usize> = (0..df.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(
            &df,
            &labels,
            &rows,
            &DecisionTreeConfig::default(),
            &mut rng,
        );
        let pred = tree.predict(&df);
        assert_eq!(metrics(&labels, &pred).accuracy, 1.0);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        for i in 0..50 {
            b.push_row(vec![Value::Num(i as f64)]).unwrap();
        }
        let df = b.finish();
        let labels = vec![true; 50];
        let rows: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(
            &df,
            &labels,
            &rows,
            &DecisionTreeConfig::default(),
            &mut rng,
        );
        assert_eq!(tree.n_nodes(), 1);
        assert!(tree.predict(&df).iter().all(|&p| p));
    }

    #[test]
    fn max_depth_zero_gives_majority_vote() {
        let (df, y) = xor_frame(500, 9);
        let rows: Vec<usize> = (0..df.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let config = DecisionTreeConfig {
            max_depth: 0,
            ..DecisionTreeConfig::default()
        };
        let tree = DecisionTree::fit(&df, &y, &rows, &config, &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        let pred = tree.predict(&df);
        assert!(pred.iter().all(|&p| p == pred[0]), "constant prediction");
    }

    #[test]
    fn nulls_route_left_without_panic() {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        let mut labels = Vec::new();
        for i in 0..200 {
            if i % 10 == 0 {
                b.push_row(vec![Value::Null]).unwrap();
            } else {
                b.push_row(vec![Value::Num(i as f64)]).unwrap();
            }
            labels.push(i >= 100);
        }
        let df = b.finish();
        let rows: Vec<usize> = (0..200).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(
            &df,
            &labels,
            &rows,
            &DecisionTreeConfig::default(),
            &mut rng,
        );
        let pred = tree.predict(&df);
        assert_eq!(pred.len(), 200);
        // Non-null rows should be classified nearly perfectly.
        let ok = (0..200)
            .filter(|&i| i % 10 != 0)
            .filter(|&i| pred[i] == labels[i])
            .count();
        assert!(ok >= 170, "ok = {ok}");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let (df, y) = xor_frame(10, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = DecisionTree::fit(&df, &y, &[], &DecisionTreeConfig::default(), &mut rng);
    }
}
