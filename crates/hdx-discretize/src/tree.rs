//! Divergence-aware tree discretization (paper §V-A).
//!
//! For one continuous attribute, a binary tree is grown from the full value
//! range: each node is split at the admissible cut point maximising the gain
//! criterion, where *admissible* means both children keep support ≥ `st`
//! (support measured against the whole dataset, like the paper's `sup`
//! annotations in Fig. 1). Every node becomes an item; parent→child edges
//! become the refinement relation `≻`.

use hdx_data::{AttrId, DataFrame};
use hdx_governor::{fail_point, Governor};
use hdx_items::{Interval, Item, ItemCatalog, ItemHierarchy, ItemId};
use hdx_stats::{binary_entropy, Outcome, StatAccum};

/// Split gain criterion (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GainCriterion {
    /// Weighted reduction of the outcome entropy. Only meaningful for
    /// boolean outcome functions (probability-shaped statistics).
    Entropy,
    /// Weighted absolute divergence of the children from the parent. Applies
    /// to any outcome function (the paper's novel criterion; default).
    #[default]
    Divergence,
}

/// Configuration of the tree discretizer.
#[derive(Debug, Clone, Copy)]
pub struct TreeDiscretizerConfig {
    /// Minimum node support `st` (fraction of the *whole* dataset).
    pub min_support: f64,
    /// Split gain criterion.
    pub criterion: GainCriterion,
    /// Optional depth cap (root has depth 0). `None` = unlimited.
    pub max_depth: Option<usize>,
}

impl Default for TreeDiscretizerConfig {
    fn default() -> Self {
        Self {
            min_support: 0.1,
            criterion: GainCriterion::Divergence,
            max_depth: None,
        }
    }
}

/// One node of a discretization tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Interval of attribute values covered by the node.
    pub interval: Interval,
    /// Item id, `None` only for the root (the all-range node is not an item:
    /// it would constrain nothing).
    pub item: Option<ItemId>,
    /// Support (fraction of dataset rows in the node).
    pub support: f64,
    /// The statistic `f` over the node (`None` when all outcomes are `⊥`).
    pub statistic: Option<f64>,
    /// Divergence of the node from the whole dataset.
    pub divergence: Option<f64>,
    /// Indices of the children in [`DiscretizationTree::nodes`] (empty for
    /// leaves).
    pub children: Vec<usize>,
    /// Depth (root = 0).
    pub depth: usize,
}

/// A discretization tree for one attribute: the root covers the full range,
/// every other node is an item.
#[derive(Debug, Clone)]
pub struct DiscretizationTree {
    /// The discretized attribute.
    pub attr: AttrId,
    /// Nodes in creation (pre-)order; index 0 is the root.
    pub nodes: Vec<TreeNode>,
}

impl DiscretizationTree {
    /// Index of the root node.
    pub const ROOT: usize = 0;

    /// The leaf nodes' indices.
    pub fn leaf_indices(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// Renders the tree as an indented text diagram (Fig. 1-style), using
    /// labels from `catalog`.
    pub fn render(&self, catalog: &ItemCatalog) -> String {
        let mut out = String::new();
        self.render_node(Self::ROOT, 0, catalog, &mut out);
        out
    }

    fn render_node(&self, idx: usize, indent: usize, catalog: &ItemCatalog, out: &mut String) {
        let node = &self.nodes[idx];
        let label = node
            .item
            .map_or("root".to_string(), |i| catalog.label(i).to_string());
        let stat = node
            .statistic
            .map_or("-".to_string(), |s| format!("{s:.3}"));
        let div = node
            .divergence
            .map_or("-".to_string(), |d| format!("{d:+.3}"));
        out.push_str(&format!(
            "{}{label}  sup={:.2} f={stat} Δ={div}\n",
            "  ".repeat(indent),
            node.support,
        ));
        for &c in &node.children {
            self.render_node(c, indent + 1, catalog, out);
        }
    }
}

/// The hierarchical attribute discretizer.
#[derive(Debug, Clone, Default)]
pub struct TreeDiscretizer {
    config: TreeDiscretizerConfig,
}

/// Per-sorted-position prefix aggregates enabling O(1) gain evaluation.
struct Prefix {
    /// `valid[i]` = number of defined outcomes among the first `i` sorted rows.
    valid: Vec<f64>,
    /// Sum of defined outcome values among the first `i` sorted rows.
    sum: Vec<f64>,
}

impl Prefix {
    fn build(outcomes: &[Outcome], order: &[usize]) -> Self {
        let mut valid = Vec::with_capacity(order.len() + 1);
        let mut sum = Vec::with_capacity(order.len() + 1);
        let (mut running_valid, mut running_sum) = (0.0, 0.0);
        valid.push(running_valid);
        sum.push(running_sum);
        for &row in order {
            if let Some(v) = outcomes[row].value() {
                running_valid += 1.0;
                running_sum += v;
            }
            valid.push(running_valid);
            sum.push(running_sum);
        }
        Self { valid, sum }
    }

    /// Mean of defined outcomes over sorted positions `[lo, hi)`.
    fn mean(&self, lo: usize, hi: usize) -> Option<f64> {
        let nv = self.valid[hi] - self.valid[lo];
        (nv > 0.0).then(|| (self.sum[hi] - self.sum[lo]) / nv)
    }
}

impl TreeDiscretizer {
    /// Creates a discretizer with the given configuration.
    pub fn new(config: TreeDiscretizerConfig) -> Self {
        Self { config }
    }

    /// Creates a discretizer with support `st` and the given criterion.
    pub fn with_support(min_support: f64, criterion: GainCriterion) -> Self {
        Self::new(TreeDiscretizerConfig {
            min_support,
            criterion,
            ..TreeDiscretizerConfig::default()
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TreeDiscretizerConfig {
        &self.config
    }

    /// Discretizes one continuous attribute of `df` against `outcomes`
    /// (parallel to rows), interning items into `catalog`.
    ///
    /// Returns the item hierarchy (empty when no admissible split exists)
    /// and the full tree (for reporting, Fig. 1).
    ///
    /// # Panics
    /// Panics when `attr` is not continuous, `outcomes.len() != df.n_rows()`,
    /// or `min_support` is outside `(0, 1)`.
    pub fn discretize_attribute(
        &self,
        df: &DataFrame,
        attr: AttrId,
        outcomes: &[Outcome],
        catalog: &mut ItemCatalog,
    ) -> (ItemHierarchy, DiscretizationTree) {
        self.discretize_attribute_governed(df, attr, outcomes, catalog, &Governor::unbounded())
    }

    /// [`discretize_attribute`](Self::discretize_attribute) under a
    /// [`Governor`]: each split charges two tree nodes against
    /// `max_tree_nodes` and the work queue polls for deadline/cancellation.
    /// A tripped governor stops refining — the tree stays *valid*, just
    /// coarser, so downstream mining degrades to a coarser hierarchy instead
    /// of dying.
    pub fn discretize_attribute_governed(
        &self,
        df: &DataFrame,
        attr: AttrId,
        outcomes: &[Outcome],
        catalog: &mut ItemCatalog,
        governor: &Governor,
    ) -> (ItemHierarchy, DiscretizationTree) {
        assert_eq!(outcomes.len(), df.n_rows(), "outcomes not parallel to rows");
        assert!(
            self.config.min_support > 0.0 && self.config.min_support < 1.0,
            "min_support must be in (0, 1)"
        );
        let attr_name = df.schema().name(attr).to_string();
        hdx_obs::span!("attr", owned attr_name.clone());
        let values = df.continuous(attr).values();
        let n_total = df.n_rows();

        // Sort non-null row indices by attribute value.
        let mut order: Vec<usize> = (0..n_total).filter(|&r| !values[r].is_nan()).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let sorted_vals: Vec<f64> = order.iter().map(|&r| values[r]).collect();
        let prefix = Prefix::build(outcomes, &order);

        let global = StatAccum::from_outcomes(outcomes);
        let global_stat = global.statistic();

        let min_count = (self.config.min_support * n_total as f64).ceil().max(1.0) as usize;

        let mut tree = DiscretizationTree {
            attr,
            nodes: vec![TreeNode {
                interval: Interval::all(),
                item: None,
                support: order.len() as f64 / n_total.max(1) as f64,
                statistic: prefix.mean(0, order.len()),
                divergence: prefix
                    .mean(0, order.len())
                    .zip(global_stat)
                    .map(|(s, g)| s - g),
                children: Vec::new(),
                depth: 0,
            }],
        };
        let mut hierarchy = ItemHierarchy::new(attr);

        // Work queue of (node index, lo, hi) sorted-ranges to try splitting.
        let mut queue = vec![(DiscretizationTree::ROOT, 0usize, order.len())];
        while let Some((node_idx, lo, hi)) = queue.pop() {
            if !governor.keep_going() {
                break;
            }
            fail_point!("discretize::split");
            hdx_obs::span!("split");
            let depth = tree.nodes[node_idx].depth;
            if let Some(max) = self.config.max_depth {
                if depth >= max {
                    continue;
                }
            }
            let Some(cut) = hdx_obs::time_hist!(
                DiscretizeSplitGainNs,
                self.best_split(&sorted_vals, &prefix, lo, hi, min_count, n_total)
            ) else {
                hdx_obs::counter_add!(DiscretizeSplitsRejected, 1);
                continue;
            };
            // Charge both children before interning anything: a refused
            // charge leaves tree, hierarchy and catalog untouched.
            if !governor.record_tree_nodes(2) {
                break;
            }
            let split_value = sorted_vals[cut - 1];
            let parent_interval = tree.nodes[node_idx].interval;
            let (left_iv, right_iv) = parent_interval.split_at(split_value);

            for (iv, range) in [(left_iv, lo..cut), (right_iv, cut..hi)] {
                let item = catalog.intern(Item::range(attr, iv, &attr_name));
                match tree.nodes[node_idx].item {
                    Some(parent_item) => hierarchy.add_child(parent_item, item),
                    None => hierarchy.add_root(item),
                }
                let stat = prefix.mean(range.start, range.end);
                let child = TreeNode {
                    interval: iv,
                    item: Some(item),
                    support: (range.end - range.start) as f64 / n_total as f64,
                    statistic: stat,
                    divergence: stat.zip(global_stat).map(|(s, g)| s - g),
                    children: Vec::new(),
                    depth: depth + 1,
                };
                let child_idx = tree.nodes.len();
                tree.nodes.push(child);
                tree.nodes[node_idx].children.push(child_idx);
                queue.push((child_idx, range.start, range.end));
            }
            hdx_obs::counter_add!(DiscretizeSplitsAccepted, 1);
        }
        hdx_obs::gauge_max!(DiscretizeTreeNodes, tree.nodes.len() as u64);
        #[cfg(feature = "debug-invariants")]
        crate::invariants::assert_tree(&tree, self.config.min_support);
        (hierarchy, tree)
    }

    /// Finds the best admissible cut position in `[lo, hi)`, returning the
    /// index `k` such that the split is `[lo, k) | [k, hi)`, or `None`.
    ///
    /// Admissibility: both sides ≥ `min_count` rows and the cut falls on a
    /// value change. Among (near-)equal gains the most balanced split wins,
    /// which keeps zero-information regions from degenerating into chains.
    fn best_split(
        &self,
        sorted_vals: &[f64],
        prefix: &Prefix,
        lo: usize,
        hi: usize,
        min_count: usize,
        n_total: usize,
    ) -> Option<usize> {
        if hi - lo < 2 * min_count {
            return None;
        }
        let parent_mean = prefix.mean(lo, hi);
        let nd = n_total as f64;
        let mut best: Option<(f64, usize, usize)> = None; // (gain, balance, k)
        let k_min = lo + min_count;
        let k_max = hi - min_count; // inclusive upper bound for k
        for k in k_min..=k_max {
            if sorted_vals[k - 1] >= sorted_vals[k] {
                continue; // not a value boundary
            }
            let gain = match self.config.criterion {
                GainCriterion::Entropy => entropy_gain(prefix, lo, k, hi, nd),
                GainCriterion::Divergence => divergence_gain(prefix, parent_mean, lo, k, hi, nd),
            };
            // Balance tiebreak: prefer the split whose smaller side is
            // largest.
            let balance = (k - lo).min(hi - k);
            let better = match best {
                None => true,
                Some((bg, bb, _)) => {
                    gain > bg + 1e-12 || ((gain - bg).abs() <= 1e-12 && balance > bb)
                }
            };
            if better {
                best = Some((gain, balance, k));
            }
        }
        best.map(|(_, _, k)| k)
    }
}

/// Entropy gain of splitting sorted range `[lo, hi)` at `k` (paper §V-A,
/// weighted by node sizes over the dataset size).
fn entropy_gain(prefix: &Prefix, lo: usize, k: usize, hi: usize, n_dataset: f64) -> f64 {
    let h = |a: usize, b: usize| prefix.mean(a, b).map_or(0.0, binary_entropy);
    let w = |a: usize, b: usize| (b - a) as f64 / n_dataset;
    w(lo, hi) * h(lo, hi) - w(lo, k) * h(lo, k) - w(k, hi) * h(k, hi)
}

/// Divergence gain of splitting sorted range `[lo, hi)` at `k` (paper §V-A):
/// size-weighted absolute deviation of child statistics from the parent's.
fn divergence_gain(
    prefix: &Prefix,
    parent_mean: Option<f64>,
    lo: usize,
    k: usize,
    hi: usize,
    n_dataset: f64,
) -> f64 {
    let Some(p) = parent_mean else { return 0.0 };
    let term = |a: usize, b: usize| {
        prefix
            .mean(a, b)
            .map_or(0.0, |m| (b - a) as f64 / n_dataset * (m - p).abs())
    };
    term(lo, k) + term(k, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};

    /// A frame with one continuous attribute `x` taking values 0..n, and a
    /// boolean outcome that is `true` exactly when `x >= threshold`.
    fn step_frame(n: usize, threshold: f64) -> (DataFrame, Vec<Outcome>, AttrId) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let mut outcomes = Vec::with_capacity(n);
        for i in 0..n {
            let v = i as f64;
            b.push_row(vec![Value::Num(v)]).unwrap();
            outcomes.push(Outcome::Bool(v >= threshold));
        }
        (b.finish(), outcomes, x)
    }

    #[test]
    fn finds_the_step_boundary() {
        let (df, outcomes, x) = step_frame(100, 70.0);
        let mut catalog = ItemCatalog::new();
        for criterion in [GainCriterion::Entropy, GainCriterion::Divergence] {
            let disc = TreeDiscretizer::with_support(0.1, criterion);
            let (h, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
            assert!(!h.is_empty());
            // The first split must land exactly on the step at 69/70.
            let root_children = &tree.nodes[DiscretizationTree::ROOT].children;
            assert_eq!(root_children.len(), 2);
            let left = &tree.nodes[root_children[0]];
            assert_eq!(left.interval.hi, 69.0, "criterion {criterion:?}");
            // Left child is pure-false, right pure-true.
            assert_eq!(left.statistic, Some(0.0));
            let right = &tree.nodes[root_children[1]];
            assert_eq!(right.statistic, Some(1.0));
        }
    }

    #[test]
    fn support_constraint_respected() {
        let (df, outcomes, x) = step_frame(200, 120.0);
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.2, GainCriterion::Divergence);
        let (_, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        for node in &tree.nodes[1..] {
            assert!(
                node.support >= 0.2 - 1e-12,
                "node {:?} violates support",
                node.interval
            );
        }
    }

    #[test]
    fn hierarchy_matches_tree_edges() {
        let (df, outcomes, x) = step_frame(100, 30.0);
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
        let (h, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        // Every non-root tree node is in the hierarchy with matching parent.
        for node in &tree.nodes {
            let Some(item) = node.item else { continue };
            assert!(h.contains(item));
            for &c in &node.children {
                let child_item = tree.nodes[c].item.unwrap();
                assert_eq!(h.parent(child_item), Some(item));
            }
        }
        // Roots of the hierarchy are the root's children.
        let root_items: Vec<ItemId> = tree.nodes[DiscretizationTree::ROOT]
            .children
            .iter()
            .map(|&c| tree.nodes[c].item.unwrap())
            .collect();
        assert_eq!(h.roots(), &root_items[..]);
    }

    #[test]
    fn leaves_partition_the_range() {
        let (df, outcomes, x) = step_frame(128, 40.0);
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.05, GainCriterion::Entropy);
        let (h, _) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        let leaves = h.leaves();
        assert!(!leaves.is_empty());
        // Each row matches exactly one leaf.
        for row in 0..df.n_rows() {
            let matches = leaves
                .iter()
                .filter(|&&l| hdx_items::item_matches(&df, &catalog, l, row))
                .count();
            assert_eq!(matches, 1, "row {row}");
        }
    }

    #[test]
    fn unsplittable_attribute_yields_empty_hierarchy() {
        // Constant attribute: no value boundary, no split.
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        for _ in 0..50 {
            b.push_row(vec![Value::Num(7.0)]).unwrap();
        }
        let df = b.finish();
        let outcomes = vec![Outcome::Bool(true); 50];
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
        let (h, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        assert!(h.is_empty());
        assert_eq!(tree.nodes.len(), 1);
        assert!(catalog.is_empty());
    }

    #[test]
    fn min_support_too_large_prevents_splits() {
        let (df, outcomes, x) = step_frame(100, 50.0);
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.6, GainCriterion::Divergence);
        let (h, _) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        assert!(h.is_empty());
    }

    #[test]
    fn max_depth_caps_refinement() {
        let (df, outcomes, x) = step_frame(1000, 130.0);
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::new(TreeDiscretizerConfig {
            min_support: 0.01,
            criterion: GainCriterion::Divergence,
            max_depth: Some(2),
        });
        let (h, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        assert!(tree.nodes.iter().all(|n| n.depth <= 2));
        // Hierarchy depth ≤ 1 (tree depth 2 = hierarchy depth 1, since the
        // tree root is not an item).
        for &item in h.items() {
            assert!(h.depth(item) <= 1);
        }
    }

    #[test]
    fn nulls_are_excluded_from_nodes() {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let mut outcomes = Vec::new();
        for i in 0..100 {
            if i % 10 == 0 {
                b.push_row(vec![Value::Null]).unwrap();
            } else {
                b.push_row(vec![Value::Num(i as f64)]).unwrap();
            }
            outcomes.push(Outcome::Bool(i >= 50));
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
        let (_, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        // Root support reflects only non-null rows: 90/100.
        assert!((tree.nodes[0].support - 0.9).abs() < 1e-12);
    }

    #[test]
    fn render_contains_labels_and_stats() {
        let (df, outcomes, x) = step_frame(100, 70.0);
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.2, GainCriterion::Divergence);
        let (_, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        let text = tree.render(&catalog);
        assert!(text.contains("root"));
        assert!(text.contains("sup="));
        assert!(text.contains("x<=69"));
    }

    #[test]
    fn divergence_criterion_handles_real_outcomes() {
        // Income-like outcome: value jumps for x > 60.
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let mut outcomes = Vec::new();
        for i in 0..100 {
            b.push_row(vec![Value::Num(i as f64)]).unwrap();
            outcomes.push(Outcome::Real(if i > 60 { 100.0 } else { 10.0 }));
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
        let (_, tree) = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
        let first = &tree.nodes[tree.nodes[0].children[0]];
        assert_eq!(first.interval.hi, 60.0);
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn invalid_support_panics() {
        let (df, outcomes, x) = step_frame(10, 5.0);
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.0, GainCriterion::Divergence);
        let _ = disc.discretize_attribute(&df, x, &outcomes, &mut catalog);
    }

    #[test]
    fn tree_node_budget_yields_coarser_but_valid_tree() {
        use hdx_governor::{Governor, RunBudget, Termination};
        let (df, outcomes, x) = step_frame(1000, 130.0);
        let disc = TreeDiscretizer::with_support(0.01, GainCriterion::Divergence);

        let mut full_catalog = ItemCatalog::new();
        let (_, full_tree) = disc.discretize_attribute(&df, x, &outcomes, &mut full_catalog);
        assert!(full_tree.nodes.len() > 3, "fixture must want many splits");

        let governor = Governor::new(RunBudget::unbounded().with_max_tree_nodes(2));
        let mut catalog = ItemCatalog::new();
        let (h, tree) =
            disc.discretize_attribute_governed(&df, x, &outcomes, &mut catalog, &governor);
        // Exactly one split landed: root + two children, budget exhausted.
        assert_eq!(tree.nodes.len(), 3);
        assert_eq!(h.len(), 2);
        assert_eq!(governor.termination(), Termination::BudgetExhausted);
        assert_eq!(governor.counters().tree_nodes, 2);
        // The coarser tree is still valid: support holds on every node.
        for node in &tree.nodes[1..] {
            assert!(node.support >= 0.01 - 1e-12);
        }
        // And it is a prefix of the unbounded refinement: the one split it
        // made is the same first split the full run made.
        assert_eq!(tree.nodes[1].interval, full_tree.nodes[1].interval);
        assert_eq!(tree.nodes[2].interval, full_tree.nodes[2].interval);
    }

    #[test]
    fn cancelled_token_stops_refinement_immediately() {
        use hdx_governor::{CancelReason, Governor, RunBudget, Termination};
        let (df, outcomes, x) = step_frame(200, 80.0);
        let governor = Governor::new(RunBudget::unbounded());
        governor.cancel_token().cancel();
        let mut catalog = ItemCatalog::new();
        let disc = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
        let (h, tree) =
            disc.discretize_attribute_governed(&df, x, &outcomes, &mut catalog, &governor);
        assert!(h.is_empty());
        assert_eq!(tree.nodes.len(), 1, "only the root survives cancellation");
        assert_eq!(
            governor.termination(),
            Termination::Cancelled(CancelReason::User)
        );
    }
}
