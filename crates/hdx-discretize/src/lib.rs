//! # hdx-discretize
//!
//! Discretization of continuous attributes into items, per §V-A of the
//! paper:
//!
//! * [`TreeDiscretizer`] — the paper's contribution: one binary tree per
//!   continuous attribute, grown greedily under a minimum-support constraint
//!   `st`, with either the entropy-based or divergence-based split gain
//!   ([`GainCriterion`]). All tree nodes (not just the leaves) become items,
//!   yielding an item hierarchy for hierarchical exploration.
//! * [`quantile_hierarchy`], [`uniform_hierarchy`], [`manual_hierarchy`] —
//!   flat (non-hierarchical) baselines used in the paper's comparisons
//!   (§VI-B manual discretization, §VI-D quantile discretization);
//! * [`mdlp_hierarchy`] — the classic Fayyad–Irani MDLP supervised
//!   discretizer the related work discusses (§II, ref. 23), as a further
//!   flat baseline.
//!
//! ```
//! use hdx_data::{DataFrameBuilder, Value};
//! use hdx_discretize::{GainCriterion, TreeDiscretizer};
//! use hdx_items::ItemCatalog;
//! use hdx_stats::Outcome;
//!
//! // Outcome steps up at x = 70: the tree finds exactly that boundary.
//! let mut b = DataFrameBuilder::new();
//! let x = b.add_continuous("x").unwrap();
//! let mut outcomes = Vec::new();
//! for i in 0..100 {
//!     b.push_row(vec![Value::Num(f64::from(i))]).unwrap();
//!     outcomes.push(Outcome::Bool(i >= 70));
//! }
//! let df = b.finish();
//!
//! let mut catalog = ItemCatalog::new();
//! let discretizer = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
//! let (hierarchy, tree) = discretizer.discretize_attribute(&df, x, &outcomes, &mut catalog);
//!
//! assert!(hierarchy.len() >= 2);
//! let first_split = &tree.nodes[tree.nodes[0].children[0]];
//! assert_eq!(first_split.interval.hi, 69.0);
//! ```

/// Runtime validators for discretization trees (split support,
/// binary splits, partition property).
pub mod invariants;

mod flat;
mod mdlp;
mod tree;

pub use flat::{cuts_to_hierarchy, manual_hierarchy, quantile_hierarchy, uniform_hierarchy};
pub use mdlp::mdlp_hierarchy;
pub use tree::{
    DiscretizationTree, GainCriterion, TreeDiscretizer, TreeDiscretizerConfig, TreeNode,
};
