//! Flat (non-hierarchical) discretization baselines.
//!
//! These produce a single level of interval items per attribute, as the
//! fixed discretizations of prior work do: manual cut points (§VI-B),
//! equal-frequency quantiles (§VI-D), or equal-width bins.

use hdx_data::{AttrId, DataFrame};
use hdx_items::{Interval, Item, ItemCatalog, ItemHierarchy};
use hdx_stats::quantiles;

/// Builds a flat hierarchy whose items are the intervals delimited by
/// `cuts`: `(−∞, c₁], (c₁, c₂], …, (c_k, +∞]`.
///
/// Cut points are sorted and deduplicated; non-finite cuts are rejected.
///
/// # Panics
/// Panics if any cut is not finite.
pub fn cuts_to_hierarchy(
    df: &DataFrame,
    attr: AttrId,
    cuts: &[f64],
    catalog: &mut ItemCatalog,
) -> ItemHierarchy {
    assert!(
        cuts.iter().all(|c| c.is_finite()),
        "cut points must be finite"
    );
    let mut cuts: Vec<f64> = cuts.to_vec();
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));
    cuts.dedup();
    let attr_name = df.schema().name(attr).to_string();
    let mut hierarchy = ItemHierarchy::new(attr);
    if cuts.is_empty() {
        return hierarchy;
    }
    let mut lo = f64::NEG_INFINITY;
    for &c in &cuts {
        let item = catalog.intern(Item::range(attr, Interval::new(lo, c), &attr_name));
        hierarchy.add_root(item);
        lo = c;
    }
    let last = catalog.intern(Item::range(attr, Interval::greater_than(lo), &attr_name));
    hierarchy.add_root(last);
    hierarchy
}

/// Manual discretization: user-provided cut points (the paper's "Manual"
/// baseline, §VI-B).
pub fn manual_hierarchy(
    df: &DataFrame,
    attr: AttrId,
    cuts: &[f64],
    catalog: &mut ItemCatalog,
) -> ItemHierarchy {
    cuts_to_hierarchy(df, attr, cuts, catalog)
}

/// Equal-frequency (quantile) discretization into `k` bins (§VI-D).
///
/// Ties can collapse bins, so the result may have fewer than `k` items.
pub fn quantile_hierarchy(
    df: &DataFrame,
    attr: AttrId,
    k: usize,
    catalog: &mut ItemCatalog,
) -> ItemHierarchy {
    let values = df.continuous(attr).values();
    let cuts = quantiles(values, k);
    cuts_to_hierarchy(df, attr, &cuts, catalog)
}

/// Equal-width discretization into `k` bins over the attribute's observed
/// range.
pub fn uniform_hierarchy(
    df: &DataFrame,
    attr: AttrId,
    k: usize,
    catalog: &mut ItemCatalog,
) -> ItemHierarchy {
    let Some((lo, hi)) = df.continuous(attr).min_max() else {
        return ItemHierarchy::new(attr);
    };
    if k < 2 || lo == hi {
        return ItemHierarchy::new(attr);
    }
    let width = (hi - lo) / k as f64;
    let cuts: Vec<f64> = (1..k).map(|i| lo + width * i as f64).collect();
    cuts_to_hierarchy(df, attr, &cuts, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::item_matches;

    fn frame(values: &[f64]) -> (DataFrame, AttrId) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        for &v in values {
            b.push_row(vec![Value::Num(v)]).unwrap();
        }
        (b.finish(), x)
    }

    #[test]
    fn cuts_produce_partition() {
        let vals: Vec<f64> = (0..100).map(f64::from).collect();
        let (df, x) = frame(&vals);
        let mut catalog = ItemCatalog::new();
        let h = cuts_to_hierarchy(&df, x, &[25.0, 50.0, 75.0], &mut catalog);
        assert_eq!(h.len(), 4);
        assert_eq!(h.leaves().len(), 4);
        for row in 0..df.n_rows() {
            let n = h
                .items()
                .iter()
                .filter(|&&i| item_matches(&df, &catalog, i, row))
                .count();
            assert_eq!(n, 1, "row {row} must be in exactly one bin");
        }
    }

    #[test]
    fn cuts_sorted_and_deduped() {
        let (df, x) = frame(&[1.0, 2.0, 3.0]);
        let mut catalog = ItemCatalog::new();
        let h = cuts_to_hierarchy(&df, x, &[2.0, 1.0, 2.0], &mut catalog);
        assert_eq!(h.len(), 3);
        assert_eq!(catalog.label(h.items()[0]), "x<=1");
        assert_eq!(catalog.label(h.items()[1]), "x(1, 2]");
        assert_eq!(catalog.label(h.items()[2]), "x>2");
    }

    #[test]
    fn empty_cuts_empty_hierarchy() {
        let (df, x) = frame(&[1.0]);
        let mut catalog = ItemCatalog::new();
        assert!(cuts_to_hierarchy(&df, x, &[], &mut catalog).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_cut_panics() {
        let (df, x) = frame(&[1.0]);
        let mut catalog = ItemCatalog::new();
        let _ = cuts_to_hierarchy(&df, x, &[f64::INFINITY], &mut catalog);
    }

    #[test]
    fn quantile_bins_roughly_equal() {
        let vals: Vec<f64> = (0..1000).map(f64::from).collect();
        let (df, x) = frame(&vals);
        let mut catalog = ItemCatalog::new();
        let h = quantile_hierarchy(&df, x, 4, &mut catalog);
        assert_eq!(h.len(), 4);
        for &item in h.items() {
            let count = (0..df.n_rows())
                .filter(|&r| item_matches(&df, &catalog, item, r))
                .count();
            assert!((200..=300).contains(&count), "bin size {count}");
        }
    }

    #[test]
    fn quantile_collapses_on_ties() {
        let vals = vec![5.0; 100];
        let (df, x) = frame(&vals);
        let mut catalog = ItemCatalog::new();
        let h = quantile_hierarchy(&df, x, 4, &mut catalog);
        // One duplicate cut at 5.0 → intervals <=5 and >5.
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn uniform_bins_equal_width() {
        let vals: Vec<f64> = (0..=100).map(f64::from).collect();
        let (df, x) = frame(&vals);
        let mut catalog = ItemCatalog::new();
        let h = uniform_hierarchy(&df, x, 4, &mut catalog);
        assert_eq!(h.len(), 4);
        let labels: Vec<&str> = h.items().iter().map(|&i| catalog.label(i)).collect();
        assert_eq!(labels[0], "x<=25");
        assert_eq!(labels[1], "x(25, 50]");
    }

    #[test]
    fn uniform_degenerate_cases() {
        let (df, x) = frame(&[3.0, 3.0]);
        let mut catalog = ItemCatalog::new();
        assert!(uniform_hierarchy(&df, x, 4, &mut catalog).is_empty());
        let (df2, x2) = frame(&[]);
        assert!(uniform_hierarchy(&df2, x2, 4, &mut catalog).is_empty());
        let (df3, x3) = frame(&[1.0, 2.0]);
        assert!(uniform_hierarchy(&df3, x3, 1, &mut catalog).is_empty());
    }
}
