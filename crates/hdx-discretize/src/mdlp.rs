//! MDLP discretization (Fayyad & Irani, IJCAI'93) — the classic supervised
//! baseline the paper's related work discusses (§II, ref. 23): recursive
//! entropy-minimising binary splits with the Minimum Description Length
//! Principle as the stopping criterion.
//!
//! Differences from the paper's tree discretizer: MDLP is driven by the
//! boolean outcome's entropy only (no divergence criterion), stops by MDL
//! instead of a support constraint, and — like all prior discretizers — only
//! its *leaf* intervals are used (no hierarchy). We expose it flat, for
//! baseline comparisons.

use hdx_data::{AttrId, DataFrame};
use hdx_items::{ItemCatalog, ItemHierarchy};
use hdx_stats::Outcome;

use crate::flat::cuts_to_hierarchy;

/// Class-count pair over a range: (positives, negatives).
#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    pos: f64,
    neg: f64,
}

impl Counts {
    fn total(&self) -> f64 {
        self.pos + self.neg
    }

    /// Number of distinct classes present (0, 1 or 2).
    fn k(&self) -> f64 {
        f64::from(u8::from(self.pos > 0.0)) + f64::from(u8::from(self.neg > 0.0))
    }

    /// Class entropy in bits (MDLP is conventionally stated in log₂).
    fn entropy(&self) -> f64 {
        let n = self.total();
        if hdx_stats::approx::approx_zero(n) {
            return 0.0;
        }
        let mut h = 0.0;
        for c in [self.pos, self.neg] {
            if c > 0.0 {
                let p = c / n;
                h -= p * p.log2();
            }
        }
        h
    }
}

/// Recursively finds MDL-accepted cut points within `sorted[lo..hi]`.
fn mdlp_cuts(values: &[f64], is_pos: &[bool], lo: usize, hi: usize, out: &mut Vec<f64>) {
    let n = hi - lo;
    if n < 2 {
        return;
    }
    // Prefix-free scan for the entropy-minimising boundary.
    let mut total = Counts::default();
    for &pos in &is_pos[lo..hi] {
        if pos {
            total.pos += 1.0;
        } else {
            total.neg += 1.0;
        }
    }
    let mut left = Counts::default();
    let mut best: Option<(f64, usize, Counts, Counts)> = None;
    for i in lo..hi - 1 {
        if is_pos[i] {
            left.pos += 1.0;
        } else {
            left.neg += 1.0;
        }
        if values[i] >= values[i + 1] {
            continue; // not a boundary
        }
        let right = Counts {
            pos: total.pos - left.pos,
            neg: total.neg - left.neg,
        };
        let w_ent =
            (left.total() * left.entropy() + right.total() * right.entropy()) / total.total();
        if best.as_ref().is_none_or(|(b, _, _, _)| w_ent < *b) {
            best = Some((w_ent, i, left, right));
        }
    }
    let Some((w_ent, cut_idx, left, right)) = best else {
        return;
    };

    // MDL acceptance test (Fayyad & Irani, eq. 9):
    //   Gain > log₂(N−1)/N + Δ(A, T; S)/N
    //   Δ = log₂(3^k − 2) − (k·H(S) − k₁·H(S₁) − k₂·H(S₂))
    let n_f = total.total();
    let gain = total.entropy() - w_ent;
    let delta = (3f64.powf(total.k()) - 2.0).log2()
        - (total.k() * total.entropy() - left.k() * left.entropy() - right.k() * right.entropy());
    let threshold = ((n_f - 1.0).log2() + delta) / n_f;
    if gain <= threshold {
        return;
    }
    out.push(values[cut_idx]);
    mdlp_cuts(values, is_pos, lo, cut_idx + 1, out);
    mdlp_cuts(values, is_pos, cut_idx + 1, hi, out);
}

/// MDLP-discretizes a continuous attribute against a boolean outcome,
/// returning a *flat* hierarchy of the accepted intervals (empty when MDL
/// rejects every cut).
///
/// Rows with `⊥` outcomes or null attribute values are ignored; real-valued
/// outcomes are not supported (MDLP needs classes) and count as `⊥`.
///
/// # Panics
/// Panics when `outcomes.len() != df.n_rows()`.
pub fn mdlp_hierarchy(
    df: &DataFrame,
    attr: AttrId,
    outcomes: &[Outcome],
    catalog: &mut ItemCatalog,
) -> ItemHierarchy {
    assert_eq!(outcomes.len(), df.n_rows(), "outcomes not parallel to rows");
    let values = df.continuous(attr).values();
    let mut rows: Vec<usize> = (0..df.n_rows())
        .filter(|&r| !values[r].is_nan() && matches!(outcomes[r], Outcome::Bool(_)))
        .collect();
    rows.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaNs filtered"));
    let sorted_vals: Vec<f64> = rows.iter().map(|&r| values[r]).collect();
    let is_pos: Vec<bool> = rows
        .iter()
        .map(|&r| matches!(outcomes[r], Outcome::Bool(true)))
        .collect();
    let mut cuts = Vec::new();
    mdlp_cuts(&sorted_vals, &is_pos, 0, sorted_vals.len(), &mut cuts);
    if cuts.is_empty() {
        return ItemHierarchy::new(attr);
    }
    cuts_to_hierarchy(df, attr, &cuts, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::item_matches;

    fn frame_with(
        values: &[f64],
        outcome_of: impl Fn(f64) -> Outcome,
    ) -> (DataFrame, Vec<Outcome>, AttrId) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let mut outcomes = Vec::new();
        for &v in values {
            b.push_row(vec![Value::Num(v)]).unwrap();
            outcomes.push(outcome_of(v));
        }
        (b.finish(), outcomes, x)
    }

    #[test]
    fn clean_step_accepted_at_the_boundary() {
        let values: Vec<f64> = (0..200).map(f64::from).collect();
        let (df, outcomes, x) = frame_with(&values, |v| Outcome::Bool(v >= 120.0));
        let mut catalog = ItemCatalog::new();
        let h = mdlp_hierarchy(&df, x, &outcomes, &mut catalog);
        assert_eq!(h.len(), 2, "one cut, two intervals");
        let labels: Vec<&str> = h.items().iter().map(|&i| catalog.label(i)).collect();
        assert!(labels.contains(&"x<=119"), "labels: {labels:?}");
    }

    #[test]
    fn pure_noise_rejected_by_mdl() {
        // Outcome independent of x: MDL must refuse to cut.
        let values: Vec<f64> = (0..300).map(f64::from).collect();
        let (df, outcomes, x) = frame_with(&values, |v| {
            Outcome::Bool((v as u64).wrapping_mul(2654435761) % 97 < 48)
        });
        let mut catalog = ItemCatalog::new();
        let h = mdlp_hierarchy(&df, x, &outcomes, &mut catalog);
        assert!(
            h.len() <= 2,
            "MDL keeps at most a spurious cut on hash noise, got {}",
            h.len()
        );
    }

    #[test]
    fn multi_interval_pattern_found() {
        // Low-high-low outcome: expect cuts near both boundaries.
        let values: Vec<f64> = (0..600).map(f64::from).collect();
        let (df, outcomes, x) = frame_with(&values, |v| Outcome::Bool((200.0..400.0).contains(&v)));
        let mut catalog = ItemCatalog::new();
        let h = mdlp_hierarchy(&df, x, &outcomes, &mut catalog);
        assert_eq!(h.len(), 3, "two cuts, three intervals");
        // Every row matches exactly one interval.
        for row in 0..df.n_rows() {
            let matched = h
                .items()
                .iter()
                .filter(|&&i| item_matches(&df, &catalog, i, row))
                .count();
            assert_eq!(matched, 1);
        }
    }

    #[test]
    fn undefined_and_real_outcomes_ignored() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let (df, mut outcomes, x) = frame_with(&values, |v| Outcome::Bool(v >= 50.0));
        // Corrupt some outcomes; the boundary must still be found.
        outcomes[3] = Outcome::Undefined;
        outcomes[7] = Outcome::Real(5.0);
        let mut catalog = ItemCatalog::new();
        let h = mdlp_hierarchy(&df, x, &outcomes, &mut catalog);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn constant_attribute_yields_empty() {
        let values = vec![4.2; 60];
        let (df, outcomes, x) = frame_with(&values, |_| Outcome::Bool(true));
        let mut catalog = ItemCatalog::new();
        let h = mdlp_hierarchy(&df, x, &outcomes, &mut catalog);
        assert!(h.is_empty());
    }
}
