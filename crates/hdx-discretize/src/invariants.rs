//! Runtime validators for discretization-tree invariants (paper §V-A).
//!
//! An admissible split keeps support ≥ `st` on **both** children; the tree
//! builder enforces this through `best_split`'s admissibility window, and
//! these validators re-check the finished tree:
//!
//! 1. every non-root node has support ≥ `st` (within float slack);
//! 2. every internal node has exactly two children (binary splits);
//! 3. children partition their parent: supports sum to the parent's.
//!
//! Always compiled; under the `debug-invariants` feature,
//! `TreeDiscretizer::discretize_attribute` validates every tree it returns.

use crate::tree::DiscretizationTree;

/// Slack for comparing supports that were derived from integer row counts
/// divided by `n`.
const SUPPORT_SLACK: f64 = 1e-9;

/// A violated discretization-tree invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeViolation {
    /// A non-root node's support fell below the threshold `st`.
    SupportBelowThreshold {
        /// Node index in [`DiscretizationTree::nodes`].
        node: usize,
        /// The node's support.
        support: f64,
        /// The threshold it had to reach.
        min_support: f64,
    },
    /// An internal node does not have exactly two children.
    NonBinarySplit {
        /// Node index.
        node: usize,
        /// Number of children found.
        n_children: usize,
    },
    /// A node's children supports do not sum to the node's own support.
    ChildrenDoNotPartition {
        /// Node index.
        node: usize,
        /// The node's support.
        support: f64,
        /// Sum of the children's supports.
        children_sum: f64,
    },
}

impl std::fmt::Display for TreeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeViolation::SupportBelowThreshold {
                node,
                support,
                min_support,
            } => write!(
                f,
                "tree node {node} has support {support} < st = {min_support}"
            ),
            TreeViolation::NonBinarySplit { node, n_children } => {
                write!(f, "tree node {node} has {n_children} children, expected 2")
            }
            TreeViolation::ChildrenDoNotPartition {
                node,
                support,
                children_sum,
            } => write!(
                f,
                "children of tree node {node} sum to support {children_sum}, \
                 expected {support}"
            ),
        }
    }
}

impl std::error::Error for TreeViolation {}

/// Validates the three tree invariants against threshold `min_support`
/// (the discretizer's `st`).
pub fn validate_tree(tree: &DiscretizationTree, min_support: f64) -> Result<(), TreeViolation> {
    for (idx, node) in tree.nodes.iter().enumerate() {
        if idx != DiscretizationTree::ROOT && node.support < min_support - SUPPORT_SLACK {
            return Err(TreeViolation::SupportBelowThreshold {
                node: idx,
                support: node.support,
                min_support,
            });
        }
        if !node.children.is_empty() {
            if node.children.len() != 2 {
                return Err(TreeViolation::NonBinarySplit {
                    node: idx,
                    n_children: node.children.len(),
                });
            }
            let children_sum: f64 = node.children.iter().map(|&c| tree.nodes[c].support).sum();
            if (children_sum - node.support).abs() > SUPPORT_SLACK {
                return Err(TreeViolation::ChildrenDoNotPartition {
                    node: idx,
                    support: node.support,
                    children_sum,
                });
            }
        }
    }
    Ok(())
}

/// Panicking form of [`validate_tree`], run on every tree produced by the
/// discretizer under the `debug-invariants` feature.
#[cfg(feature = "debug-invariants")]
pub(crate) fn assert_tree(tree: &DiscretizationTree, min_support: f64) {
    if let Err(v) = validate_tree(tree, min_support) {
        // An invariant violation is a discretizer bug, never a user error.
        panic!("hdx invariant violated: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeNode;
    use hdx_data::AttrId;
    use hdx_items::Interval;

    fn node(support: f64, children: Vec<usize>, depth: usize) -> TreeNode {
        TreeNode {
            interval: Interval::all(),
            item: None,
            support,
            statistic: None,
            divergence: None,
            children,
            depth,
        }
    }

    fn tree(nodes: Vec<TreeNode>) -> DiscretizationTree {
        DiscretizationTree {
            attr: AttrId(0),
            nodes,
        }
    }

    #[test]
    fn valid_tree_passes() {
        let t = tree(vec![
            node(1.0, vec![1, 2], 0),
            node(0.4, vec![], 1),
            node(0.6, vec![], 1),
        ]);
        assert!(validate_tree(&t, 0.3).is_ok());
    }

    #[test]
    fn under_supported_child_rejected() {
        let t = tree(vec![
            node(1.0, vec![1, 2], 0),
            node(0.1, vec![], 1),
            node(0.9, vec![], 1),
        ]);
        assert!(matches!(
            validate_tree(&t, 0.3),
            Err(TreeViolation::SupportBelowThreshold { node: 1, .. })
        ));
    }

    #[test]
    fn non_binary_split_rejected() {
        let t = tree(vec![node(1.0, vec![1], 0), node(0.5, vec![], 1)]);
        assert!(matches!(
            validate_tree(&t, 0.3),
            Err(TreeViolation::NonBinarySplit { node: 0, .. })
        ));
    }

    #[test]
    fn non_partitioning_children_rejected() {
        let t = tree(vec![
            node(1.0, vec![1, 2], 0),
            node(0.4, vec![], 1),
            node(0.4, vec![], 1),
        ]);
        assert!(matches!(
            validate_tree(&t, 0.3),
            Err(TreeViolation::ChildrenDoNotPartition { node: 0, .. })
        ));
    }

    #[test]
    fn root_support_not_thresholded() {
        // A root below st is fine (e.g. many NaN rows); only split products
        // are constrained.
        let t = tree(vec![node(0.2, vec![], 0)]);
        assert!(validate_tree(&t, 0.3).is_ok());
    }
}
