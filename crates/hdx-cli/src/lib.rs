//! # hdx-cli
//!
//! The `hdx` command-line tool: hierarchical anomalous subgroup discovery
//! over CSV files, without writing any Rust.
//!
//! ```text
//! hdx explore data.csv --stat fpr --label-col y_true --pred-col y_pred -s 0.05
//! hdx discretize data.csv --stat error --st 0.1
//! hdx baselines data.csv --stat error
//! hdx generate compas --rows 6172 --out compas.csv
//! hdx help
//! ```
//!
//! The library surface ([`parse`] + [`run`]) is what the binary calls, so
//! the whole tool is unit-testable without spawning processes.

mod args;
mod commands;

pub use args::{
    parse, AppendOpts, BaselinesOpts, CliError, Command, DiscretizeOpts, ExploreOpts, GenerateOpts,
    InputOpts, ResumeOpts, ServeOpts, Stat, ValidateTelemetryOpts,
};
pub use commands::{run, RunOutput};

/// Usage text for `hdx help` and errors.
pub const USAGE: &str = "\
hdx — hierarchical anomalous subgroup discovery (H-DivExplorer)

USAGE:
  hdx explore <data.csv> [options]     find divergent subgroups
  hdx discretize <data.csv> [options]  print the per-attribute interval trees
  hdx baselines <data.csv> [options]   run Slice Finder / SliceLine / combined tree
  hdx generate <dataset> [options]     write a synthetic benchmark dataset as CSV
  hdx describe <data.csv>              summarise the dataset's attributes
  hdx resume <ckpt-dir> [options]      resume an interrupted checkpointed explore
  hdx append <rows.csv> --wal <dir>    append rows durably to an ingest WAL
  hdx serve [options]                  run the fault-tolerant mining job server
  hdx validate-telemetry <file> [options]  check a --metrics-out artifact
  hdx validate-metrics <file>          check a saved /metrics scrape page
  hdx help                             show this text

INPUT OPTIONS (explore / discretize / baselines):
  --stat <fpr|fnr|tpr|tnr|error|accuracy|positive-rate|target>
                         statistic whose divergence is analysed [error]
  --label-col <name>     ground-truth column (true/false, 0/1, yes/no) [y_true]
  --pred-col <name>      prediction column [y_pred]
  --target-col <name>    numeric column for --stat target
  --separator <char>     CSV field separator [,]

EXPLORE OPTIONS:
  -s, --support <f>      minimum subgroup support [0.05]
  --st <f>               discretization tree support [0.1]
  --criterion <divergence|entropy>  split gain criterion [divergence]
  --mode <base|hierarchical>        exploration mode [hierarchical]
  --polarity             enable polarity pruning
  --max-len <n>          cap pattern length
  --threads <n>          cap parallel-miner worker threads [all cores]
  --top <k>              rows to print [10]
  --non-redundant        drop subgroups explained by a sub-pattern
  --fd <tolerance>       discover taxonomies from functional dependencies
  --json                 emit the full report as JSON
  --timeout <dur>        wall-clock budget (500ms, 30s, 5m; bare = seconds);
                         on expiry the partial results print and exit code is 3
  --max-itemsets <n>     cap on mined subgroups; exceeding it exits 3 likewise
  --adaptive-support     when --max-itemsets trips, retry with doubled support
                         (coarser but complete results)
  --metrics-out <file>   write machine-readable run telemetry (JSON); partial
                         (exit-code-3) runs still flush it
  --trace-summary        print a per-stage span/metric table on stderr
  --checkpoint-dir <dir> write crash-safe mining checkpoints (plus a sealed
                         run manifest) so `hdx resume <dir>` can pick up an
                         interrupted run; incompatible with --polarity
  --checkpoint-every <n> checkpoint every n mining boundaries [1]

RESUME OPTIONS (configuration comes from the sealed manifest; budgets are
per-invocation and output flags may be chosen afresh):
  --top <k>, --non-redundant, --json, --metrics-out <file>, --trace-summary,
  --timeout <dur>, --max-itemsets <n>   as for explore

APPEND OPTIONS (rows are CRC-framed and fsynced before the command reports
success; torn or corrupt bytes found from an earlier crash are quarantined
with a stderr note and exit code 3 — the valid rows still land):
  --wal <dir>            WAL directory (created on first append; required)
  --seal                 seal the open segment into an immutable envelope
  --window <n>           keep at most n sealed segments, retiring the oldest
                         (sliding-window ingestion; requires --seal)

DISCRETIZE OPTIONS:
  --st <f>, --criterion <...> as above
  --attr <name>          only this attribute (default: all continuous)

BASELINES OPTIONS:
  --st <f>               leaf discretization support [0.1]
  --sf-threshold <f>     Slice Finder effect-size threshold [0.4]
  --sl-alpha <f>         SliceLine α [0.95]
  --min-size <n>         SliceLine minimum slice size [32]

GENERATE OPTIONS:
  <dataset>              one of: adult bank compas folktables german
                         intentions synthetic-peak wine
  --rows <n>             row count [paper size]
  --seed <n>             generator seed [42]
  --out <file>           output path [<dataset>.csv]

SERVE OPTIONS (submit jobs with POST /jobs; stop with POST /shutdown):
  --addr <host:port>     listen address; port 0 picks one [127.0.0.1:8373]
  --state-dir <dir>      job persistence root; orphaned jobs found here at
                         startup are resumed to their byte-identical result
                         [hdx-serve-state]
  --workers <n>          mining worker threads [2]
  --queue-depth <n>      queued-job cap; beyond it submissions get 429 [16]
  --tenant-max-jobs <n>  per-tenant in-flight job cap [2]
  --max-body-bytes <n>   request-body byte cap (413 beyond it) [4194304]
  --max-connections <n>  concurrent connection cap (503 beyond it) [32]
  --retry-max <n>        retries before a transient job failure is final [2]
  --timeout <dur>        per-tenant wall-clock budget, split across the
                         tenant's job slots at admission [unbounded]
  --max-itemsets <n>     per-tenant itemset budget, split likewise [unbounded]
  --events-ring-cap <n>  per-job event broadcast ring size: how many lines a
                         slow GET /jobs/<id>/events consumer may lag before
                         drop-oldest backpressure skips it ahead [256]

VALIDATE-TELEMETRY OPTIONS:
  --require-stage <name>    fail unless the stage recorded non-zero time
                            (repeatable; e.g. discretize, mine, explore)
  --require-counter <name>  fail unless the counter is present and non-zero
                            (repeatable; e.g. hdx.mining.candidates.generated)

VALIDATE-METRICS: no options — the file must parse as a Prometheus
text-format 0.0.4 exposition (what GET /metrics serves).
";
