//! Command-line parsing (hand-rolled; no dependencies).

use std::fmt;
use std::time::Duration;

/// CLI failure: a message shown to the user (exit code 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// The statistic to analyse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stat {
    /// False-positive rate.
    Fpr,
    /// False-negative rate.
    Fnr,
    /// True-positive rate.
    Tpr,
    /// True-negative rate.
    Tnr,
    /// Error rate (default).
    #[default]
    Error,
    /// Accuracy.
    Accuracy,
    /// Positive prediction rate.
    PositiveRate,
    /// A real-valued target column.
    Target,
}

impl Stat {
    /// Stable wire code for the checkpoint manifest.
    pub(crate) fn code(self) -> u8 {
        match self {
            Stat::Fpr => 0,
            Stat::Fnr => 1,
            Stat::Tpr => 2,
            Stat::Tnr => 3,
            Stat::Error => 4,
            Stat::Accuracy => 5,
            Stat::PositiveRate => 6,
            Stat::Target => 7,
        }
    }

    /// Inverse of [`Stat::code`].
    pub(crate) fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Stat::Fpr,
            1 => Stat::Fnr,
            2 => Stat::Tpr,
            3 => Stat::Tnr,
            4 => Stat::Error,
            5 => Stat::Accuracy,
            6 => Stat::PositiveRate,
            7 => Stat::Target,
            _ => return None,
        })
    }

    fn parse(s: &str) -> Result<Self, CliError> {
        Ok(match s {
            "fpr" => Stat::Fpr,
            "fnr" => Stat::Fnr,
            "tpr" => Stat::Tpr,
            "tnr" => Stat::Tnr,
            "error" => Stat::Error,
            "accuracy" => Stat::Accuracy,
            "positive-rate" => Stat::PositiveRate,
            "target" => Stat::Target,
            other => return Err(CliError::new(format!("unknown --stat `{other}`"))),
        })
    }
}

/// Options shared by the CSV-consuming commands.
#[derive(Debug, Clone)]
pub struct InputOpts {
    /// CSV path.
    pub path: String,
    /// Statistic.
    pub stat: Stat,
    /// Ground-truth column name.
    pub label_col: String,
    /// Prediction column name.
    pub pred_col: String,
    /// Target column (for [`Stat::Target`]).
    pub target_col: Option<String>,
    /// CSV separator.
    pub separator: char,
}

impl InputOpts {
    fn new(path: String) -> Self {
        Self {
            path,
            stat: Stat::default(),
            label_col: "y_true".into(),
            pred_col: "y_pred".into(),
            target_col: None,
            separator: ',',
        }
    }
}

/// `hdx explore` options.
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Input options.
    pub input: InputOpts,
    /// Exploration support `s`.
    pub support: f64,
    /// Tree support `st`.
    pub tree_support: f64,
    /// `true` = entropy criterion.
    pub entropy: bool,
    /// `true` = base (leaf-only) exploration.
    pub base_mode: bool,
    /// Polarity pruning.
    pub polarity: bool,
    /// Pattern length cap.
    pub max_len: Option<usize>,
    /// Worker-thread cap for the parallel miner (`None` = all cores).
    pub threads: Option<usize>,
    /// Rows to print.
    pub top: usize,
    /// Redundancy filter.
    pub non_redundant: bool,
    /// FD-taxonomy discovery tolerance.
    pub fd_tolerance: Option<f64>,
    /// JSON output.
    pub json: bool,
    /// Wall-clock budget for the run (partial results + exit code 3 when
    /// exceeded).
    pub timeout: Option<Duration>,
    /// Cap on mined itemsets (partial results + exit code 3 when hit).
    pub max_itemsets: Option<u64>,
    /// Retry with doubled support when the itemset budget trips.
    pub adaptive_support: bool,
    /// Write the machine-readable run telemetry (JSON) to this path.
    /// Partial (exit-code-3) runs still flush it.
    pub metrics_out: Option<String>,
    /// Print a human-readable span/metric table on stderr after the run.
    pub trace_summary: bool,
    /// Directory for crash-safe mining checkpoints (enables `hdx resume`).
    pub checkpoint_dir: Option<String>,
    /// Write a checkpoint every N mining boundaries [1].
    pub checkpoint_every: u64,
}

/// `hdx resume` options. The run-determining configuration comes from the
/// manifest sealed inside the checkpoint directory; only output and budget
/// flags can be given afresh (budgets are per-invocation — the interrupted
/// run's budget is exactly what it needs to escape).
#[derive(Debug, Clone)]
pub struct ResumeOpts {
    /// Checkpoint directory written by `hdx explore --checkpoint-dir`.
    pub dir: String,
    /// Rows to print.
    pub top: usize,
    /// Redundancy filter.
    pub non_redundant: bool,
    /// JSON output.
    pub json: bool,
    /// Wall-clock budget for the resumed run.
    pub timeout: Option<Duration>,
    /// Cap on mined itemsets for the resumed run.
    pub max_itemsets: Option<u64>,
    /// Write the machine-readable run telemetry (JSON) to this path.
    pub metrics_out: Option<String>,
    /// Print a human-readable span/metric table on stderr after the run.
    pub trace_summary: bool,
}

/// `hdx serve` options. Mirrors `hdx_serve::ServeConfig`; defaults are the
/// service's defaults except the listen address, which is pinned so the
/// printed URL is stable.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Root state directory for job persistence and crash recovery.
    pub state_dir: String,
    /// Mining worker threads.
    pub workers: usize,
    /// Global queued-job cap.
    pub queue_depth: usize,
    /// Per-tenant in-flight job cap.
    pub tenant_max_jobs: usize,
    /// Request-body byte cap.
    pub max_body_bytes: usize,
    /// Concurrent connection cap.
    pub max_connections: usize,
    /// Retries before a transient job failure becomes final.
    pub retry_max: u32,
    /// Per-tenant wall-clock deadline shared across a tenant's job slots.
    pub timeout: Option<Duration>,
    /// Per-tenant itemset budget shared across a tenant's job slots.
    pub max_itemsets: Option<u64>,
    /// Per-job event broadcast ring capacity (slow-stream-consumer lag
    /// bound before drop-oldest kicks in).
    pub events_ring_cap: usize,
}

/// `hdx append` options: durable local ingestion into a row WAL.
#[derive(Debug, Clone)]
pub struct AppendOpts {
    /// CSV file of rows to append (no header; blank lines skipped).
    pub rows_path: String,
    /// WAL directory (created on first append).
    pub wal_dir: String,
    /// Seal the open segment after the append.
    pub seal: bool,
    /// Sliding window: retire oldest sealed segments beyond this count.
    pub window: Option<usize>,
}

/// `hdx validate-telemetry` options.
#[derive(Debug, Clone)]
pub struct ValidateTelemetryOpts {
    /// Telemetry JSON path.
    pub path: String,
    /// Stage names that must carry non-zero recorded time.
    pub require_stages: Vec<String>,
    /// Counter names that must be present with a non-zero value.
    pub require_counters: Vec<String>,
}

/// `hdx discretize` options.
#[derive(Debug, Clone)]
pub struct DiscretizeOpts {
    /// Input options.
    pub input: InputOpts,
    /// Tree support `st`.
    pub tree_support: f64,
    /// `true` = entropy criterion.
    pub entropy: bool,
    /// Restrict to one attribute.
    pub attr: Option<String>,
}

/// `hdx baselines` options.
#[derive(Debug, Clone)]
pub struct BaselinesOpts {
    /// Input options.
    pub input: InputOpts,
    /// Leaf discretization support.
    pub tree_support: f64,
    /// Slice Finder effect-size threshold.
    pub sf_threshold: f64,
    /// SliceLine α.
    pub sl_alpha: f64,
    /// SliceLine minimum slice size.
    pub min_size: usize,
}

/// `hdx generate` options.
#[derive(Debug, Clone)]
pub struct GenerateOpts {
    /// Dataset name.
    pub dataset: String,
    /// Row count (`None` = paper size).
    pub rows: Option<usize>,
    /// Seed.
    pub seed: u64,
    /// Output path.
    pub out: Option<String>,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone)]
pub enum Command {
    /// Summarise a CSV's attributes.
    Describe {
        /// CSV path.
        path: String,
        /// Field separator.
        separator: char,
    },
    /// Find divergent subgroups.
    Explore(ExploreOpts),
    /// Print discretization trees.
    Discretize(DiscretizeOpts),
    /// Run the prior-work baselines.
    Baselines(BaselinesOpts),
    /// Resume an interrupted `explore --checkpoint-dir` run.
    Resume(ResumeOpts),
    /// Append rows durably to an ingest WAL.
    Append(AppendOpts),
    /// Generate a synthetic dataset.
    Generate(GenerateOpts),
    /// Validate a run-telemetry artifact (CI `obs-smoke` gate).
    ValidateTelemetry(ValidateTelemetryOpts),
    /// Validate a scraped `/metrics` page against the Prometheus
    /// text-format 0.0.4 grammar (CI `serve-smoke` gate).
    ValidateMetrics {
        /// Path to a saved scrape page.
        path: String,
    },
    /// Run the fault-tolerant mining job server.
    Serve(ServeOpts),
    /// Print usage.
    Help,
}

/// Argument cursor with typed takes.
struct Cursor {
    args: std::vec::IntoIter<String>,
}

impl Cursor {
    fn value(&mut self, flag: &str) -> Result<String, CliError> {
        self.args
            .next()
            .ok_or_else(|| CliError::new(format!("{flag} requires a value")))
    }

    fn parse_value<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| CliError::new(format!("invalid value `{raw}` for {flag}")))
    }
}

/// Applies a shared input flag; returns `false` when the flag is not an
/// input option.
fn apply_input_flag(input: &mut InputOpts, flag: &str, cur: &mut Cursor) -> Result<bool, CliError> {
    match flag {
        "--stat" => input.stat = Stat::parse(&cur.value(flag)?)?,
        "--label-col" => input.label_col = cur.value(flag)?,
        "--pred-col" => input.pred_col = cur.value(flag)?,
        "--target-col" => input.target_col = Some(cur.value(flag)?),
        "--separator" => {
            let raw = cur.value(flag)?;
            let mut chars = raw.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => input.separator = c,
                _ => return Err(CliError::new("--separator takes a single character")),
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn require_path(cur: &mut Cursor, command: &str) -> Result<String, CliError> {
    match cur.args.next() {
        Some(p) if !p.starts_with("--") => Ok(p),
        _ => Err(CliError::new(format!("hdx {command} requires a CSV path"))),
    }
}

fn check_tree_support(st: f64) -> Result<(), CliError> {
    if st > 0.0 && st < 1.0 {
        Ok(())
    } else {
        Err(CliError::new("--st must be in (0, 1)"))
    }
}

/// Parses a duration flag value: a number with an `ms`, `s` or `m` suffix
/// (`500ms`, `30s`, `5m`); a bare number means seconds.
fn parse_duration(raw: &str) -> Result<Duration, CliError> {
    let (digits, scale_ms) = if let Some(d) = raw.strip_suffix("ms") {
        (d, 1.0)
    } else if let Some(d) = raw.strip_suffix('s') {
        (d, 1000.0)
    } else if let Some(d) = raw.strip_suffix('m') {
        (d, 60_000.0)
    } else {
        (raw, 1000.0)
    };
    match digits.parse::<f64>() {
        Ok(v) if v >= 0.0 && v.is_finite() => Ok(Duration::from_secs_f64(v * scale_ms / 1000.0)),
        _ => Err(CliError::new(format!(
            "invalid --timeout `{raw}` (use e.g. 500ms, 30s, 5m)"
        ))),
    }
}

fn parse_criterion(cur: &mut Cursor) -> Result<bool, CliError> {
    match cur.value("--criterion")?.as_str() {
        "divergence" => Ok(false),
        "entropy" => Ok(true),
        other => Err(CliError::new(format!("unknown --criterion `{other}`"))),
    }
}

/// Parses an invocation (without `argv[0]`).
pub fn parse(args: Vec<String>) -> Result<Command, CliError> {
    let mut cur = Cursor {
        args: args.into_iter(),
    };
    let Some(command) = cur.args.next() else {
        return Ok(Command::Help);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "describe" => {
            let path = require_path(&mut cur, "describe")?;
            let mut separator = ',';
            while let Some(flag) = cur.args.next() {
                match flag.as_str() {
                    "--separator" => {
                        let raw = cur.value(&flag)?;
                        let mut chars = raw.chars();
                        match (chars.next(), chars.next()) {
                            (Some(c), None) => separator = c,
                            _ => return Err(CliError::new("--separator takes a single character")),
                        }
                    }
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Describe { path, separator })
        }
        "explore" => {
            let mut opts = ExploreOpts {
                input: InputOpts::new(require_path(&mut cur, "explore")?),
                support: 0.05,
                tree_support: 0.1,
                entropy: false,
                base_mode: false,
                polarity: false,
                max_len: None,
                threads: None,
                top: 10,
                non_redundant: false,
                fd_tolerance: None,
                json: false,
                timeout: None,
                max_itemsets: None,
                adaptive_support: false,
                metrics_out: None,
                trace_summary: false,
                checkpoint_dir: None,
                checkpoint_every: 1,
            };
            while let Some(flag) = cur.args.next() {
                if apply_input_flag(&mut opts.input, &flag, &mut cur)? {
                    continue;
                }
                match flag.as_str() {
                    "-s" | "--support" => opts.support = cur.parse_value(&flag)?,
                    "--st" => opts.tree_support = cur.parse_value(&flag)?,
                    "--criterion" => opts.entropy = parse_criterion(&mut cur)?,
                    "--mode" => match cur.value(&flag)?.as_str() {
                        "base" => opts.base_mode = true,
                        "hierarchical" | "hier" => opts.base_mode = false,
                        other => return Err(CliError::new(format!("unknown --mode `{other}`"))),
                    },
                    "--polarity" => opts.polarity = true,
                    "--max-len" => opts.max_len = Some(cur.parse_value(&flag)?),
                    "--threads" => {
                        let n: usize = cur.parse_value(&flag)?;
                        if n == 0 {
                            return Err(CliError::new("--threads must be at least 1"));
                        }
                        opts.threads = Some(n);
                    }
                    "--top" => opts.top = cur.parse_value(&flag)?,
                    "--non-redundant" => opts.non_redundant = true,
                    "--fd" => opts.fd_tolerance = Some(cur.parse_value(&flag)?),
                    "--json" => opts.json = true,
                    "--timeout" => opts.timeout = Some(parse_duration(&cur.value(&flag)?)?),
                    "--max-itemsets" => opts.max_itemsets = Some(cur.parse_value(&flag)?),
                    "--adaptive-support" => opts.adaptive_support = true,
                    "--metrics-out" => opts.metrics_out = Some(cur.value(&flag)?),
                    "--trace-summary" => opts.trace_summary = true,
                    "--checkpoint-dir" => opts.checkpoint_dir = Some(cur.value(&flag)?),
                    "--checkpoint-every" => {
                        opts.checkpoint_every = cur.parse_value(&flag)?;
                        if opts.checkpoint_every == 0 {
                            return Err(CliError::new("--checkpoint-every must be at least 1"));
                        }
                    }
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            if !(0.0..=1.0).contains(&opts.support) || opts.support == 0.0 {
                return Err(CliError::new("--support must be in (0, 1]"));
            }
            check_tree_support(opts.tree_support)?;
            if opts.polarity && opts.checkpoint_dir.is_some() {
                // Polarity pruning re-mines per polarity class with no single
                // replayable emission order, so no checkpoint cursor exists.
                return Err(CliError::new(
                    "--polarity cannot be combined with --checkpoint-dir",
                ));
            }
            Ok(Command::Explore(opts))
        }
        "resume" => {
            let dir = match cur.args.next() {
                Some(p) if !p.starts_with("--") => p,
                _ => return Err(CliError::new("hdx resume requires a checkpoint directory")),
            };
            let mut opts = ResumeOpts {
                dir,
                top: 10,
                non_redundant: false,
                json: false,
                timeout: None,
                max_itemsets: None,
                metrics_out: None,
                trace_summary: false,
            };
            while let Some(flag) = cur.args.next() {
                match flag.as_str() {
                    "--top" => opts.top = cur.parse_value(&flag)?,
                    "--non-redundant" => opts.non_redundant = true,
                    "--json" => opts.json = true,
                    "--timeout" => opts.timeout = Some(parse_duration(&cur.value(&flag)?)?),
                    "--max-itemsets" => opts.max_itemsets = Some(cur.parse_value(&flag)?),
                    "--metrics-out" => opts.metrics_out = Some(cur.value(&flag)?),
                    "--trace-summary" => opts.trace_summary = true,
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Resume(opts))
        }
        "append" => {
            let rows_path = require_path(&mut cur, "append")?;
            let mut opts = AppendOpts {
                rows_path,
                wal_dir: String::new(),
                seal: false,
                window: None,
            };
            while let Some(flag) = cur.args.next() {
                match flag.as_str() {
                    "--wal" => opts.wal_dir = cur.value(&flag)?,
                    "--seal" => opts.seal = true,
                    "--window" => {
                        let n: usize = cur.parse_value(&flag)?;
                        if n == 0 {
                            return Err(CliError::new("--window must be at least 1"));
                        }
                        opts.window = Some(n);
                    }
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            if opts.wal_dir.is_empty() {
                return Err(CliError::new("hdx append requires --wal <dir>"));
            }
            if opts.window.is_some() && !opts.seal {
                // A window is counted in sealed segments; without sealing
                // the open segment the count never moves.
                return Err(CliError::new("--window requires --seal"));
            }
            Ok(Command::Append(opts))
        }
        "discretize" => {
            let mut opts = DiscretizeOpts {
                input: InputOpts::new(require_path(&mut cur, "discretize")?),
                tree_support: 0.1,
                entropy: false,
                attr: None,
            };
            while let Some(flag) = cur.args.next() {
                if apply_input_flag(&mut opts.input, &flag, &mut cur)? {
                    continue;
                }
                match flag.as_str() {
                    "--st" => opts.tree_support = cur.parse_value(&flag)?,
                    "--criterion" => opts.entropy = parse_criterion(&mut cur)?,
                    "--attr" => opts.attr = Some(cur.value(&flag)?),
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            check_tree_support(opts.tree_support)?;
            Ok(Command::Discretize(opts))
        }
        "baselines" => {
            let mut opts = BaselinesOpts {
                input: InputOpts::new(require_path(&mut cur, "baselines")?),
                tree_support: 0.1,
                sf_threshold: 0.4,
                sl_alpha: 0.95,
                min_size: 32,
            };
            while let Some(flag) = cur.args.next() {
                if apply_input_flag(&mut opts.input, &flag, &mut cur)? {
                    continue;
                }
                match flag.as_str() {
                    "--st" => opts.tree_support = cur.parse_value(&flag)?,
                    "--sf-threshold" => opts.sf_threshold = cur.parse_value(&flag)?,
                    "--sl-alpha" => opts.sl_alpha = cur.parse_value(&flag)?,
                    "--min-size" => opts.min_size = cur.parse_value(&flag)?,
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            check_tree_support(opts.tree_support)?;
            Ok(Command::Baselines(opts))
        }
        "generate" => {
            let dataset = require_path(&mut cur, "generate")?;
            let mut opts = GenerateOpts {
                dataset,
                rows: None,
                seed: 42,
                out: None,
            };
            while let Some(flag) = cur.args.next() {
                match flag.as_str() {
                    "--rows" => opts.rows = Some(cur.parse_value(&flag)?),
                    "--seed" => opts.seed = cur.parse_value(&flag)?,
                    "--out" => opts.out = Some(cur.value(&flag)?),
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Generate(opts))
        }
        "serve" => {
            let mut opts = ServeOpts {
                addr: "127.0.0.1:8373".into(),
                state_dir: "hdx-serve-state".into(),
                workers: 2,
                queue_depth: 16,
                tenant_max_jobs: 2,
                max_body_bytes: 4 * 1024 * 1024,
                max_connections: 32,
                retry_max: 2,
                timeout: None,
                max_itemsets: None,
                events_ring_cap: 256,
            };
            while let Some(flag) = cur.args.next() {
                match flag.as_str() {
                    "--addr" => opts.addr = cur.value(&flag)?,
                    "--state-dir" => opts.state_dir = cur.value(&flag)?,
                    "--workers" => opts.workers = cur.parse_value(&flag)?,
                    "--queue-depth" => opts.queue_depth = cur.parse_value(&flag)?,
                    "--tenant-max-jobs" => opts.tenant_max_jobs = cur.parse_value(&flag)?,
                    "--max-body-bytes" => opts.max_body_bytes = cur.parse_value(&flag)?,
                    "--max-connections" => opts.max_connections = cur.parse_value(&flag)?,
                    "--retry-max" => opts.retry_max = cur.parse_value(&flag)?,
                    "--timeout" => opts.timeout = Some(parse_duration(&cur.value(&flag)?)?),
                    "--max-itemsets" => opts.max_itemsets = Some(cur.parse_value(&flag)?),
                    "--events-ring-cap" => opts.events_ring_cap = cur.parse_value(&flag)?,
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            if opts.workers == 0 {
                return Err(CliError::new("--workers must be at least 1"));
            }
            if opts.events_ring_cap == 0 {
                return Err(CliError::new("--events-ring-cap must be at least 1"));
            }
            Ok(Command::Serve(opts))
        }
        "validate-metrics" => {
            let path = require_path(&mut cur, "validate-metrics")?;
            if let Some(flag) = cur.args.next() {
                return Err(CliError::new(format!("unknown flag `{flag}`")));
            }
            Ok(Command::ValidateMetrics { path })
        }
        "validate-telemetry" => {
            let path = require_path(&mut cur, "validate-telemetry")?;
            let mut opts = ValidateTelemetryOpts {
                path,
                require_stages: Vec::new(),
                require_counters: Vec::new(),
            };
            while let Some(flag) = cur.args.next() {
                match flag.as_str() {
                    "--require-stage" => opts.require_stages.push(cur.value(&flag)?),
                    "--require-counter" => opts.require_counters.push(cur.value(&flag)?),
                    other => return Err(CliError::new(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::ValidateTelemetry(opts))
        }
        other => Err(CliError::new(format!(
            "unknown command `{other}` (try `hdx help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert!(matches!(parse(v(&[])).unwrap(), Command::Help));
        assert!(matches!(parse(v(&["help"])).unwrap(), Command::Help));
        assert!(matches!(parse(v(&["--help"])).unwrap(), Command::Help));
    }

    #[test]
    fn explore_defaults_and_flags() {
        let Command::Explore(o) = parse(v(&["explore", "d.csv"])).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.input.path, "d.csv");
        assert_eq!(o.support, 0.05);
        assert_eq!(o.input.stat, Stat::Error);
        assert!(!o.base_mode && !o.polarity && !o.json);

        let Command::Explore(o) = parse(v(&[
            "explore",
            "d.csv",
            "--stat",
            "fpr",
            "-s",
            "0.02",
            "--st",
            "0.2",
            "--mode",
            "base",
            "--polarity",
            "--max-len",
            "3",
            "--threads",
            "4",
            "--top",
            "5",
            "--json",
            "--criterion",
            "entropy",
            "--fd",
            "0.01",
            "--non-redundant",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.input.stat, Stat::Fpr);
        assert_eq!(o.support, 0.02);
        assert_eq!(o.tree_support, 0.2);
        assert!(o.base_mode && o.polarity && o.json && o.entropy && o.non_redundant);
        assert_eq!(o.max_len, Some(3));
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.top, 5);
        assert_eq!(o.fd_tolerance, Some(0.01));
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(v(&["explore"])).unwrap_err().0.contains("CSV path"));
        assert!(parse(v(&["explore", "d.csv", "--bogus"]))
            .unwrap_err()
            .0
            .contains("unknown flag"));
        assert!(parse(v(&["explore", "d.csv", "-s"]))
            .unwrap_err()
            .0
            .contains("requires a value"));
        assert!(parse(v(&["explore", "d.csv", "-s", "abc"]))
            .unwrap_err()
            .0
            .contains("invalid value"));
        assert!(parse(v(&["frobnicate"]))
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse(v(&["explore", "d.csv", "--threads", "0"]))
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(v(&["explore", "d.csv", "--stat", "woo"]))
            .unwrap_err()
            .0
            .contains("unknown --stat"));
        assert!(parse(v(&["explore", "d.csv", "--separator", "ab"]))
            .unwrap_err()
            .0
            .contains("single character"));
    }

    #[test]
    fn out_of_range_supports_rejected() {
        assert!(parse(v(&["explore", "d.csv", "-s", "1.5"]))
            .unwrap_err()
            .0
            .contains("(0, 1]"));
        assert!(parse(v(&["explore", "d.csv", "-s", "0"])).is_err());
        assert!(parse(v(&["explore", "d.csv", "--st", "1.0"]))
            .unwrap_err()
            .0
            .contains("(0, 1)"));
        assert!(parse(v(&["discretize", "d.csv", "--st", "-0.1"])).is_err());
        assert!(parse(v(&["baselines", "d.csv", "--st", "2"])).is_err());
        // s = 1.0 is legal (everything is one subgroup).
        assert!(parse(v(&["explore", "d.csv", "-s", "1.0"])).is_ok());
    }

    #[test]
    fn governor_flags() {
        let Command::Explore(o) = parse(v(&[
            "explore",
            "d.csv",
            "--timeout",
            "500ms",
            "--max-itemsets",
            "1000",
            "--adaptive-support",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.timeout, Some(Duration::from_millis(500)));
        assert_eq!(o.max_itemsets, Some(1000));
        assert!(o.adaptive_support);
        // Defaults: unbounded.
        let Command::Explore(o) = parse(v(&["explore", "d.csv"])).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.timeout, None);
        assert_eq!(o.max_itemsets, None);
        assert!(!o.adaptive_support);
    }

    #[test]
    fn timeout_suffixes() {
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert_eq!(parse_duration("30s").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_duration("5m").unwrap(), Duration::from_secs(300));
        assert_eq!(parse_duration("2").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        for bad in ["", "ms", "-1s", "abc", "1h"] {
            assert!(parse_duration(bad).is_err(), "`{bad}` should be rejected");
        }
        assert!(parse(v(&["explore", "d.csv", "--timeout", "soon"]))
            .unwrap_err()
            .0
            .contains("invalid --timeout"));
    }

    #[test]
    fn checkpoint_flags() {
        let Command::Explore(o) = parse(v(&[
            "explore",
            "d.csv",
            "--checkpoint-dir",
            "ckpt",
            "--checkpoint-every",
            "4",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.checkpoint_dir.as_deref(), Some("ckpt"));
        assert_eq!(o.checkpoint_every, 4);
        // Defaults: off, every boundary.
        let Command::Explore(o) = parse(v(&["explore", "d.csv"])).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.checkpoint_dir, None);
        assert_eq!(o.checkpoint_every, 1);
        // A zero cadence never writes anything.
        assert!(parse(v(&[
            "explore",
            "d.csv",
            "--checkpoint-dir",
            "c",
            "--checkpoint-every",
            "0"
        ]))
        .unwrap_err()
        .0
        .contains("at least 1"));
        // Polarity pruning has no replayable cursor.
        assert!(parse(v(&[
            "explore",
            "d.csv",
            "--polarity",
            "--checkpoint-dir",
            "c"
        ]))
        .unwrap_err()
        .0
        .contains("--polarity"));
    }

    #[test]
    fn resume_flags() {
        let Command::Resume(o) = parse(v(&[
            "resume",
            "ckpt",
            "--top",
            "3",
            "--json",
            "--non-redundant",
            "--timeout",
            "30s",
            "--max-itemsets",
            "500",
            "--metrics-out",
            "m.json",
            "--trace-summary",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.dir, "ckpt");
        assert_eq!(o.top, 3);
        assert!(o.json && o.non_redundant && o.trace_summary);
        assert_eq!(o.timeout, Some(Duration::from_secs(30)));
        assert_eq!(o.max_itemsets, Some(500));
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert!(parse(v(&["resume"]))
            .unwrap_err()
            .0
            .contains("checkpoint directory"));
        assert!(parse(v(&["resume", "ckpt", "--support", "0.1"])).is_err());
    }

    #[test]
    fn append_options() {
        let Command::Append(o) = parse(v(&[
            "append", "rows.csv", "--wal", "w", "--seal", "--window", "4",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.rows_path, "rows.csv");
        assert_eq!(o.wal_dir, "w");
        assert!(o.seal);
        assert_eq!(o.window, Some(4));
        // Defaults.
        let Command::Append(o) = parse(v(&["append", "rows.csv", "--wal", "w"])).unwrap() else {
            panic!("wrong command");
        };
        assert!(!o.seal);
        assert_eq!(o.window, None);
        assert!(parse(v(&["append", "rows.csv"]))
            .unwrap_err()
            .0
            .contains("--wal"));
        assert!(parse(v(&["append"])).unwrap_err().0.contains("CSV path"));
        assert!(parse(v(&["append", "r.csv", "--wal", "w", "--window", "0"]))
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(v(&["append", "r.csv", "--wal", "w", "--window", "2"]))
            .unwrap_err()
            .0
            .contains("requires --seal"));
        assert!(parse(v(&["append", "r.csv", "--wal", "w", "--bogus"])).is_err());
    }

    #[test]
    fn stat_codes_round_trip() {
        for stat in [
            Stat::Fpr,
            Stat::Fnr,
            Stat::Tpr,
            Stat::Tnr,
            Stat::Error,
            Stat::Accuracy,
            Stat::PositiveRate,
            Stat::Target,
        ] {
            assert_eq!(Stat::from_code(stat.code()), Some(stat));
        }
        assert_eq!(Stat::from_code(200), None);
    }

    #[test]
    fn telemetry_flags() {
        let Command::Explore(o) = parse(v(&[
            "explore",
            "d.csv",
            "--metrics-out",
            "m.json",
            "--trace-summary",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert!(o.trace_summary);
        // Defaults: off.
        let Command::Explore(o) = parse(v(&["explore", "d.csv"])).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.metrics_out, None);
        assert!(!o.trace_summary);

        let Command::ValidateTelemetry(o) = parse(v(&[
            "validate-telemetry",
            "m.json",
            "--require-stage",
            "mine",
            "--require-stage",
            "explore",
            "--require-counter",
            "hdx.mining.candidates.generated",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.path, "m.json");
        assert_eq!(o.require_stages, vec!["mine", "explore"]);
        assert_eq!(o.require_counters, vec!["hdx.mining.candidates.generated"]);
        assert!(parse(v(&["validate-telemetry"])).is_err());
    }

    #[test]
    fn serve_options() {
        let Command::Serve(o) = parse(v(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--state-dir",
            "st",
            "--workers",
            "4",
            "--queue-depth",
            "5",
            "--tenant-max-jobs",
            "1",
            "--max-body-bytes",
            "1024",
            "--max-connections",
            "7",
            "--retry-max",
            "3",
            "--timeout",
            "30s",
            "--max-itemsets",
            "1000",
            "--events-ring-cap",
            "32",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.state_dir, "st");
        assert_eq!(o.workers, 4);
        assert_eq!(o.queue_depth, 5);
        assert_eq!(o.tenant_max_jobs, 1);
        assert_eq!(o.max_body_bytes, 1024);
        assert_eq!(o.max_connections, 7);
        assert_eq!(o.retry_max, 3);
        assert_eq!(o.timeout, Some(Duration::from_secs(30)));
        assert_eq!(o.max_itemsets, Some(1000));
        assert_eq!(o.events_ring_cap, 32);
        // Defaults.
        let Command::Serve(o) = parse(v(&["serve"])).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.addr, "127.0.0.1:8373");
        assert_eq!(o.workers, 2);
        assert_eq!(o.timeout, None);
        assert_eq!(o.events_ring_cap, 256);
        assert!(parse(v(&["serve", "--workers", "0"]))
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(v(&["serve", "--events-ring-cap", "0"]))
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(v(&["serve", "--bogus"])).is_err());
    }

    #[test]
    fn validate_metrics_options() {
        let Command::ValidateMetrics { path } =
            parse(v(&["validate-metrics", "page.prom"])).unwrap()
        else {
            panic!("wrong command");
        };
        assert_eq!(path, "page.prom");
        assert!(parse(v(&["validate-metrics"])).is_err());
        assert!(parse(v(&["validate-metrics", "p", "--bogus"])).is_err());
    }

    #[test]
    fn generate_options() {
        let Command::Generate(o) = parse(v(&[
            "generate", "compas", "--rows", "100", "--seed", "7", "--out", "x.csv",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.dataset, "compas");
        assert_eq!(o.rows, Some(100));
        assert_eq!(o.seed, 7);
        assert_eq!(o.out.as_deref(), Some("x.csv"));
    }

    #[test]
    fn baselines_options() {
        let Command::Baselines(o) = parse(v(&[
            "baselines",
            "d.csv",
            "--sf-threshold",
            "1.0",
            "--sl-alpha",
            "0.9",
            "--min-size",
            "64",
        ]))
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(o.sf_threshold, 1.0);
        assert_eq!(o.sl_alpha, 0.9);
        assert_eq!(o.min_size, 64);
    }
}
