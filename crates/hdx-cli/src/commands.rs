//! Command implementations, returning the text to print.

use hdx_baselines::{
    CombinedTreeConfig, CombinedTreeExplorer, SliceFinder, SliceFinderConfig, SliceLine,
    SliceLineConfig,
};
use hdx_core::checkpoint::{codec, envelope, CheckpointStore};
use hdx_core::{
    real_outcomes, report_to_json, CheckpointedRun, ExplorationMode, HDivExplorer,
    HDivExplorerConfig, HDivResult, OutcomeFn, RunBudget,
};
use hdx_data::{read_csv, AttributeKind, Column, CsvOptions, DataFrame, NULL_CODE};
use hdx_discretize::GainCriterion;
use hdx_stats::Outcome;

use crate::args::{
    AppendOpts, BaselinesOpts, CliError, Command, DiscretizeOpts, ExploreOpts, GenerateOpts,
    InputOpts, ResumeOpts, ServeOpts, Stat, ValidateTelemetryOpts,
};
use crate::USAGE;

/// The output of a successful command.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Text to print on stdout.
    pub text: String,
    /// `Some(reason)` when the run degraded (deadline, budget, cancellation
    /// or a lost worker) and the results are a partial-but-valid subset; the
    /// binary reports the reason on stderr and exits with code 3.
    pub partial: Option<String>,
    /// Human-readable span/metric table for stderr (`--trace-summary`).
    pub trace_summary: Option<String>,
    /// Informational lines for stderr (checkpoint/resume progress). Kept off
    /// stdout so a resumed run's report diffs clean against an uninterrupted
    /// one.
    pub notes: Vec<String>,
}

impl RunOutput {
    fn complete(text: String) -> Self {
        Self {
            text,
            partial: None,
            trace_summary: None,
            notes: Vec::new(),
        }
    }
}

/// Runs a parsed command, returning its output.
///
/// # Errors
/// Returns a [`CliError`] with a user-facing message on any failure.
pub fn run(command: Command) -> Result<RunOutput, CliError> {
    match command {
        Command::Help => Ok(RunOutput::complete(USAGE.to_string())),
        Command::Describe { path, separator } => {
            let df = read_csv(
                &path,
                &CsvOptions {
                    separator,
                    ..CsvOptions::default()
                },
            )
            .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
            Ok(RunOutput::complete(hdx_data::describe(&df).to_string()))
        }
        Command::Explore(opts) => explore(&opts),
        Command::Resume(opts) => resume(&opts),
        Command::Append(opts) => append(&opts),
        Command::Discretize(opts) => discretize(&opts).map(RunOutput::complete),
        Command::Baselines(opts) => baselines(&opts).map(RunOutput::complete),
        Command::Generate(opts) => generate(&opts).map(RunOutput::complete),
        Command::ValidateTelemetry(opts) => validate_telemetry(&opts).map(RunOutput::complete),
        Command::ValidateMetrics { path } => validate_metrics(&path).map(RunOutput::complete),
        Command::Serve(opts) => serve(&opts),
    }
}

/// Runs the job server until a graceful drain (`POST /shutdown`) completes.
///
/// The listening line goes straight to stdout *before* the blocking accept
/// loop so callers (and the CI smoke test) can discover the bound port; the
/// returned [`RunOutput`] only carries the post-drain summary.
fn serve(opts: &ServeOpts) -> Result<RunOutput, CliError> {
    use std::io::Write as _;
    let config = hdx_serve::ServeConfig {
        addr: opts.addr.clone(),
        state_dir: std::path::PathBuf::from(&opts.state_dir),
        workers: opts.workers,
        queue_depth: opts.queue_depth,
        tenant_max_jobs: opts.tenant_max_jobs,
        max_body_bytes: opts.max_body_bytes,
        max_connections: opts.max_connections,
        retry_max: opts.retry_max,
        tenant_deadline_ms: opts.timeout.map(|d| d.as_millis() as u64),
        tenant_max_itemsets: opts.max_itemsets,
        events_ring_cap: opts.events_ring_cap,
        ..hdx_serve::ServeConfig::default()
    };
    let server = hdx_serve::Server::bind(config)
        .map_err(|e| CliError(format!("cannot start server: {e}")))?;
    for note in &server.recovery_notes {
        eprintln!("hdx: {note}");
    }
    println!("hdx: serving on http://{}", server.local_addr());
    let _ = std::io::stdout().flush();
    server
        .run()
        .map_err(|e| CliError(format!("server failed: {e}")))?;
    Ok(RunOutput::complete("hdx: drain complete\n".to_string()))
}

/// `hdx append`: durable local ingestion into a row WAL.
///
/// Every row is CRC-framed and the batch is fsynced before the command
/// reports success, so an acknowledged append survives `kill -9`. Opening
/// the WAL heals crash damage from earlier runs: torn tails and corrupt
/// segments are quarantined (the bytes set aside, the valid prefix kept)
/// and reported as a *partial* outcome — exit code 3, stderr notes — while
/// the new rows still land.
fn append(opts: &AppendOpts) -> Result<RunOutput, CliError> {
    use hdx_core::ingest::{Wal, WalConfig};
    let raw = std::fs::read_to_string(&opts.rows_path)
        .map_err(|e| CliError(format!("cannot read `{}`: {e}", opts.rows_path)))?;
    let rows: Vec<&str> = raw.lines().filter(|l| !l.trim().is_empty()).collect();
    if rows.is_empty() {
        return Err(CliError(format!("`{}` contains no rows", opts.rows_path)));
    }
    let (mut wal, report) = Wal::open(&opts.wal_dir, WalConfig::default())
        .map_err(|e| CliError(format!("cannot open WAL `{}`: {e}", opts.wal_dir)))?;
    for row in &rows {
        wal.append_row(row.as_bytes())
            .map_err(|e| CliError(format!("append failed: {e}")))?;
    }
    wal.commit()
        .map_err(|e| CliError(format!("commit failed: {e}")))?;
    if opts.seal {
        wal.seal()
            .map_err(|e| CliError(format!("seal failed: {e}")))?;
    }
    let mut retired_rows = 0u64;
    if let Some(window) = opts.window {
        while wal.sealed_segments().len() > window {
            match wal.retire_oldest() {
                Ok(Some((segment, _rows))) => retired_rows += segment.rows,
                Ok(None) => break,
                Err(e) => return Err(CliError(format!("cannot retire segment: {e}"))),
            }
        }
    }
    let mut notes = Vec::new();
    let partial = if report.is_clean() {
        None
    } else {
        for line in &report.notes {
            notes.push(format!("ingest quarantine: {line}"));
        }
        report.summary()
    };
    let mut text = format!(
        "appended {} row(s); {} durable ({} sealed segment(s), {} open row(s))\n",
        rows.len(),
        wal.total_rows(),
        wal.sealed_segments().len(),
        wal.open_rows(),
    );
    if retired_rows > 0 {
        text.push_str(&format!(
            "retired {retired_rows} row(s) past the {}-segment window\n",
            opts.window.unwrap_or_default(),
        ));
    }
    Ok(RunOutput {
        text,
        partial,
        trace_summary: None,
        notes,
    })
}

/// Parses one cell of a boolean column.
fn parse_bool_cell(col: &Column, row: usize, name: &str) -> Result<bool, CliError> {
    match col {
        Column::Categorical(c) => {
            let code = c.code(row);
            if code == NULL_CODE {
                return Err(CliError(format!("null label in column `{name}` row {row}")));
            }
            match c.level(code).to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "y" | "1" => Ok(true),
                "false" | "f" | "no" | "n" | "0" => Ok(false),
                other => Err(CliError(format!(
                    "column `{name}` is not boolean (value `{other}`)"
                ))),
            }
        }
        Column::Continuous(c) => match c.get(row) {
            Some(v) if v == 0.0 || v == 1.0 => Ok(v == 1.0),
            Some(v) => Err(CliError(format!(
                "column `{name}` is not boolean (value `{v}`)"
            ))),
            None => Err(CliError(format!("null label in column `{name}` row {row}"))),
        },
    }
}

/// Extracts a boolean column by name.
fn bool_column(df: &DataFrame, name: &str) -> Result<Vec<bool>, CliError> {
    let col = df
        .column_by_name(name)
        .map_err(|e| CliError(e.to_string()))?;
    (0..df.n_rows())
        .map(|row| parse_bool_cell(col, row, name))
        .collect()
}

/// Loads the CSV and computes (mining frame, outcomes, ingestion quality).
fn load(
    input: &InputOpts,
) -> Result<(DataFrame, Vec<Outcome>, hdx_data::DataQualityReport), CliError> {
    let options = CsvOptions {
        separator: input.separator,
        ..CsvOptions::default()
    };
    let (df, quality) = hdx_data::read_csv_with_quality(&input.path, &options)
        .map_err(|e| CliError(format!("cannot read `{}`: {e}", input.path)))?;

    let (outcomes, drop): (Vec<Outcome>, Vec<String>) = match input.stat {
        Stat::Target => {
            let name = input
                .target_col
                .clone()
                .ok_or_else(|| CliError("--stat target requires --target-col".into()))?;
            let attr = df
                .schema()
                .require(&name)
                .map_err(|e| CliError(e.to_string()))?;
            if df.schema().kind(attr) != AttributeKind::Continuous {
                return Err(CliError(format!("target column `{name}` is not numeric")));
            }
            let outcomes = real_outcomes(df.continuous(attr).values());
            (outcomes, vec![name])
        }
        stat => {
            let y_true = bool_column(&df, &input.label_col)?;
            let y_pred = bool_column(&df, &input.pred_col)?;
            let f = match stat {
                Stat::Fpr => OutcomeFn::Fpr,
                Stat::Fnr => OutcomeFn::Fnr,
                Stat::Tpr => OutcomeFn::Tpr,
                Stat::Tnr => OutcomeFn::Tnr,
                Stat::Error => OutcomeFn::ErrorRate,
                Stat::Accuracy => OutcomeFn::Accuracy,
                Stat::PositiveRate => OutcomeFn::PositiveRate,
                Stat::Target => unreachable!("handled above"),
            };
            (
                f.compute(&y_true, &y_pred),
                vec![input.label_col.clone(), input.pred_col.clone()],
            )
        }
    };
    let drop_refs: Vec<&str> = drop.iter().map(String::as_str).collect();
    let frame = df
        .drop_columns(&drop_refs)
        .map_err(|e| CliError(e.to_string()))?;
    if frame.n_attributes() == 0 {
        return Err(CliError("no attributes left to mine".into()));
    }
    Ok((frame, outcomes, quality))
}

fn pipeline_config(
    support: f64,
    tree_support: f64,
    entropy: bool,
    polarity: bool,
    max_len: Option<usize>,
    threads: Option<usize>,
) -> HDivExplorerConfig {
    HDivExplorerConfig {
        min_support: support,
        tree_min_support: tree_support,
        criterion: if entropy {
            GainCriterion::Entropy
        } else {
            GainCriterion::Divergence
        },
        polarity_pruning: polarity,
        max_len,
        threads,
        ..HDivExplorerConfig::default()
    }
}

fn build_budget(timeout: Option<std::time::Duration>, max_itemsets: Option<u64>) -> RunBudget {
    let mut budget = RunBudget::unbounded();
    if let Some(timeout) = timeout {
        budget = budget.with_deadline(timeout);
    }
    if let Some(max) = max_itemsets {
        budget = budget.with_max_itemsets(max);
    }
    budget
}

/// Renders a result as (stdout text, partial-run reason). Shared by `explore`
/// and `resume` so a resumed run's report is byte-identical to the report an
/// uninterrupted run would have printed.
fn render_result(
    result: &HDivResult,
    frame: &DataFrame,
    support: f64,
    top: usize,
    json: bool,
    non_redundant: bool,
) -> (String, Option<String>) {
    let partial = result.is_partial().then(|| {
        // Human phrasing ("timed out", "cancelled by user", ...) so the
        // banner tells a user cancel apart from a deadline trip; the JSON
        // report keeps the stable machine labels from `Termination::as_str`.
        let mut reason = result.termination().describe().to_string();
        for e in &result.report.errors {
            reason.push_str(&format!("; {e}"));
        }
        reason
    });
    if json {
        return (report_to_json(&result.report, &result.catalog), partial);
    }
    let mut out = format!(
        "{} rows, {} attributes; global statistic {}\n{} subgroups above support {}\n\n",
        frame.n_rows(),
        frame.n_attributes(),
        result
            .report
            .global_statistic
            .map_or("undefined".to_string(), |g| format!("{g:.4}")),
        result.report.records.len(),
        support,
    );
    if let Some(reason) = &partial {
        out.push_str(&format!("PARTIAL RESULTS ({reason})"));
        if result.adaptive_retries > 0 {
            out.push_str(&format!(
                "; adaptive support raised to {}",
                result.effective_min_support
            ));
        }
        out.push('\n');
    } else if result.adaptive_retries > 0 {
        out.push_str(&format!(
            "adaptive support: completed at s={} after {} retries\n",
            result.effective_min_support, result.adaptive_retries
        ));
    }
    if non_redundant {
        let filtered = result.report.non_redundant(1e-9);
        out.push_str("itemset | sup | f | Δf | t  (non-redundant)\n");
        for r in filtered.iter().take(top) {
            out.push_str(&format!(
                "{}  sup={:.3} f={} Δ={} t={:.1}\n",
                r.label,
                r.support,
                r.statistic.map_or("-".into(), |s| format!("{s:.3}")),
                r.divergence.map_or("-".into(), |d| format!("{d:+.3}")),
                r.t_value,
            ));
        }
    } else {
        out.push_str(&result.report.table(top));
    }
    (out, partial)
}

/// Collects and (when requested) writes/renders telemetry. Flushes however
/// the run ended: a partial (exit-code-3) run still writes its artifact.
fn flush_telemetry(
    metrics_out: Option<&String>,
    trace_summary: bool,
) -> Result<Option<String>, CliError> {
    let telemetry = (metrics_out.is_some() || trace_summary).then(hdx_core::obs::collect);
    if let (Some(t), Some(path)) = (&telemetry, metrics_out) {
        std::fs::write(path, t.to_json())
            .map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
    }
    Ok(telemetry
        .filter(|_| trace_summary)
        .map(|t| t.summary_table()))
}

/// Turns a [`CheckpointedRun`]'s bookkeeping into stderr notes.
fn checkpoint_notes(run: &CheckpointedRun, dir: &str, notes: &mut Vec<String>) {
    notes.push(format!(
        "{} checkpoint(s) written to {dir}",
        run.checkpoint_writes
    ));
    if run.rejected_checkpoints > 0 {
        notes.push(format!(
            "{} corrupt checkpoint(s) detected and skipped",
            run.rejected_checkpoints
        ));
    }
    if let Some(err) = &run.checkpoint_error {
        notes.push(format!(
            "checkpoint persistence degraded (run unaffected): {err}"
        ));
    }
}

fn explore(opts: &ExploreOpts) -> Result<RunOutput, CliError> {
    // Fresh telemetry per run, so `--metrics-out` describes this exploration
    // only (a no-op unless the `obs` feature is enabled).
    hdx_core::obs::reset();
    let (frame, outcomes, quality) = load(&opts.input)?;
    let mut notes = Vec::new();
    if let Some(summary) = quality.summary() {
        notes.push(format!("ingestion quarantine: {summary}"));
    }
    let mut pipeline = HDivExplorer::new(HDivExplorerConfig {
        budget: build_budget(opts.timeout, opts.max_itemsets),
        adaptive_support: opts.adaptive_support,
        ..pipeline_config(
            opts.support,
            opts.tree_support,
            opts.entropy,
            opts.polarity,
            opts.max_len,
            opts.threads,
        )
    });
    if let Some(tolerance) = opts.fd_tolerance {
        pipeline = pipeline.with_discovered_taxonomies(&frame, tolerance);
    }
    let mode = if opts.base_mode {
        ExplorationMode::Base
    } else {
        ExplorationMode::Generalized
    };
    let result = match &opts.checkpoint_dir {
        None => pipeline.fit_mode(&frame, &outcomes, mode),
        Some(dir) => {
            let store = CheckpointStore::create(dir)
                .map_err(|e| CliError(format!("cannot create checkpoint dir `{dir}`: {e}")))?;
            write_manifest(dir, opts)?;
            let run = pipeline
                .fit_checkpointed(&frame, &outcomes, mode, store, opts.checkpoint_every)
                .map_err(|e| CliError(e.to_string()))?;
            checkpoint_notes(&run, dir, &mut notes);
            run.result
        }
    };
    let (text, partial) = render_result(
        &result,
        &frame,
        opts.support,
        opts.top,
        opts.json,
        opts.non_redundant,
    );
    let trace_summary = flush_telemetry(opts.metrics_out.as_ref(), opts.trace_summary)?;
    Ok(RunOutput {
        text,
        partial,
        trace_summary,
        notes,
    })
}

fn resume(opts: &ResumeOpts) -> Result<RunOutput, CliError> {
    hdx_core::obs::reset();
    let manifest = load_manifest(&opts.dir)?;
    let (frame, outcomes, quality) = load(&manifest.input)?;
    let mut notes = Vec::new();
    if let Some(summary) = quality.summary() {
        notes.push(format!("ingestion quarantine: {summary}"));
    }
    // Budgets are per-invocation: the interrupted run's budget is exactly
    // what it tripped on, so only flags given to `resume` itself apply.
    let mut pipeline = HDivExplorer::new(HDivExplorerConfig {
        budget: build_budget(opts.timeout, opts.max_itemsets),
        adaptive_support: manifest.adaptive_support,
        // Thread count is a per-invocation resource knob, not run-determining
        // configuration, so it is not sealed in the manifest: a resume uses
        // the default (all cores).
        ..pipeline_config(
            manifest.support,
            manifest.tree_support,
            manifest.entropy,
            false,
            manifest.max_len,
            None,
        )
    });
    if let Some(tolerance) = manifest.fd_tolerance {
        pipeline = pipeline.with_discovered_taxonomies(&frame, tolerance);
    }
    let mode = if manifest.base_mode {
        ExplorationMode::Base
    } else {
        ExplorationMode::Generalized
    };
    let store = CheckpointStore::open(&opts.dir)
        .map_err(|e| CliError(format!("cannot open checkpoint dir `{}`: {e}", opts.dir)))?;
    let run = pipeline
        .resume_checkpointed(&frame, &outcomes, mode, store, manifest.checkpoint_every)
        .map_err(|e| CliError(format!("cannot resume from `{}`: {e}", opts.dir)))?;
    if let Some(seq) = run.resumed_seq {
        notes.push(format!("resumed from checkpoint #{seq} in {}", opts.dir));
    }
    checkpoint_notes(&run, &opts.dir, &mut notes);
    let (text, partial) = render_result(
        &run.result,
        &frame,
        manifest.support,
        opts.top,
        opts.json,
        opts.non_redundant,
    );
    let trace_summary = flush_telemetry(opts.metrics_out.as_ref(), opts.trace_summary)?;
    Ok(RunOutput {
        text,
        partial,
        trace_summary,
        notes,
    })
}

/// The manifest sealed into a checkpoint directory: everything `hdx resume`
/// needs to reconstruct the run without repeating the original flags.
struct Manifest {
    input: InputOpts,
    support: f64,
    tree_support: f64,
    entropy: bool,
    base_mode: bool,
    max_len: Option<usize>,
    adaptive_support: bool,
    fd_tolerance: Option<f64>,
    checkpoint_every: u64,
}

const MANIFEST_FILE: &str = "manifest.hdx";
const MANIFEST_VERSION: u8 = 1;

fn write_manifest(dir: &str, opts: &ExploreOpts) -> Result<(), CliError> {
    let mut w = codec::ByteWriter::new();
    w.put_u8(MANIFEST_VERSION);
    w.put_str(&opts.input.path);
    w.put_u8(opts.input.stat.code());
    w.put_str(&opts.input.label_col);
    w.put_str(&opts.input.pred_col);
    w.put_bool(opts.input.target_col.is_some());
    if let Some(target) = &opts.input.target_col {
        w.put_str(target);
    }
    w.put_u32(opts.input.separator as u32);
    w.put_f64(opts.support);
    w.put_f64(opts.tree_support);
    w.put_bool(opts.entropy);
    w.put_bool(opts.base_mode);
    w.put_opt_u32(opts.max_len.map(|v| v as u32));
    w.put_bool(opts.adaptive_support);
    w.put_opt_f64(opts.fd_tolerance);
    w.put_u64(opts.checkpoint_every);
    let path = std::path::Path::new(dir).join(MANIFEST_FILE);
    std::fs::write(&path, envelope::seal(&w.into_bytes()))
        .map_err(|e| CliError(format!("cannot write `{}`: {e}", path.display())))
}

fn load_manifest(dir: &str) -> Result<Manifest, CliError> {
    let path = std::path::Path::new(dir).join(MANIFEST_FILE);
    let bytes = std::fs::read(&path)
        .map_err(|e| CliError(format!("cannot read `{}`: {e}", path.display())))?;
    let payload =
        envelope::open(&bytes).map_err(|e| CliError(format!("`{}`: {e}", path.display())))?;
    let mut r = codec::ByteReader::new(&payload);
    let err =
        |e: hdx_core::checkpoint::CheckpointError| CliError(format!("`{}`: {e}", path.display()));
    let version = r.u8().map_err(err)?;
    if version != MANIFEST_VERSION {
        return Err(CliError(format!(
            "`{}`: unsupported manifest version {version}",
            path.display()
        )));
    }
    let input_path = r.str().map_err(err)?;
    let stat = Stat::from_code(r.u8().map_err(err)?)
        .ok_or_else(|| CliError(format!("`{}`: unknown statistic code", path.display())))?;
    let label_col = r.str().map_err(err)?;
    let pred_col = r.str().map_err(err)?;
    let target_col = if r.bool().map_err(err)? {
        Some(r.str().map_err(err)?)
    } else {
        None
    };
    let separator = char::from_u32(r.u32().map_err(err)?)
        .ok_or_else(|| CliError(format!("`{}`: invalid separator", path.display())))?;
    let support = r.f64().map_err(err)?;
    let tree_support = r.f64().map_err(err)?;
    let entropy = r.bool().map_err(err)?;
    let base_mode = r.bool().map_err(err)?;
    let max_len = r.opt_u32().map_err(err)?.map(|v| v as usize);
    let adaptive_support = r.bool().map_err(err)?;
    let fd_tolerance = r.opt_f64().map_err(err)?;
    let checkpoint_every = r.u64().map_err(err)?;
    r.finish().map_err(err)?;
    Ok(Manifest {
        input: InputOpts {
            path: input_path,
            stat,
            label_col,
            pred_col,
            target_col,
            separator,
        },
        support,
        tree_support,
        entropy,
        base_mode,
        max_len,
        adaptive_support,
        fd_tolerance,
        checkpoint_every,
    })
}

/// Validates a telemetry artifact: schema + registered metrics always; the
/// given stages/counters when requested (the CI `obs-smoke` gate).
fn validate_telemetry(opts: &ValidateTelemetryOpts) -> Result<String, CliError> {
    let raw = std::fs::read_to_string(&opts.path)
        .map_err(|e| CliError(format!("cannot read `{}`: {e}", opts.path)))?;
    let telemetry = hdx_core::obs::RunTelemetry::from_json(&raw)
        .map_err(|e| CliError(format!("`{}`: {e}", opts.path)))?;
    telemetry
        .validate()
        .map_err(|e| CliError(format!("`{}`: {e}", opts.path)))?;
    let stages: Vec<&str> = opts.require_stages.iter().map(String::as_str).collect();
    telemetry
        .validate_stages(&stages)
        .map_err(|e| CliError(format!("`{}`: {e}", opts.path)))?;
    for name in &opts.require_counters {
        if telemetry.counter_named(name) == 0 {
            return Err(CliError(format!(
                "`{}`: counter `{name}` is zero or missing",
                opts.path
            )));
        }
    }
    Ok(format!(
        "{}: valid ({} spans, {} counters)\n",
        opts.path,
        telemetry.spans.len(),
        telemetry.counters.len(),
    ))
}

/// Validates a saved `GET /metrics` scrape against the text-format 0.0.4
/// grammar (the CI `serve-smoke` gate for the exposition endpoint).
fn validate_metrics(path: &str) -> Result<String, CliError> {
    let page = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    hdx_core::obs::expo::check_grammar(&page).map_err(|e| CliError(format!("`{path}`: {e}")))?;
    let families = page.lines().filter(|l| l.starts_with("# TYPE ")).count();
    Ok(format!("{path}: valid exposition ({families} families)\n"))
}

fn discretize(opts: &DiscretizeOpts) -> Result<String, CliError> {
    let (frame, outcomes, _) = load(&opts.input)?;
    let pipeline = HDivExplorer::new(pipeline_config(
        0.05,
        opts.tree_support,
        opts.entropy,
        false,
        None,
        None,
    ));
    let (catalog, _, trees) = pipeline.discretize(&frame, &outcomes);
    let mut out = String::new();
    for tree in &trees {
        let name = frame.schema().name(tree.attr);
        if opts.attr.as_deref().is_some_and(|a| a != name) {
            continue;
        }
        out.push_str(&format!("== {name} ==\n{}\n", tree.render(&catalog)));
    }
    if out.is_empty() {
        return Err(CliError(match &opts.attr {
            Some(a) => format!("no continuous attribute named `{a}`"),
            None => "no continuous attributes to discretize".into(),
        }));
    }
    Ok(out)
}

fn baselines(opts: &BaselinesOpts) -> Result<String, CliError> {
    let (frame, outcomes, _) = load(&opts.input)?;
    let losses: Vec<f64> = outcomes.iter().map(|o| o.value().unwrap_or(0.0)).collect();
    let pipeline = HDivExplorer::new(pipeline_config(
        0.05,
        opts.tree_support,
        false,
        false,
        None,
        None,
    ));
    let (catalog, hierarchies, _) = pipeline.discretize(&frame, &outcomes);
    let leaf_items = hierarchies.leaf_items();

    let mut out = String::new();
    out.push_str("== Slice Finder ==\n");
    let sf = SliceFinder::new(SliceFinderConfig {
        effect_size_threshold: opts.sf_threshold,
        ..SliceFinderConfig::default()
    });
    match sf.find(&frame, &catalog, &leaf_items, &losses).first() {
        Some(s) => out.push_str(&format!(
            "{}  size={} effect={:.2} mean-loss={:.3}\n",
            s.label, s.size, s.effect_size, s.mean_loss
        )),
        None => out.push_str("no problematic slice found\n"),
    }

    out.push_str("\n== SliceLine ==\n");
    if losses.iter().sum::<f64>() > 0.0 {
        let sl = SliceLine::new(SliceLineConfig {
            alpha: opts.sl_alpha,
            min_size: opts.min_size,
            ..SliceLineConfig::default()
        });
        for s in sl.find(&frame, &catalog, &leaf_items, &losses) {
            out.push_str(&format!(
                "{}  size={} mean-error={:.3} score={:.3}\n",
                s.label, s.size, s.mean_error, s.score
            ));
        }
    } else {
        out.push_str("average loss is zero; nothing to find\n");
    }

    out.push_str("\n== Combined tree ==\n");
    let leaves = CombinedTreeExplorer::new(CombinedTreeConfig {
        min_support: opts.tree_support,
        max_depth: None,
    })
    .explore(&frame, &outcomes);
    for leaf in leaves.iter().take(5) {
        out.push_str(&format!(
            "{}  sup={:.3} Δ={} t={:.1}\n",
            leaf.label,
            leaf.support,
            leaf.divergence.map_or("-".into(), |d| format!("{d:+.3}")),
            leaf.t_value,
        ));
    }
    Ok(out)
}

fn generate(opts: &GenerateOpts) -> Result<String, CliError> {
    use hdx_datasets as ds;
    let rows = |full: usize| opts.rows.unwrap_or(full);
    let dataset = match opts.dataset.as_str() {
        "adult" => ds::adult(rows(ds::default_rows::ADULT), opts.seed),
        "bank" => ds::bank(rows(ds::default_rows::BANK), opts.seed),
        "compas" => ds::compas(rows(ds::default_rows::COMPAS), opts.seed),
        "folktables" => ds::folktables(rows(ds::default_rows::FOLKTABLES), opts.seed),
        "german" => ds::german(rows(ds::default_rows::GERMAN), opts.seed),
        "intentions" => ds::intentions(rows(ds::default_rows::INTENTIONS), opts.seed),
        "synthetic-peak" => ds::synthetic_peak(rows(ds::default_rows::SYNTHETIC_PEAK), opts.seed),
        "wine" => ds::wine(rows(ds::default_rows::WINE), opts.seed),
        other => return Err(CliError(format!("unknown dataset `{other}`"))),
    };

    // Append label/prediction/target columns to the frame for export.
    let mut builder = hdx_data::DataFrameBuilder::new();
    for (_, attr) in dataset.frame.schema().iter() {
        builder
            .add_attribute(attr.clone())
            .map_err(|e| CliError(e.to_string()))?;
    }
    let labels = dataset.y_true.as_ref().zip(dataset.y_pred.as_ref());
    let target = dataset.target.as_ref();
    if labels.is_some() {
        builder
            .add_categorical("y_true")
            .map_err(|e| CliError(e.to_string()))?;
        builder
            .add_categorical("y_pred")
            .map_err(|e| CliError(e.to_string()))?;
    }
    if target.is_some() {
        builder
            .add_continuous("target")
            .map_err(|e| CliError(e.to_string()))?;
    }
    for row in 0..dataset.n_rows() {
        let mut cells: Vec<hdx_data::Value> = dataset
            .frame
            .schema()
            .iter()
            .map(|(id, _)| dataset.frame.column(id).value(row))
            .collect();
        if let Some((y_true, y_pred)) = labels {
            cells.push(hdx_data::Value::Cat(y_true[row].to_string()));
            cells.push(hdx_data::Value::Cat(y_pred[row].to_string()));
        }
        if let Some(values) = target {
            cells.push(hdx_data::Value::Num(values[row]));
        }
        builder
            .push_row(cells)
            .map_err(|e| CliError(e.to_string()))?;
    }
    let export = builder.finish();
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("{}.csv", opts.dataset));
    hdx_data::write_csv(&export, &path).map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "wrote {} rows × {} columns to {path}\n",
        export.n_rows(),
        export.n_attributes(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("hdx-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn run_args(args: &[&str]) -> Result<String, CliError> {
        run(parse(v(args))?).map(|o| o.text)
    }

    fn run_full(args: &[&str]) -> Result<RunOutput, CliError> {
        run(parse(v(args))?)
    }

    #[test]
    fn append_lands_rows_and_windows_segments() {
        let rows = tmp("append-rows.csv");
        std::fs::write(&rows, "1,0,61,b\n0,0,30,a\n\n1,1,70,b\n").unwrap();
        let wal = tmp("append-wal");
        let _ = std::fs::remove_dir_all(&wal);

        let out = run_full(&["append", &rows, "--wal", &wal]).expect("append");
        assert!(out.partial.is_none(), "{:?}", out.notes);
        assert!(out.text.contains("appended 3 row(s)"), "{}", out.text);
        assert!(out.text.contains("3 durable"), "{}", out.text);

        // Sealed appends accumulate segments; the window retires the oldest.
        for _ in 0..3 {
            run_full(&["append", &rows, "--wal", &wal, "--seal"]).expect("sealed append");
        }
        let out = run_full(&[
            "append", &rows, "--wal", &wal, "--seal", "--window", "2",
        ])
        .expect("windowed append");
        assert!(out.text.contains("2 sealed segment(s)"), "{}", out.text);
        assert!(out.text.contains("retired"), "{}", out.text);

        assert!(run_full(&["append", &tmp("no-such-rows.csv"), "--wal", &wal]).is_err());
        let empty = tmp("append-empty.csv");
        std::fs::write(&empty, "\n\n").unwrap();
        assert!(run_full(&["append", &empty, "--wal", &wal])
            .unwrap_err()
            .0
            .contains("no rows"));
        let _ = std::fs::remove_dir_all(&wal);
    }

    #[test]
    fn append_quarantines_a_torn_tail_as_partial() {
        use std::io::Write as _;
        let rows = tmp("torn-rows.csv");
        std::fs::write(&rows, "1,0,61,b\n").unwrap();
        let wal = tmp("torn-wal");
        let _ = std::fs::remove_dir_all(&wal);
        run_full(&["append", &rows, "--wal", &wal]).expect("first append");

        // A frame header promising more bytes than the file holds — what an
        // interrupted append leaves behind.
        let open_log = std::path::Path::new(&wal).join(hdx_core::ingest::OPEN_FILE);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&open_log)
            .unwrap();
        f.write_all(&[0xFF, 0, 0, 0, 0xAA]).unwrap();
        drop(f);

        let out = run_full(&["append", &rows, "--wal", &wal]).expect("healing append");
        let reason = out.partial.as_deref().expect("torn tail is partial");
        assert!(reason.contains("quarantine"), "{reason}");
        assert!(
            out.notes.iter().any(|n| n.contains("ingest quarantine")),
            "{:?}",
            out.notes
        );
        // Degrade, not die: both acknowledged rows survive the quarantine.
        assert!(out.text.contains("2 durable"), "{}", out.text);
        let _ = std::fs::remove_dir_all(&wal);
    }

    /// Writes a CSV with an obvious anomaly: errors cluster at x>60 & g=b.
    fn write_fixture() -> String {
        write_fixture_at("fixture.csv")
    }

    /// [`write_fixture`] under a caller-owned name, for tests that mutate it.
    fn write_fixture_at(name: &str) -> String {
        let path = tmp(name);
        let mut csv = String::from("x,g,y_true,y_pred\n");
        for i in 0..400 {
            let x = i % 100;
            let g = if i % 2 == 0 { "a" } else { "b" };
            let t = true;
            let err = x > 60 && g == "b" && i % 8 != 0;
            csv.push_str(&format!("{x},{g},{t},{}\n", t != err));
        }
        std::fs::write(&path, csv).unwrap();
        path
    }

    #[test]
    fn explore_finds_the_cluster() {
        let path = write_fixture();
        let out = run_args(&["explore", &path, "--stat", "error", "-s", "0.05"]).unwrap();
        assert!(out.contains("global statistic"));
        assert!(out.contains("g=b"), "output:\n{out}");
        assert!(out.contains("x>"), "output:\n{out}");
    }

    #[test]
    fn explore_json_mode() {
        let path = write_fixture();
        let out = run_args(&["explore", &path, "--json"]).unwrap();
        assert!(out.starts_with('{'));
        assert!(out.contains("\"subgroups\":["));
    }

    #[test]
    fn explore_base_vs_hier() {
        let path = write_fixture();
        let base = run_args(&["explore", &path, "--mode", "base", "--top", "1"]).unwrap();
        let hier = run_args(&["explore", &path, "--mode", "hierarchical", "--top", "1"]).unwrap();
        // Both run; the hierarchical report mines at least as many subgroups.
        let count = |s: &str| {
            s.lines()
                .find(|l| l.contains("subgroups above support"))
                .and_then(|l| l.split_whitespace().next()?.parse::<usize>().ok())
                .unwrap()
        };
        assert!(count(&hier) >= count(&base));
    }

    #[test]
    fn discretize_prints_trees() {
        let path = write_fixture();
        let out = run_args(&["discretize", &path]).unwrap();
        assert!(out.contains("== x =="));
        assert!(out.contains("root"));
        // Restricting to a categorical/unknown attr errors.
        assert!(run_args(&["discretize", &path, "--attr", "nope"]).is_err());
    }

    #[test]
    fn baselines_all_three_sections() {
        let path = write_fixture();
        let out = run_args(&["baselines", &path]).unwrap();
        assert!(out.contains("== Slice Finder =="));
        assert!(out.contains("== SliceLine =="));
        assert!(out.contains("== Combined tree =="));
    }

    #[test]
    fn generate_then_explore_roundtrip() {
        let path = tmp("compas.csv");
        let out = run_args(&["generate", "compas", "--rows", "800", "--out", &path]).unwrap();
        assert!(out.contains("800 rows"));
        let report = run_args(&["explore", &path, "--stat", "fpr", "-s", "0.05"]).unwrap();
        assert!(report.contains("#prior"), "report:\n{report}");
    }

    #[test]
    fn generate_target_dataset() {
        let path = tmp("folk.csv");
        run_args(&["generate", "folktables", "--rows", "500", "--out", &path]).unwrap();
        let report = run_args(&[
            "explore",
            &path,
            "--stat",
            "target",
            "--target-col",
            "target",
            "-s",
            "0.1",
        ])
        .unwrap();
        assert!(report.contains("global statistic"));
    }

    #[test]
    fn label_errors_are_clear() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "x,y_true,y_pred\n1,true,maybe\n").unwrap();
        let err = run_args(&["explore", &path]).unwrap_err();
        assert!(err.0.contains("not boolean"), "{err}");
        let err2 = run_args(&["explore", "/nonexistent/file.csv"]).unwrap_err();
        assert!(err2.0.contains("cannot read"));
        let err3 = run_args(&["explore", &path, "--stat", "target"]).unwrap_err();
        assert!(err3.0.contains("--target-col"));
    }

    /// Parses the `N subgroups above support` line of a report.
    fn count_subgroups(text: &str) -> u64 {
        text.lines()
            .find(|l| l.contains("subgroups above support"))
            .and_then(|l| l.split_whitespace().next()?.parse().ok())
            .unwrap()
    }

    #[test]
    fn checkpointed_explore_then_resume_matches_uninterrupted() {
        let path = write_fixture();
        let ckpt = tmp("ckpt-resume");
        let _ = std::fs::remove_dir_all(&ckpt);
        let full = run_full(&["explore", &path, "-s", "0.05"]).unwrap();
        assert!(full.partial.is_none());
        // Trip the budget two itemsets short of completion, mid-mining.
        let cap = (count_subgroups(&full.text) - 2).to_string();
        let capped = run_full(&[
            "explore",
            &path,
            "-s",
            "0.05",
            "--checkpoint-dir",
            &ckpt,
            "--max-itemsets",
            &cap,
        ])
        .unwrap();
        assert!(capped.partial.is_some(), "capped run is partial");
        assert!(std::path::Path::new(&ckpt).join("manifest.hdx").exists());
        assert!(
            capped
                .notes
                .iter()
                .any(|n| n.contains("checkpoint(s) written")),
            "notes: {:?}",
            capped.notes
        );
        // The resumed run (no budget of its own) completes and its report is
        // byte-identical to the uninterrupted one.
        let resumed = run_full(&["resume", &ckpt]).unwrap();
        assert!(resumed.partial.is_none(), "notes: {:?}", resumed.notes);
        assert!(
            resumed
                .notes
                .iter()
                .any(|n| n.contains("resumed from checkpoint")),
            "notes: {:?}",
            resumed.notes
        );
        assert_eq!(resumed.text, full.text);
    }

    #[test]
    fn resume_rejects_an_edited_dataset() {
        let path = write_fixture_at("fixture-edit.csv");
        let ckpt = tmp("ckpt-edit");
        let _ = std::fs::remove_dir_all(&ckpt);
        let full = run_full(&["explore", &path, "-s", "0.05"]).unwrap();
        let cap = (count_subgroups(&full.text) - 2).to_string();
        run_full(&[
            "explore",
            &path,
            "-s",
            "0.05",
            "--checkpoint-dir",
            &ckpt,
            "--max-itemsets",
            &cap,
        ])
        .unwrap();
        // Grow the dataset by one row: the fingerprint no longer matches.
        let mut csv = std::fs::read_to_string(&path).unwrap();
        csv.push_str("99,a,true,true\n");
        std::fs::write(&path, csv).unwrap();
        let err = run_full(&["resume", &ckpt]).unwrap_err();
        assert!(err.0.contains("dataset fingerprint mismatch"), "{err}");
    }

    #[test]
    fn dirty_csv_cells_are_quarantined_with_a_note() {
        let src = write_fixture();
        let path = tmp("dirty.csv");
        let mut csv = std::fs::read_to_string(&src).unwrap();
        csv.push_str("NaN,b,true,true\ninf,a,true,true\n");
        std::fs::write(&path, csv).unwrap();
        let out = run_full(&["explore", &path, "-s", "0.05"]).unwrap();
        assert!(out.partial.is_none());
        assert!(
            out.notes
                .iter()
                .any(|n| n.contains("ingestion quarantine") && n.contains("2×x")),
            "notes: {:?}",
            out.notes
        );
        assert!(out.text.contains("402 rows"), "text:\n{}", out.text);
    }

    #[test]
    fn resume_without_a_manifest_errors() {
        let dir = tmp("ckpt-empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_full(&["resume", &dir]).unwrap_err();
        assert!(err.0.contains("manifest.hdx"), "{err}");
        // A damaged manifest is rejected by the envelope, not mis-decoded.
        std::fs::write(std::path::Path::new(&dir).join("manifest.hdx"), b"junk").unwrap();
        let err = run_full(&["resume", &dir]).unwrap_err();
        assert!(err.0.contains("checkpoint"), "{err}");
    }

    #[test]
    fn budgeted_explore_reports_partial() {
        let path = write_fixture();
        // A complete run is not partial.
        let full = run_full(&["explore", &path]).unwrap();
        assert!(full.partial.is_none());
        // An itemset cap produces partial results, flagged for exit code 3.
        let capped = run_full(&["explore", &path, "-s", "0.01", "--max-itemsets", "3"]).unwrap();
        let reason = capped.partial.as_deref().expect("capped run is partial");
        assert!(reason.contains("budget exhausted"), "reason: {reason}");
        assert!(capped.text.contains("PARTIAL RESULTS"));
        assert!(
            capped.text.contains("3 subgroups"),
            "text:\n{}",
            capped.text
        );
        // JSON mode carries the verdict in-band.
        let json = run_full(&[
            "explore",
            &path,
            "-s",
            "0.01",
            "--max-itemsets",
            "3",
            "--json",
        ])
        .unwrap();
        assert!(json.partial.is_some());
        assert!(json.text.contains("\"termination\":\"budget_exhausted\""));
        assert!(json.text.contains("\"partial\":true"));
    }

    #[test]
    fn zero_timeout_still_produces_a_report() {
        let path = write_fixture();
        let out = run_full(&["explore", &path, "--timeout", "0ms"]).unwrap();
        let reason = out.partial.as_deref().expect("zero timeout is partial");
        assert!(reason.contains("timed out"), "reason: {reason}");
        assert!(out.text.contains("0 subgroups"), "text:\n{}", out.text);
    }

    #[test]
    fn adaptive_support_coarsens_instead_of_truncating() {
        let path = write_fixture();
        let out = run_full(&[
            "explore",
            &path,
            "-s",
            "0.01",
            "--max-itemsets",
            "6",
            "--adaptive-support",
        ])
        .unwrap();
        // Either the coarser retry completes (no partial flag) or the budget
        // still trips at the support ceiling — both must mention adaptation.
        match &out.partial {
            None => assert!(out.text.contains("adaptive support"), "{}", out.text),
            Some(reason) => assert!(reason.contains("budget exhausted"), "{reason}"),
        }
    }

    #[test]
    fn metrics_out_writes_validatable_telemetry() {
        let path = write_fixture();
        let metrics = tmp("metrics.json");
        let out = run_full(&[
            "explore",
            &path,
            "--metrics-out",
            &metrics,
            "--trace-summary",
        ])
        .unwrap();
        let summary = out.trace_summary.as_deref().expect("summary requested");
        assert!(!summary.is_empty());
        let raw = std::fs::read_to_string(&metrics).unwrap();
        let t = hdx_core::obs::RunTelemetry::from_json(&raw).unwrap();
        t.validate().unwrap();
        // The subcommand agrees.
        let verdict = run_args(&["validate-telemetry", &metrics]).unwrap();
        assert!(verdict.contains("valid"), "{verdict}");
        #[cfg(feature = "obs")]
        {
            t.validate_stages(&["discretize", "mine", "explore"])
                .unwrap();
            assert!(t.counter_named("hdx.mining.candidates.generated") > 0);
            assert!(t.counter_named("hdx.mining.itemsets.emitted") > 0);
            assert!(t.counter_named("hdx.discretize.split.accepted") > 0);
        }
        #[cfg(not(feature = "obs"))]
        assert!(t.spans.is_empty(), "disabled builds record nothing");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn pruning_counters_reach_the_artifact() {
        let path = write_fixture();
        let metrics = tmp("metrics-pruning.json");
        // s = 0.2 prunes the 0.1-support tree leaves at level 1; polarity
        // pruning drops the sign-mismatched items from each polarity run.
        run_full(&[
            "explore",
            &path,
            "-s",
            "0.2",
            "--polarity",
            "--metrics-out",
            &metrics,
        ])
        .unwrap();
        let verdict = run_args(&[
            "validate-telemetry",
            &metrics,
            "--require-stage",
            "discretize",
            "--require-stage",
            "mine",
            "--require-stage",
            "explore",
            "--require-counter",
            "hdx.mining.candidates.pruned_support",
            "--require-counter",
            "hdx.core.polarity.pruned_items",
        ])
        .unwrap();
        assert!(verdict.contains("valid"), "{verdict}");
        // A check the artifact cannot satisfy fails.
        assert!(run_args(&[
            "validate-telemetry",
            &metrics,
            "--require-counter",
            "hdx.governor.trip.cancelled",
        ])
        .is_err());
    }

    #[test]
    fn partial_run_still_flushes_telemetry() {
        let path = write_fixture();
        let metrics = tmp("metrics-partial.json");
        let out = run_full(&[
            "explore",
            &path,
            "-s",
            "0.01",
            "--max-itemsets",
            "3",
            "--metrics-out",
            &metrics,
        ])
        .unwrap();
        assert!(out.partial.is_some(), "capped run is partial");
        let raw = std::fs::read_to_string(&metrics).unwrap();
        let t = hdx_core::obs::RunTelemetry::from_json(&raw).unwrap();
        t.validate().unwrap();
        #[cfg(feature = "obs")]
        assert!(t.counter_named("hdx.governor.trip.budget_exhausted") > 0);
    }

    #[test]
    fn validate_telemetry_rejects_garbage() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{\"schema\": \"bogus\"}").unwrap();
        assert!(run_args(&["validate-telemetry", &path]).is_err());
        assert!(run_args(&["validate-telemetry", "/nonexistent.json"]).is_err());
    }

    #[test]
    fn validate_metrics_accepts_expositions_and_rejects_garbage() {
        // A page rendered the same way `GET /metrics` renders one.
        let mut page = hdx_core::obs::expo::Exposition::new();
        hdx_core::obs::expo::render_registry(&mut page, &hdx_core::obs::RunTelemetry::empty());
        let good = tmp("scrape.prom");
        std::fs::write(&good, page.finish()).unwrap();
        let verdict = run_args(&["validate-metrics", &good]).unwrap();
        assert!(verdict.contains("valid exposition"), "{verdict}");

        let bad = tmp("scrape-bad.prom");
        std::fs::write(&bad, "# TYPE x counter\nx{oops 1\n").unwrap();
        assert!(run_args(&["validate-metrics", &bad]).is_err());
        assert!(run_args(&["validate-metrics", "/nonexistent.prom"]).is_err());
    }

    #[test]
    fn describe_summarises() {
        let path = write_fixture();
        let out = run_args(&["describe", &path]).unwrap();
        assert!(out.contains("400 rows"));
        assert!(out.contains("categorical"));
        assert!(out.contains("continuous"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }
}
