//! The `hdx` binary: parse, run, print.
//!
//! Exit codes: 0 = success, 2 = error, 3 = success with **partial results**
//! (a deadline, budget or cancellation tripped; the printed subgroups are a
//! valid subset of the full answer).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hdx_cli::parse(args).and_then(hdx_cli::run) {
        Ok(output) => {
            print!("{}", output.text);
            for note in &output.notes {
                eprintln!("hdx: {note}");
            }
            if let Some(summary) = &output.trace_summary {
                eprint!("{summary}");
            }
            match output.partial {
                None => ExitCode::SUCCESS,
                Some(reason) => {
                    eprintln!("hdx: partial results ({reason})");
                    ExitCode::from(3)
                }
            }
        }
        Err(e) => {
            eprintln!("hdx: {e}");
            eprintln!("run `hdx help` for usage");
            ExitCode::from(2)
        }
    }
}
