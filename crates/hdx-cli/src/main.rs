//! The `hdx` binary: parse, run, print (or fail with exit code 2).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hdx_cli::parse(args).and_then(hdx_cli::run) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hdx: {e}");
            eprintln!("run `hdx help` for usage");
            ExitCode::from(2)
        }
    }
}
