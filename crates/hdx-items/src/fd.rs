//! Functional-dependency-derived taxonomies (§IV-B of the paper, following
//! the TANE line of work it cites).
//!
//! When a categorical attribute `A` functionally determines another
//! categorical attribute `B` (every `A`-level always co-occurs with the same
//! `B`-level — a city determines its state), `B`'s levels act as
//! generalizations of `A`'s: the taxonomy groups each `A`-level under its
//! `B`-level. [`fd_taxonomy`] derives that taxonomy from data, tolerating a
//! configurable fraction of violating rows (approximate FDs), and
//! [`discover_fd_taxonomies`] scans a whole frame for usable dependencies.

use std::collections::HashMap;

use hdx_data::{CategoricalColumn, DataFrame, NULL_CODE};

use crate::taxonomy::Taxonomy;

/// Derives a taxonomy for the `child` attribute from the (approximate)
/// functional dependency `child → parent`.
///
/// Each child level is grouped under the parent level it most frequently
/// co-occurs with. Returns `None` when:
///
/// * the violation rate (rows whose parent level differs from their child
///   level's majority parent) exceeds `tolerance`;
/// * the dependency is trivial — fewer than two distinct groups, or no
///   group merging at all (as many groups as child levels).
///
/// # Panics
/// Panics when the columns differ in length or `tolerance` is outside
/// `[0, 1)`.
pub fn fd_taxonomy(
    child: &CategoricalColumn,
    parent: &CategoricalColumn,
    tolerance: f64,
) -> Option<Taxonomy> {
    assert_eq!(child.len(), parent.len(), "columns must be parallel");
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be in [0, 1)"
    );
    // Co-occurrence counts child code → (parent code → rows).
    let mut cooc: HashMap<u32, HashMap<u32, usize>> = HashMap::new();
    let mut total = 0usize;
    for row in 0..child.len() {
        let c = child.code(row);
        let p = parent.code(row);
        if c == NULL_CODE || p == NULL_CODE {
            continue;
        }
        *cooc.entry(c).or_default().entry(p).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return None;
    }

    let mut taxonomy = Taxonomy::new();
    let mut violations = 0usize;
    let mut groups: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut n_children = 0usize;
    for (c, parents) in &cooc {
        let (&majority, &count) = parents
            .iter()
            .max_by_key(|&(_, &n)| n)
            .expect("non-empty co-occurrence");
        violations += parents.values().sum::<usize>() - count;
        groups.insert(majority);
        n_children += 1;
        taxonomy.set_group(child.level(*c), parent.level(majority));
    }
    let error = violations as f64 / total as f64;
    if error > tolerance {
        return None;
    }
    // Trivial taxonomies carry no generalization power.
    if groups.len() < 2 || groups.len() >= n_children {
        return None;
    }
    Some(taxonomy)
}

/// Scans every ordered pair of categorical attributes of `df` for usable
/// functional dependencies and returns, per child attribute, the taxonomy of
/// its *most compressing* parent (fewest groups).
///
/// Returns `(child attribute name, taxonomy)` pairs.
pub fn discover_fd_taxonomies(df: &DataFrame, tolerance: f64) -> Vec<(String, Taxonomy)> {
    let cats = df.schema().categorical_ids();
    let mut out = Vec::new();
    for &child_attr in &cats {
        let child = df.categorical(child_attr);
        let mut best: Option<(usize, Taxonomy)> = None;
        for &parent_attr in &cats {
            if parent_attr == child_attr {
                continue;
            }
            let parent = df.categorical(parent_attr);
            if parent.n_levels() >= child.n_levels() {
                continue; // cannot compress
            }
            if let Some(tax) = fd_taxonomy(child, parent, tolerance) {
                let n_groups = parent.n_levels();
                if best.as_ref().is_none_or(|(g, _)| n_groups < *g) {
                    best = Some((n_groups, tax));
                }
            }
        }
        if let Some((_, tax)) = best {
            out.push((df.schema().name(child_attr).to_string(), tax));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};

    fn columns(pairs: &[(&str, &str)]) -> (CategoricalColumn, CategoricalColumn) {
        let child = CategoricalColumn::from_values(pairs.iter().map(|p| p.0));
        let parent = CategoricalColumn::from_values(pairs.iter().map(|p| p.1));
        (child, parent)
    }

    #[test]
    fn exact_fd_yields_taxonomy() {
        let (city, state) = columns(&[
            ("sf", "CA"),
            ("la", "CA"),
            ("nyc", "NY"),
            ("sf", "CA"),
            ("buffalo", "NY"),
        ]);
        let tax = fd_taxonomy(&city, &state, 0.0).expect("exact FD");
        assert_eq!(tax.path("sf"), &["CA".to_string()]);
        assert_eq!(tax.path("la"), &["CA".to_string()]);
        assert_eq!(tax.path("nyc"), &["NY".to_string()]);
    }

    #[test]
    fn violations_respect_tolerance() {
        // One dirty row: sf → NY.
        let (city, state) = columns(&[
            ("sf", "CA"),
            ("sf", "CA"),
            ("sf", "CA"),
            ("sf", "NY"),
            ("la", "CA"),
            ("nyc", "NY"),
            ("buffalo", "NY"),
            ("nyc", "NY"),
        ]);
        assert!(fd_taxonomy(&city, &state, 0.0).is_none(), "strict fails");
        let tax = fd_taxonomy(&city, &state, 0.2).expect("approximate FD holds");
        assert_eq!(tax.path("sf"), &["CA".to_string()], "majority wins");
    }

    #[test]
    fn trivial_dependencies_rejected() {
        // Single parent level: no generalization power.
        let (child, constant) = columns(&[("a", "x"), ("b", "x"), ("c", "x")]);
        assert!(fd_taxonomy(&child, &constant, 0.0).is_none());
        // Bijection: as many groups as levels.
        let (child2, mirror) = columns(&[("a", "1"), ("b", "2"), ("c", "3")]);
        assert!(fd_taxonomy(&child2, &mirror, 0.0).is_none());
    }

    #[test]
    fn nulls_are_ignored() {
        let mut city = CategoricalColumn::new();
        let mut state = CategoricalColumn::new();
        for (c, s) in [
            ("sf", Some("CA")),
            ("la", Some("CA")),
            ("nyc", Some("NY")),
            ("reno", Some("NV")),
        ] {
            city.push(c);
            match s {
                Some(s) => state.push(s),
                None => state.push_null(),
            }
        }
        city.push_null();
        state.push("CA");
        let tax = fd_taxonomy(&city, &state, 0.0).expect("FD over non-null rows");
        assert_eq!(tax.path("sf"), &["CA".to_string()]);
    }

    #[test]
    fn discovery_picks_most_compressing_parent() {
        let mut b = DataFrameBuilder::new();
        b.add_categorical("city").unwrap();
        b.add_categorical("state").unwrap();
        b.add_categorical("coast").unwrap();
        for (city, state, coast) in [
            ("sf", "CA", "west"),
            ("la", "CA", "west"),
            ("seattle", "WA", "west"),
            ("nyc", "NY", "east"),
            ("boston", "MA", "east"),
            ("buffalo", "NY", "east"),
        ] {
            b.push_row(vec![
                Value::Cat(city.into()),
                Value::Cat(state.into()),
                Value::Cat(coast.into()),
            ])
            .unwrap();
        }
        let df = b.finish();
        let found = discover_fd_taxonomies(&df, 0.0);
        // city → coast (2 groups) beats city → state (4 groups);
        // state → coast also discovered.
        let city_tax = found
            .iter()
            .find(|(name, _)| name == "city")
            .map(|(_, t)| t)
            .expect("city taxonomy discovered");
        assert_eq!(city_tax.path("sf"), &["west".to_string()]);
        let state_tax = found
            .iter()
            .find(|(name, _)| name == "state")
            .map(|(_, t)| t)
            .expect("state taxonomy discovered");
        assert_eq!(state_tax.path("NY"), &["east".to_string()]);
        // coast has no valid parent.
        assert!(!found.iter().any(|(name, _)| name == "coast"));
    }

    #[test]
    fn all_null_columns_yield_none() {
        let mut a = CategoricalColumn::new();
        let mut b = CategoricalColumn::new();
        for _ in 0..4 {
            a.push_null();
            b.push_null();
        }
        assert!(fd_taxonomy(&a, &b, 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn length_mismatch_panics() {
        let a = CategoricalColumn::from_values(["x"]);
        let b = CategoricalColumn::from_values(["y", "z"]);
        let _ = fd_taxonomy(&a, &b, 0.0);
    }
}
