//! Item covers: mapping items to the rows that satisfy them (`D_α`).

use hdx_data::{AttributeKind, DataFrame};

use crate::bitset::Bitset;
use crate::catalog::{ItemCatalog, ItemId};
use crate::item::Predicate;

/// Whether row `row` of `df` satisfies item `item` (`x |= α`).
///
/// Null cells never satisfy an item.
///
/// # Panics
/// Panics when the item's predicate kind contradicts the attribute kind
/// (catalog built against a different schema).
pub fn item_matches(df: &DataFrame, catalog: &ItemCatalog, item: ItemId, row: usize) -> bool {
    let it = catalog.item(item);
    let attr = it.attr();
    match (df.schema().kind(attr), it.predicate()) {
        (AttributeKind::Categorical, Predicate::CatEq(_) | Predicate::CatIn(_)) => {
            let col = df.categorical(attr);
            let code = col.code(row);
            code != hdx_data::NULL_CODE && it.predicate().matches_code(code)
        }
        (AttributeKind::Continuous, Predicate::Range(j)) => {
            let v = df.continuous(attr).values()[row];
            j.contains(v)
        }
        _ => panic!(
            "item `{}` predicate kind does not match attribute kind",
            it.label()
        ),
    }
}

/// The cover bitset of `item` over all rows of `df`.
pub fn item_cover(df: &DataFrame, catalog: &ItemCatalog, item: ItemId) -> Bitset {
    let it = catalog.item(item);
    let attr = it.attr();
    let n = df.n_rows();
    let mut bits = Bitset::new(n);
    match (df.schema().kind(attr), it.predicate()) {
        (AttributeKind::Categorical, Predicate::CatEq(code)) => {
            // Specialised fast path: direct code comparison.
            for (row, &c) in df.categorical(attr).codes().iter().enumerate() {
                if c == *code {
                    bits.set(row);
                }
            }
        }
        (AttributeKind::Categorical, Predicate::CatIn(codes)) => {
            for (row, &c) in df.categorical(attr).codes().iter().enumerate() {
                if c != hdx_data::NULL_CODE && codes.binary_search(&c).is_ok() {
                    bits.set(row);
                }
            }
        }
        (AttributeKind::Continuous, Predicate::Range(j)) => {
            for (row, &v) in df.continuous(attr).values().iter().enumerate() {
                if j.contains(v) {
                    bits.set(row);
                }
            }
        }
        _ => panic!(
            "item `{}` predicate kind does not match attribute kind",
            it.label()
        ),
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::item::Item;
    use hdx_data::{DataFrameBuilder, Value};

    fn frame() -> DataFrame {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("age").unwrap();
        b.add_categorical("sex").unwrap();
        for (age, sex) in [
            (Some(20.0), Some("M")),
            (Some(30.0), Some("F")),
            (None, Some("F")),
            (Some(40.0), None),
        ] {
            b.push_row(vec![
                age.map_or(Value::Null, Value::Num),
                sex.map_or(Value::Null, |s| Value::Cat(s.into())),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn range_cover_skips_nulls() {
        let df = frame();
        let mut c = ItemCatalog::new();
        let age = df.schema().id("age").unwrap();
        let item = c.intern(Item::range(age, Interval::greater_than(25.0), "age"));
        let cover = item_cover(&df, &c, item);
        assert_eq!(cover.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!item_matches(&df, &c, item, 2), "null age never matches");
        assert!(item_matches(&df, &c, item, 3));
    }

    #[test]
    fn cat_eq_cover_skips_nulls() {
        let df = frame();
        let mut c = ItemCatalog::new();
        let sex = df.schema().id("sex").unwrap();
        let code = df.categorical(sex).code_of("F").unwrap();
        let item = c.intern(Item::cat_eq(sex, code, "sex", "F"));
        let cover = item_cover(&df, &c, item);
        assert_eq!(cover.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
        assert!(!item_matches(&df, &c, item, 3), "null sex never matches");
    }

    #[test]
    fn cat_in_cover() {
        let df = frame();
        let mut c = ItemCatalog::new();
        let sex = df.schema().id("sex").unwrap();
        let m = df.categorical(sex).code_of("M").unwrap();
        let f = df.categorical(sex).code_of("F").unwrap();
        let item = c.intern(Item::cat_in(sex, vec![m, f], "sex", "any"));
        let cover = item_cover(&df, &c, item);
        assert_eq!(cover.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn matches_agrees_with_cover() {
        let df = frame();
        let mut c = ItemCatalog::new();
        let age = df.schema().id("age").unwrap();
        let sex = df.schema().id("sex").unwrap();
        let items = vec![
            c.intern(Item::range(age, Interval::at_most(25.0), "age")),
            c.intern(Item::range(age, Interval::new(25.0, 35.0), "age")),
            c.intern(Item::cat_eq(sex, 0, "sex", "M")),
        ];
        for item in items {
            let cover = item_cover(&df, &c, item);
            for row in 0..df.n_rows() {
                assert_eq!(cover.get(row), item_matches(&df, &c, item, row));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match attribute kind")]
    fn kind_mismatch_panics() {
        let df = frame();
        let mut c = ItemCatalog::new();
        let sex = df.schema().id("sex").unwrap();
        let item = c.intern(Item::range(sex, Interval::at_most(1.0), "sex"));
        let _ = item_cover(&df, &c, item);
    }
}
