//! # hdx-items
//!
//! Item model for (hierarchical) subgroup discovery, following §III-A and
//! §IV of the paper:
//!
//! * an [`Item`] is a constraint on one attribute — `A = a` for categorical
//!   attributes ([`Predicate::CatEq`]), `A ∈ {a₁, …}` for *generalized*
//!   categorical items ([`Predicate::CatIn`]), or `A ∈ J` for an interval `J`
//!   ([`Predicate::Range`]);
//! * items are interned in an [`ItemCatalog`] and referenced by dense
//!   [`ItemId`]s throughout the pipeline;
//! * an [`Itemset`] is a set of items with **at most one item per
//!   attribute** (definition of itemsets over `I`, §III-A);
//! * an [`ItemHierarchy`] is the per-attribute refinement forest `(I_A, ≻_A)`
//!   of Definition 4.1, and a [`HierarchySet`] is the hierarchical
//!   discretization `Γ` of the whole dataset;
//! * [`Bitset`] / cover computation maps items to the rows that satisfy them;
//! * [`Taxonomy`] builds categorical hierarchies from user-supplied
//!   `level → ancestor path` mappings (e.g. occupation → super-category);
//! * [`fd_taxonomy`] / [`discover_fd_taxonomies`] derive taxonomies
//!   automatically from (approximate) functional dependencies between
//!   categorical attributes (§IV-B).

/// Runtime validators for itemset well-formedness (canonical order, one
/// item per attribute).
pub mod invariants;

mod bitset;
mod catalog;
mod cover;
mod fd;
mod hierarchy;
mod interval;
mod item;
mod itemset;
mod taxonomy;

pub use bitset::Bitset;
pub use catalog::{ItemCatalog, ItemId};
pub use cover::{item_cover, item_matches};
pub use fd::{discover_fd_taxonomies, fd_taxonomy};
pub use hierarchy::{HierarchySet, ItemHierarchy};
pub use interval::Interval;
pub use item::{Item, Predicate};
pub use itemset::Itemset;
pub use taxonomy::Taxonomy;
