//! Categorical taxonomies: user-defined hierarchies over attribute levels.
//!
//! Following §V-A ("Hierarchies for Categorical Attributes"), a categorical
//! attribute keeps its plain `A = a` items and gains generalized items
//! `A ∈ G` for each taxonomy group `G` (e.g. the IP-prefix items
//! `118.114.119`, `118.114`, `118`, or the occupation super-category `MGR`).

use std::collections::HashMap;

use hdx_data::{AttrId, CategoricalColumn};

use crate::catalog::{ItemCatalog, ItemId};
use crate::hierarchy::ItemHierarchy;
use crate::item::Item;

/// A taxonomy over the levels of one categorical attribute.
///
/// Each level may declare an *ancestor path*, nearest group first (e.g. the
/// IP `118.114.119.88` declares `["118.114.119", "118.114", "118"]`). Levels
/// sharing a group prefix are siblings under that group. Levels without a
/// path become hierarchy roots on their own.
#[derive(Debug, Clone, Default)]
pub struct Taxonomy {
    /// level name → ancestor group names, nearest first.
    paths: HashMap<String, Vec<String>>,
}

impl Taxonomy {
    /// Creates an empty taxonomy (all levels are roots).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the ancestor path of a level, nearest group first.
    pub fn set_path<S: Into<String>>(
        &mut self,
        level: impl Into<String>,
        ancestors: impl IntoIterator<Item = S>,
    ) -> &mut Self {
        self.paths.insert(
            level.into(),
            ancestors.into_iter().map(Into::into).collect(),
        );
        self
    }

    /// Convenience: one-level grouping `level → group`.
    pub fn set_group(&mut self, level: impl Into<String>, group: impl Into<String>) -> &mut Self {
        self.set_path(level, [group.into()])
    }

    /// Builds a taxonomy where each level's groups are derived by splitting
    /// the level name on `separator` and truncating (IP-address style):
    /// `a.b.c` → groups `a.b`, `a`.
    pub fn from_separator(levels: &[String], separator: char) -> Self {
        let mut t = Self::new();
        for level in levels {
            let parts: Vec<&str> = level.split(separator).collect();
            if parts.len() < 2 {
                continue;
            }
            let mut ancestors = Vec::with_capacity(parts.len() - 1);
            for take in (1..parts.len()).rev() {
                ancestors.push(parts[..take].join(&separator.to_string()));
            }
            t.set_path(level.clone(), ancestors);
        }
        t
    }

    /// The declared ancestor path of `level` (empty when undeclared).
    pub fn path(&self, level: &str) -> &[String] {
        self.paths.get(level).map_or(&[], Vec::as_slice)
    }

    /// Materialises the taxonomy into items and an [`ItemHierarchy`] for
    /// `attr`, given the attribute's column (for its dictionary).
    ///
    /// Every level yields a leaf `A = a` item; every group yields a
    /// generalized `A ∈ G` item covering the codes of all levels below it.
    ///
    /// # Panics
    /// Panics when two levels disagree on a shared group's ancestors (a
    /// malformed taxonomy, e.g. `x → [G, H]` but `y → [G, K]`).
    pub fn build(
        &self,
        attr: AttrId,
        attr_name: &str,
        column: &CategoricalColumn,
        catalog: &mut ItemCatalog,
    ) -> ItemHierarchy {
        // Collect, for every group name, its member codes and its own
        // ancestor path (derived from member paths).
        let mut group_codes: HashMap<String, Vec<u32>> = HashMap::new();
        let mut group_parents: HashMap<String, Option<String>> = HashMap::new();
        for (code, level) in column.levels().iter().enumerate() {
            let path = self.path(level);
            for (i, group) in path.iter().enumerate() {
                group_codes
                    .entry(group.clone())
                    .or_default()
                    .push(code as u32);
                let parent = path.get(i + 1).cloned();
                match group_parents.get(group) {
                    None => {
                        group_parents.insert(group.clone(), parent);
                    }
                    Some(existing) => assert_eq!(
                        existing, &parent,
                        "taxonomy group `{group}` has inconsistent ancestors"
                    ),
                }
            }
        }

        let mut hierarchy = ItemHierarchy::new(attr);
        // Intern group items top-down so parents exist before children.
        let mut group_ids: HashMap<String, ItemId> = HashMap::new();
        let mut pending: Vec<String> = group_codes.keys().cloned().collect();
        pending.sort(); // deterministic order
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|group| {
                let parent = group_parents[group].clone();
                match parent {
                    None => {
                        let id = catalog.intern(Item::cat_in(
                            attr,
                            group_codes[group].clone(),
                            attr_name,
                            group,
                        ));
                        hierarchy.add_root(id);
                        group_ids.insert(group.clone(), id);
                        false
                    }
                    Some(p) => {
                        if let Some(&pid) = group_ids.get(&p) {
                            let id = catalog.intern(Item::cat_in(
                                attr,
                                group_codes[group].clone(),
                                attr_name,
                                group,
                            ));
                            hierarchy.add_child(pid, id);
                            group_ids.insert(group.clone(), id);
                            false
                        } else {
                            true // parent not built yet, retry next round
                        }
                    }
                }
            });
            assert!(
                pending.len() < before,
                "taxonomy contains a group cycle: {pending:?}"
            );
        }

        // Leaves: one CatEq item per level, attached under its nearest group
        // (or as a root when ungrouped).
        for (code, level) in column.levels().iter().enumerate() {
            let id = catalog.intern(Item::cat_eq(attr, code as u32, attr_name, level));
            match self.path(level).first() {
                Some(group) => hierarchy.add_child(group_ids[group], id),
                None => hierarchy.add_root(id),
            }
        }
        hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Predicate;

    fn occupation_column() -> CategoricalColumn {
        CategoricalColumn::from_values([
            "MGR-Sales",
            "MGR-Financial",
            "MED-Dentists",
            "Unemployed",
            "MGR-Sales",
        ])
    }

    #[test]
    fn one_level_grouping() {
        let col = occupation_column();
        let mut tax = Taxonomy::new();
        tax.set_group("MGR-Sales", "MGR")
            .set_group("MGR-Financial", "MGR")
            .set_group("MED-Dentists", "MED");
        let mut catalog = ItemCatalog::new();
        let h = tax.build(AttrId(0), "occp", &col, &mut catalog);

        // Groups MGR, MED are roots; Unemployed is an ungrouped root leaf.
        assert_eq!(h.roots().len(), 3);
        let mgr = catalog.find_by_label("occp=MGR").unwrap();
        assert_eq!(h.children(mgr).len(), 2);
        let sales = catalog.find_by_label("occp=MGR-Sales").unwrap();
        assert_eq!(h.parent(sales), Some(mgr));
        assert!(h.is_leaf(sales));

        // The MGR item covers both MGR level codes.
        match catalog.item(mgr).predicate() {
            Predicate::CatIn(codes) => {
                let sales_code = col.code_of("MGR-Sales").unwrap();
                let fin_code = col.code_of("MGR-Financial").unwrap();
                let mut expected = [sales_code, fin_code];
                expected.sort_unstable();
                assert_eq!(&codes[..], &expected[..]);
            }
            _ => panic!("group item should be CatIn"),
        }
    }

    #[test]
    fn separator_taxonomy_ip_style() {
        let levels: Vec<String> = vec![
            "118.114.119".into(),
            "118.114.200".into(),
            "118.115.1".into(),
            "7.7.7".into(),
        ];
        let tax = Taxonomy::from_separator(&levels, '.');
        assert_eq!(
            tax.path("118.114.119"),
            &["118.114".to_string(), "118".into()]
        );
        let col = CategoricalColumn::from_values(levels.iter().map(String::as_str));
        let mut catalog = ItemCatalog::new();
        let h = tax.build(AttrId(0), "ip", &col, &mut catalog);
        let top = catalog.find_by_label("ip=118").unwrap();
        let mid = catalog.find_by_label("ip=118.114").unwrap();
        let leaf = catalog.find_by_label("ip=118.114.119").unwrap();
        assert!(h.roots().contains(&top));
        assert_eq!(h.parent(mid), Some(top));
        assert_eq!(h.parent(leaf), Some(mid));
        assert_eq!(h.depth(leaf), 2);
        // Two mid groups under 118.
        assert_eq!(h.children(top).len(), 2);
    }

    #[test]
    fn empty_taxonomy_gives_flat_hierarchy() {
        let col = occupation_column();
        let tax = Taxonomy::new();
        let mut catalog = ItemCatalog::new();
        let h = tax.build(AttrId(0), "occp", &col, &mut catalog);
        assert_eq!(h.roots().len(), col.n_levels());
        assert_eq!(h.leaves().len(), col.n_levels());
        assert!(h.items().iter().all(|&i| h.is_leaf(i)));
    }

    #[test]
    #[should_panic(expected = "inconsistent ancestors")]
    fn inconsistent_group_parents_rejected() {
        let col = CategoricalColumn::from_values(["a", "b"]);
        let mut tax = Taxonomy::new();
        tax.set_path("a", ["G", "H"]);
        tax.set_path("b", ["G", "K"]);
        let mut catalog = ItemCatalog::new();
        let _ = tax.build(AttrId(0), "x", &col, &mut catalog);
    }
}
