//! Runtime validators for the itemset invariants (paper §III-A).
//!
//! The validators are always compiled — tests call them directly in any
//! build — and return typed violations instead of panicking, so negative
//! tests can assert on the exact failure. The `debug-invariants` cargo
//! feature additionally wires [`assert_canonical_order`] into
//! [`Itemset::from_sorted_unchecked`], turning every unchecked construction
//! site in the miners into a checked one.

use std::fmt;

use crate::catalog::{ItemCatalog, ItemId};
use crate::itemset::Itemset;

/// A violated itemset invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Two member items constrain the same attribute (breaks the
    /// one-item-per-attribute rule, which also subsumes the generalized
    /// mining rule that an item never co-occurs with its own ancestor).
    DuplicateAttribute {
        /// The offending itemset's members.
        items: Vec<ItemId>,
        /// First item of the clashing pair.
        first: ItemId,
        /// Second item of the clashing pair (same attribute as `first`).
        second: ItemId,
    },
    /// Items are not in strictly ascending [`ItemId`] order (canonical
    /// form: sorted, duplicate-free).
    NotCanonical {
        /// The offending item sequence.
        items: Vec<ItemId>,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::DuplicateAttribute {
                items,
                first,
                second,
            } => write!(
                f,
                "itemset {items:?} holds two items of one attribute ({first:?}, {second:?})"
            ),
            InvariantViolation::NotCanonical { items } => {
                write!(f, "itemset {items:?} is not sorted/duplicate-free")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Validates canonical order: item ids strictly ascending (sorted and
/// duplicate-free).
pub fn validate_canonical_order(items: &[ItemId]) -> Result<(), InvariantViolation> {
    if items.windows(2).all(|w| w[0] < w[1]) {
        Ok(())
    } else {
        Err(InvariantViolation::NotCanonical {
            items: items.to_vec(),
        })
    }
}

/// Validates a full itemset: canonical order plus at most one item per
/// attribute under `catalog`.
pub fn validate_itemset(
    itemset: &Itemset,
    catalog: &ItemCatalog,
) -> Result<(), InvariantViolation> {
    let items = itemset.items();
    validate_canonical_order(items)?;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            if catalog.attr_of(items[i]) == catalog.attr_of(items[j]) {
                return Err(InvariantViolation::DuplicateAttribute {
                    items: items.to_vec(),
                    first: items[i],
                    second: items[j],
                });
            }
        }
    }
    Ok(())
}

/// Panicking form of [`validate_canonical_order`], wired into
/// [`Itemset::from_sorted_unchecked`] under `debug-invariants`.
pub fn assert_canonical_order(items: &[ItemId]) {
    if let Err(v) = validate_canonical_order(items) {
        invariant_failed(&v);
    }
}

/// Panicking form of [`validate_itemset`].
pub fn assert_itemset(itemset: &Itemset, catalog: &ItemCatalog) {
    if let Err(v) = validate_itemset(itemset, catalog) {
        invariant_failed(&v);
    }
}

/// Single panic site (carries the `no-unwrap` allowlist entry for this
/// file): an invariant violation is a library bug, never a user error.
fn invariant_failed(v: &InvariantViolation) -> ! {
    panic!("hdx invariant violated: {v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use hdx_data::AttrId;

    fn catalog() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::cat_eq(AttrId(0), 0, "a", "x")),
            c.intern(Item::cat_eq(AttrId(0), 1, "a", "y")),
            c.intern(Item::cat_eq(AttrId(1), 0, "b", "z")),
        ];
        (c, ids)
    }

    #[test]
    fn canonical_order_checked() {
        let (_, ids) = catalog();
        assert!(validate_canonical_order(&[ids[0], ids[2]]).is_ok());
        assert!(validate_canonical_order(&[]).is_ok());
        assert!(matches!(
            validate_canonical_order(&[ids[2], ids[0]]),
            Err(InvariantViolation::NotCanonical { .. })
        ));
        assert!(validate_canonical_order(&[ids[0], ids[0]]).is_err());
    }

    #[test]
    fn per_attribute_uniqueness_checked() {
        let (c, ids) = catalog();
        let ok = Itemset::from_sorted_unchecked(vec![ids[0], ids[2]]);
        assert!(validate_itemset(&ok, &c).is_ok());
        let bad = Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]);
        assert!(matches!(
            validate_itemset(&bad, &c),
            Err(InvariantViolation::DuplicateAttribute { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "hdx invariant violated")]
    fn assert_form_panics() {
        let (c, ids) = catalog();
        let bad = Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]);
        assert_itemset(&bad, &c);
    }

    #[test]
    fn display_names_the_attribute_clash() {
        let (c, ids) = catalog();
        let bad = Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]);
        let err = validate_itemset(&bad, &c).unwrap_err();
        assert!(err.to_string().contains("one attribute"));
    }
}
