//! Half-open intervals `(lo, hi]` over ℝ, the ranges of continuous items.
//!
//! Tree discretization always splits a node at a value `a` into `≤ a` and
//! `> a` (paper §V-A), so every interval the pipeline produces has the form
//! `(lo, hi]` with `lo = −∞` and/or `hi = +∞` allowed. Using one canonical
//! form keeps partition checks exact (no floating-point boundary overlap).

use std::fmt;
use std::hash::{Hash, Hasher};

/// The half-open interval `(lo, hi]`; `lo = -inf` and `hi = +inf` encode
/// unbounded sides.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    /// Exclusive lower bound (may be `-inf`).
    pub lo: f64,
    /// Inclusive upper bound (may be `+inf`).
    pub hi: f64,
}

impl Interval {
    /// Creates `(lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo >= hi` or a bound is `NaN`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(lo < hi, "empty interval ({lo}, {hi}]");
        Self { lo, hi }
    }

    /// The full real line `(−∞, +∞]`.
    pub fn all() -> Self {
        Self::new(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// `(−∞, hi]`.
    pub fn at_most(hi: f64) -> Self {
        Self::new(f64::NEG_INFINITY, hi)
    }

    /// `(lo, +∞]`.
    pub fn greater_than(lo: f64) -> Self {
        Self::new(lo, f64::INFINITY)
    }

    /// Whether `x` lies in `(lo, hi]`. `NaN` (null) never matches.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x > self.lo && x <= self.hi
    }

    /// Whether the lower side is unbounded.
    #[inline]
    pub fn unbounded_below(&self) -> bool {
        self.lo == f64::NEG_INFINITY
    }

    /// Whether the upper side is unbounded.
    #[inline]
    pub fn unbounded_above(&self) -> bool {
        self.hi == f64::INFINITY
    }

    /// Splits at `a` into `(lo, a]` and `(a, hi]`.
    ///
    /// # Panics
    /// Panics unless `lo < a < hi`.
    pub fn split_at(&self, a: f64) -> (Interval, Interval) {
        assert!(
            a > self.lo && a < self.hi,
            "split point {a} outside ({}, {}]",
            self.lo,
            self.hi
        );
        (Interval::new(self.lo, a), Interval::new(a, self.hi))
    }

    /// Whether `other` is fully contained in `self`.
    pub fn covers(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two intervals share no points.
    pub fn disjoint(&self, other: &Interval) -> bool {
        self.hi <= other.lo || other.hi <= self.lo
    }
}

impl PartialEq for Interval {
    fn eq(&self, other: &Self) -> bool {
        self.lo.to_bits() == other.lo.to_bits() && self.hi.to_bits() == other.hi.to_bits()
    }
}

impl Eq for Interval {}

impl Hash for Interval {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.lo.to_bits().hash(state);
        self.hi.to_bits().hash(state);
    }
}

/// Formats a bound compactly: integers as-is, other values with three
/// decimals, trailing zeros trimmed.
fn fmt_bound(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x}")
    } else {
        let mut s = format!("{x:.3}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
        s
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.unbounded_below(), self.unbounded_above()) {
            (true, true) => write!(f, "(-inf, +inf)"),
            (true, false) => write!(f, "<={}", fmt_bound(self.hi)),
            (false, true) => write!(f, ">{}", fmt_bound(self.lo)),
            (false, false) => write!(f, "({}, {}]", fmt_bound(self.lo), fmt_bound(self.hi)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_half_open() {
        let j = Interval::new(1.0, 3.0);
        assert!(!j.contains(1.0));
        assert!(j.contains(1.0001));
        assert!(j.contains(3.0));
        assert!(!j.contains(3.0001));
        assert!(!j.contains(f64::NAN));
    }

    #[test]
    fn unbounded_forms() {
        assert!(Interval::all().contains(-1e300));
        assert!(Interval::at_most(2.0).contains(-1e300));
        assert!(Interval::at_most(2.0).contains(2.0));
        assert!(!Interval::at_most(2.0).contains(2.1));
        assert!(Interval::greater_than(2.0).contains(1e300));
        assert!(!Interval::greater_than(2.0).contains(2.0));
    }

    #[test]
    fn split_partitions_exactly() {
        let j = Interval::new(0.0, 10.0);
        let (l, r) = j.split_at(4.0);
        // Every point of j falls in exactly one side.
        for x in [0.5, 3.9999, 4.0, 4.0001, 10.0] {
            assert!(j.contains(x));
            assert_ne!(l.contains(x), r.contains(x), "x = {x}");
        }
        assert!(l.disjoint(&r));
        assert!(j.covers(&l) && j.covers(&r));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn split_outside_panics() {
        let _ = Interval::new(0.0, 1.0).split_at(5.0);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn empty_interval_panics() {
        let _ = Interval::new(2.0, 2.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::at_most(3.0).to_string(), "<=3");
        assert_eq!(Interval::greater_than(3.0).to_string(), ">3");
        assert_eq!(Interval::new(1.0, 2.0).to_string(), "(1, 2]");
        // Non-integers are trimmed to at most three decimals.
        assert_eq!(Interval::at_most(1.23456).to_string(), "<=1.235");
        assert_eq!(Interval::new(-0.5, 1.25).to_string(), "(-0.5, 1.25]");
        assert_eq!(Interval::greater_than(2.1000001).to_string(), ">2.1");
    }

    #[test]
    fn eq_and_hash_via_bits() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Interval::new(1.0, 2.0));
        set.insert(Interval::new(1.0, 2.0));
        set.insert(Interval::greater_than(1.0));
        assert_eq!(set.len(), 2);
    }
}
