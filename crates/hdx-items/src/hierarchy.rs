//! Item hierarchies: the per-attribute refinement forests of Definition 4.1.

use std::collections::HashMap;

use hdx_data::AttrId;

use crate::catalog::{ItemCatalog, ItemId};

/// The refinement forest `(I_A, ≻_A)` for one attribute.
///
/// `α ≻ β` ("β refines α") is stored as parent/children links. Roots are the
/// most general items of the attribute; leaves form a partition of the
/// attribute's covered domain at the finest granularity.
#[derive(Debug, Clone)]
pub struct ItemHierarchy {
    attr: AttrId,
    /// All member items, in insertion order.
    items: Vec<ItemId>,
    parent: HashMap<ItemId, ItemId>,
    children: HashMap<ItemId, Vec<ItemId>>,
    roots: Vec<ItemId>,
}

impl ItemHierarchy {
    /// Creates an empty hierarchy for `attr`.
    pub fn new(attr: AttrId) -> Self {
        Self {
            attr,
            items: Vec::new(),
            parent: HashMap::new(),
            children: HashMap::new(),
            roots: Vec::new(),
        }
    }

    /// A flat hierarchy: every item is a root/leaf (non-hierarchical
    /// attributes, e.g. plain categorical levels).
    pub fn flat(attr: AttrId, items: impl IntoIterator<Item = ItemId>) -> Self {
        let mut h = Self::new(attr);
        for i in items {
            h.add_root(i);
        }
        h
    }

    /// The attribute this hierarchy refines.
    #[inline]
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Adds a most-general item.
    ///
    /// # Panics
    /// Panics if the item is already a member.
    pub fn add_root(&mut self, item: ItemId) {
        assert!(!self.contains(item), "item already in hierarchy");
        self.items.push(item);
        self.roots.push(item);
    }

    /// Adds `child` as a refinement of `parent` (`parent ≻ child`).
    ///
    /// # Panics
    /// Panics if `parent` is not a member or `child` already is.
    pub fn add_child(&mut self, parent: ItemId, child: ItemId) {
        assert!(self.contains(parent), "parent not in hierarchy");
        assert!(!self.contains(child), "child already in hierarchy");
        self.items.push(child);
        self.parent.insert(child, parent);
        self.children.entry(parent).or_default().push(child);
    }

    /// Whether `item` is a member.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.contains(&item)
    }

    /// All member items.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of member items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the hierarchy has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The most-general items.
    #[inline]
    pub fn roots(&self) -> &[ItemId] {
        &self.roots
    }

    /// The one-step refinements of `item`.
    pub fn children(&self, item: ItemId) -> &[ItemId] {
        self.children.get(&item).map_or(&[], Vec::as_slice)
    }

    /// The item `item` one-step refines, if any.
    pub fn parent(&self, item: ItemId) -> Option<ItemId> {
        self.parent.get(&item).copied()
    }

    /// Whether `item` has no refinements.
    pub fn is_leaf(&self, item: ItemId) -> bool {
        self.children(item).is_empty()
    }

    /// The leaf items (finest partition), in insertion order.
    pub fn leaves(&self) -> Vec<ItemId> {
        self.items
            .iter()
            .copied()
            .filter(|&i| self.is_leaf(i))
            .collect()
    }

    /// The strict ancestors of `item`, nearest first.
    pub fn ancestors(&self, item: ItemId) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut cur = item;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// `item` followed by its ancestors, nearest first (the generalized
    /// transaction chain for one attribute value).
    pub fn self_and_ancestors(&self, item: ItemId) -> Vec<ItemId> {
        let mut out = vec![item];
        out.extend(self.ancestors(item));
        out
    }

    /// Depth of `item` (roots have depth 0).
    pub fn depth(&self, item: ItemId) -> usize {
        self.ancestors(item).len()
    }

    /// Whether `a` is a strict ancestor of `b`.
    pub fn is_ancestor(&self, a: ItemId, b: ItemId) -> bool {
        self.ancestors(b).contains(&a)
    }
}

/// A hierarchical discretization `Γ`: one hierarchy per participating
/// attribute, plus the shared item catalog.
#[derive(Debug, Clone, Default)]
pub struct HierarchySet {
    hierarchies: Vec<ItemHierarchy>,
}

impl HierarchySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a hierarchy.
    ///
    /// # Panics
    /// Panics when the attribute already has a hierarchy.
    pub fn push(&mut self, hierarchy: ItemHierarchy) {
        assert!(
            self.get(hierarchy.attr()).is_none(),
            "attribute {} already has a hierarchy",
            hierarchy.attr()
        );
        self.hierarchies.push(hierarchy);
    }

    /// The hierarchy of `attr`, if present.
    pub fn get(&self, attr: AttrId) -> Option<&ItemHierarchy> {
        self.hierarchies.iter().find(|h| h.attr() == attr)
    }

    /// Iterates over all hierarchies.
    pub fn iter(&self) -> impl Iterator<Item = &ItemHierarchy> {
        self.hierarchies.iter()
    }

    /// Number of hierarchies.
    #[inline]
    pub fn len(&self) -> usize {
        self.hierarchies.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hierarchies.is_empty()
    }

    /// All items across hierarchies (generalized item universe).
    pub fn all_items(&self) -> Vec<ItemId> {
        self.hierarchies
            .iter()
            .flat_map(|h| h.items().iter().copied())
            .collect()
    }

    /// All leaf items across hierarchies (the base / non-hierarchical item
    /// universe used by DivExplorer, Slice Finder and SliceLine).
    pub fn leaf_items(&self) -> Vec<ItemId> {
        self.hierarchies.iter().flat_map(|h| h.leaves()).collect()
    }

    /// Validates the partition property of Definition 4.1 against item
    /// covers: for every non-leaf `α`, `D_α` must equal the disjoint union of
    /// its children's covers.
    ///
    /// `cover` maps an item to its row bitset. Returns the offending item on
    /// failure.
    pub fn validate_partition(
        &self,
        catalog: &ItemCatalog,
        cover: impl Fn(ItemId) -> crate::bitset::Bitset,
    ) -> Result<(), ItemId> {
        let _ = catalog;
        for h in &self.hierarchies {
            for &item in h.items() {
                let kids = h.children(item);
                if kids.is_empty() {
                    continue;
                }
                let parent_cover = cover(item);
                let mut union = crate::bitset::Bitset::new(parent_cover.len());
                let mut total = 0usize;
                for &k in kids {
                    let kc = cover(k);
                    total += kc.count();
                    union.or_assign(&kc);
                }
                // Disjoint union ⇔ counts add up and the union equals parent.
                if total != parent_cover.count() || union != parent_cover {
                    return Err(item);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::item::Item;

    fn chain() -> (ItemCatalog, ItemHierarchy, Vec<ItemId>) {
        // #prior hierarchy like Fig. 1: root split ≤3 / >3; >3 split ≤8 / >8.
        let mut c = ItemCatalog::new();
        let a = AttrId(0);
        let le3 = c.intern(Item::range(a, Interval::at_most(3.0), "#prior"));
        let gt3 = c.intern(Item::range(a, Interval::greater_than(3.0), "#prior"));
        let le8 = c.intern(Item::range(a, Interval::new(3.0, 8.0), "#prior"));
        let gt8 = c.intern(Item::range(a, Interval::greater_than(8.0), "#prior"));
        let mut h = ItemHierarchy::new(a);
        h.add_root(le3);
        h.add_root(gt3);
        h.add_child(gt3, le8);
        h.add_child(gt3, gt8);
        (c, h, vec![le3, gt3, le8, gt8])
    }

    #[test]
    fn structure_queries() {
        let (_, h, ids) = chain();
        assert_eq!(h.roots(), &[ids[0], ids[1]]);
        assert_eq!(h.children(ids[1]), &[ids[2], ids[3]]);
        assert!(h.is_leaf(ids[0]));
        assert!(!h.is_leaf(ids[1]));
        assert_eq!(h.leaves(), vec![ids[0], ids[2], ids[3]]);
        assert_eq!(h.parent(ids[2]), Some(ids[1]));
        assert_eq!(h.parent(ids[1]), None);
    }

    #[test]
    fn ancestors_and_depth() {
        let (_, h, ids) = chain();
        assert_eq!(h.ancestors(ids[3]), vec![ids[1]]);
        assert_eq!(h.ancestors(ids[1]), Vec::<ItemId>::new());
        assert_eq!(h.self_and_ancestors(ids[3]), vec![ids[3], ids[1]]);
        assert_eq!(h.depth(ids[0]), 0);
        assert_eq!(h.depth(ids[3]), 1);
        assert!(h.is_ancestor(ids[1], ids[3]));
        assert!(!h.is_ancestor(ids[3], ids[1]));
        assert!(!h.is_ancestor(ids[0], ids[3]));
    }

    #[test]
    #[should_panic(expected = "already in hierarchy")]
    fn duplicate_member_rejected() {
        let (_, mut h, ids) = chain();
        h.add_root(ids[0]);
    }

    #[test]
    #[should_panic(expected = "parent not in hierarchy")]
    fn foreign_parent_rejected() {
        let mut c = ItemCatalog::new();
        let a = AttrId(0);
        let x = c.intern(Item::range(a, Interval::at_most(1.0), "x"));
        let y = c.intern(Item::range(a, Interval::greater_than(1.0), "x"));
        let mut h = ItemHierarchy::new(a);
        h.add_child(x, y);
    }

    #[test]
    fn hierarchy_set_queries() {
        let (c, h, ids) = chain();
        let sex = AttrId(1);
        let f = {
            let mut c2 = c.clone();
            c2.intern(Item::cat_eq(sex, 0, "sex", "F"))
        };
        let mut set = HierarchySet::new();
        set.push(h);
        set.push(ItemHierarchy::flat(sex, [f]));
        assert_eq!(set.len(), 2);
        assert!(set.get(AttrId(0)).is_some());
        assert!(set.get(AttrId(7)).is_none());
        assert_eq!(set.all_items().len(), 5);
        let leaves = set.leaf_items();
        assert!(leaves.contains(&ids[0]) && !leaves.contains(&ids[1]));
        assert_eq!(leaves.len(), 4);
    }

    #[test]
    #[should_panic(expected = "already has a hierarchy")]
    fn duplicate_attr_hierarchy_rejected() {
        let (_, h, _) = chain();
        let mut set = HierarchySet::new();
        set.push(h.clone());
        set.push(h);
    }

    #[test]
    fn validate_partition_detects_violations() {
        use crate::bitset::Bitset;
        let (c, h, ids) = chain();
        let mut set = HierarchySet::new();
        set.push(h);
        // Good covers: gt3 = {2,3}, le8 = {2}, gt8 = {3}, le3 = {0,1}.
        let good = |i: ItemId| -> Bitset {
            let rows: &[usize] = if i == ids[0] {
                &[0, 1]
            } else if i == ids[1] {
                &[2, 3]
            } else if i == ids[2] {
                &[2]
            } else {
                &[3]
            };
            Bitset::from_indices(4, rows.iter().copied())
        };
        assert!(set.validate_partition(&c, good).is_ok());
        // Bad: children overlap on row 2.
        let bad = |i: ItemId| -> Bitset {
            let rows: &[usize] = if i == ids[0] {
                &[0, 1]
            } else if i == ids[1] {
                &[2, 3]
            } else {
                &[2]
            };
            Bitset::from_indices(4, rows.iter().copied())
        };
        assert_eq!(set.validate_partition(&c, bad), Err(ids[1]));
    }
}
