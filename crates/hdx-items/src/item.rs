//! Items: single-attribute constraints.

use std::fmt;

use hdx_data::AttrId;

use crate::interval::Interval;

/// The constraint payload of an item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `A = a` for one categorical level (dictionary code).
    CatEq(u32),
    /// `A ∈ {a₁, …}` — a *generalized* categorical item covering several
    /// levels (sorted, deduplicated codes). Produced by categorical
    /// taxonomies (§V-A, "Hierarchies for Categorical Attributes").
    CatIn(Box<[u32]>),
    /// `A ∈ J` for an interval `J` over a continuous attribute.
    Range(Interval),
}

impl Predicate {
    /// Builds a [`Predicate::CatIn`], sorting and deduplicating the codes.
    ///
    /// # Panics
    /// Panics on an empty code set (an unsatisfiable item is a caller bug).
    pub fn cat_in(mut codes: Vec<u32>) -> Self {
        assert!(!codes.is_empty(), "CatIn requires at least one code");
        codes.sort_unstable();
        codes.dedup();
        Predicate::CatIn(codes.into_boxed_slice())
    }

    /// Whether a categorical code satisfies this predicate.
    ///
    /// Returns `false` for range predicates (kind mismatch is a caller bug
    /// caught by covers/tests, not a panic in the hot loop).
    #[inline]
    pub fn matches_code(&self, code: u32) -> bool {
        match self {
            Predicate::CatEq(c) => *c == code,
            Predicate::CatIn(codes) => codes.binary_search(&code).is_ok(),
            Predicate::Range(_) => false,
        }
    }

    /// Whether a continuous value satisfies this predicate (`NaN` never
    /// matches).
    #[inline]
    pub fn matches_value(&self, x: f64) -> bool {
        match self {
            Predicate::Range(j) => j.contains(x),
            _ => false,
        }
    }
}

/// An item `α`: a predicate on one attribute, plus a display label.
///
/// The label is fixed at creation (e.g. `age<=27`, `occp=MGR`) so results can
/// be printed without threading dictionaries through the whole pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Item {
    attr: AttrId,
    predicate: Predicate,
    label: String,
}

impl Item {
    /// Creates an item.
    pub fn new(attr: AttrId, predicate: Predicate, label: impl Into<String>) -> Self {
        Self {
            attr,
            predicate,
            label: label.into(),
        }
    }

    /// Convenience: categorical equality item.
    pub fn cat_eq(attr: AttrId, code: u32, attr_name: &str, level: &str) -> Self {
        Self::new(attr, Predicate::CatEq(code), format!("{attr_name}={level}"))
    }

    /// Convenience: generalized categorical item.
    pub fn cat_in(attr: AttrId, codes: Vec<u32>, attr_name: &str, group: &str) -> Self {
        Self::new(
            attr,
            Predicate::cat_in(codes),
            format!("{attr_name}={group}"),
        )
    }

    /// Convenience: continuous range item.
    pub fn range(attr: AttrId, interval: Interval, attr_name: &str) -> Self {
        Self::new(
            attr,
            Predicate::Range(interval),
            format!("{attr_name}{interval}"),
        )
    }

    /// The constrained attribute.
    #[inline]
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The predicate.
    #[inline]
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Human-readable label.
    #[inline]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The interval of a range item, if any.
    pub fn interval(&self) -> Option<&Interval> {
        match &self.predicate {
            Predicate::Range(j) => Some(j),
            _ => None,
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_eq_matching() {
        let p = Predicate::CatEq(2);
        assert!(p.matches_code(2));
        assert!(!p.matches_code(3));
        assert!(!p.matches_value(2.0));
    }

    #[test]
    fn cat_in_sorted_and_deduped() {
        let p = Predicate::cat_in(vec![5, 1, 3, 1]);
        match &p {
            Predicate::CatIn(codes) => assert_eq!(&codes[..], &[1, 3, 5]),
            _ => unreachable!(),
        }
        assert!(p.matches_code(3));
        assert!(!p.matches_code(2));
    }

    #[test]
    #[should_panic(expected = "at least one code")]
    fn empty_cat_in_panics() {
        let _ = Predicate::cat_in(vec![]);
    }

    #[test]
    fn range_matching() {
        let p = Predicate::Range(Interval::greater_than(3.0));
        assert!(p.matches_value(3.5));
        assert!(!p.matches_value(3.0));
        assert!(!p.matches_code(4));
    }

    #[test]
    fn labels() {
        let a = AttrId(0);
        assert_eq!(Item::cat_eq(a, 1, "sex", "F").label(), "sex=F");
        assert_eq!(
            Item::cat_in(a, vec![1, 2], "occp", "MGR").label(),
            "occp=MGR"
        );
        assert_eq!(
            Item::range(a, Interval::at_most(27.0), "age").label(),
            "age<=27"
        );
        assert_eq!(
            Item::range(a, Interval::new(25.0, 32.0), "age").to_string(),
            "age(25, 32]"
        );
    }

    #[test]
    fn equality_and_hash_respect_attr() {
        use std::collections::HashSet;
        let i1 = Item::cat_eq(AttrId(0), 1, "a", "x");
        let i2 = Item::cat_eq(AttrId(1), 1, "a", "x");
        let i3 = Item::cat_eq(AttrId(0), 1, "a", "x");
        assert_ne!(i1, i2);
        assert_eq!(i1, i3);
        let set: HashSet<_> = [i1, i2, i3].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
