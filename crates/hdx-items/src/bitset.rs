//! Fixed-capacity bitset over row indices.
//!
//! Item covers (the sets `D_α`) and itemset supports are intersections of
//! row sets; a word-packed bitset makes those intersections cache-friendly
//! and branch-free.

/// A fixed-length bitset over `0..len` row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates an all-zero bitset of capacity `len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-ones bitset of capacity `len`.
    pub fn all_set(len: usize) -> Self {
        let mut b = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Zeroes any bits beyond `len` in the last word.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Capacity (number of addressable bits).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ∩ other` as a new bitset.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn and(&self, other: &Bitset) -> Bitset {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        Bitset {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// In-place `self &= other`.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn and_assign(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `|self ∩ other|` without materialising the intersection.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn and_count(&self, other: &Bitset) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// The backing word slice (least-significant bit of `words()[0]` is row
    /// 0; bits beyond `len` in the last word are always zero).
    ///
    /// This is the layout the word-level statistics kernels
    /// (`hdx_stats::OutcomePlanes`) consume.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing word slice, for fused kernels that
    /// intersect covers and accumulate statistics in one cache-hot pass
    /// (`hdx_stats::OutcomePlanes::accum_assign_pair`). The caller must
    /// preserve the layout invariant: bits at or beyond `len` in the last
    /// word stay zero. Writing the AND of two well-formed covers (the only
    /// use) preserves it automatically.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Overwrites `self` with `a ∩ b` — the allocation-free counterpart of
    /// [`Bitset::and`] for reusable scratch buffers.
    ///
    /// # Panics
    /// Panics on any capacity mismatch among `self`, `a`, `b`.
    pub fn assign_and(&mut self, a: &Bitset, b: &Bitset) {
        assert_eq!(self.len, a.len, "bitset capacity mismatch");
        assert_eq!(a.len, b.len, "bitset capacity mismatch");
        for (dst, (x, y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *dst = x & y;
        }
    }

    /// In-place `self |= other`.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn or_assign(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `|c₀ ∩ c₁ ∩ … ∩ cₖ|` over any number of covers without materialising
    /// the intersection — the count-first pruning primitive for level-wise
    /// candidates. Returns 0 for an empty list.
    ///
    /// # Panics
    /// Panics on any capacity mismatch among the covers.
    pub fn intersection_count(covers: &[&Bitset]) -> usize {
        let Some((first, rest)) = covers.split_first() else {
            return 0;
        };
        for c in rest {
            assert_eq!(first.len, c.len, "bitset capacity mismatch");
        }
        let mut count = 0usize;
        for (i, &w) in first.words.iter().enumerate() {
            let mut acc = w;
            for c in rest {
                acc &= c.words[i];
            }
            count += acc.count_ones() as usize;
        }
        count
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Builds a bitset from row indices.
    ///
    /// # Panics
    /// Panics when an index exceeds the capacity.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Bitset::new(len);
        for i in indices {
            b.set(i);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count(), 3);
        b.unset(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn all_set_respects_tail() {
        let b = Bitset::all_set(70);
        assert_eq!(b.count(), 70);
        assert!(b.get(69));
        let exact = Bitset::all_set(128);
        assert_eq!(exact.count(), 128);
        let empty = Bitset::all_set(0);
        assert_eq!(empty.count(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn intersection_variants_agree() {
        let a = Bitset::from_indices(200, [1, 5, 64, 65, 150, 199]);
        let b = Bitset::from_indices(200, [5, 64, 150, 151]);
        let c = a.and(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![5, 64, 150]);
        assert_eq!(a.and_count(&b), 3);
        let mut d = a.clone();
        d.and_assign(&b);
        assert_eq!(d, c);
    }

    #[test]
    fn word_level_ops_match_bit_level() {
        let a = Bitset::from_indices(200, [1, 5, 64, 65, 150, 199]);
        let b = Bitset::from_indices(200, [5, 64, 150, 151, 199]);
        let c = Bitset::from_indices(200, [5, 150, 151, 199]);
        // assign_and == and
        let mut scratch = Bitset::new(200);
        scratch.assign_and(&a, &b);
        assert_eq!(scratch, a.and(&b));
        // or_assign
        let mut u = a.clone();
        u.or_assign(&b);
        let expected: Vec<usize> = vec![1, 5, 64, 65, 150, 151, 199];
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), expected);
        // intersection_count over 1, 2, 3 covers
        assert_eq!(Bitset::intersection_count(&[]), 0);
        assert_eq!(Bitset::intersection_count(&[&a]), a.count());
        assert_eq!(Bitset::intersection_count(&[&a, &b]), a.and_count(&b));
        assert_eq!(
            Bitset::intersection_count(&[&a, &b, &c]),
            a.and(&b).and_count(&c)
        );
        // words() exposes the packed layout with a clean tail
        let tail = Bitset::all_set(70);
        assert_eq!(tail.words().len(), 2);
        assert_eq!(tail.words()[1].count_ones(), 6);
    }

    #[test]
    fn iter_ones_ascending() {
        let b = Bitset::from_indices(300, [299, 0, 63, 64, 128]);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 128, 299]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        Bitset::new(10).set(10);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_and_panics() {
        let _ = Bitset::new(10).and(&Bitset::new(11));
    }
}
