//! Itemsets (patterns): sets of items with at most one item per attribute.

use std::fmt;

use crate::catalog::{ItemCatalog, ItemId};

/// An itemset `I ⊆ I` in canonical (sorted by [`ItemId`]) order.
///
/// Invariant (checked at construction against a catalog, maintained by
/// [`Itemset::with_item`]): no two member items constrain the same attribute
/// (§III-A).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Itemset {
    items: Vec<ItemId>,
}

impl Itemset {
    /// The empty itemset (denotes the whole dataset).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A singleton itemset.
    pub fn singleton(item: ItemId) -> Self {
        Self { items: vec![item] }
    }

    /// Builds an itemset from items, sorting and checking the
    /// one-item-per-attribute invariant against `catalog`.
    ///
    /// Returns `None` when two items constrain the same attribute.
    pub fn new(mut items: Vec<ItemId>, catalog: &ItemCatalog) -> Option<Self> {
        items.sort_unstable();
        items.dedup();
        // Itemsets are short (≤ #attributes), so the O(k²) attribute check is
        // cheaper than allocating a seen-set.
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                if catalog.attr_of(items[i]) == catalog.attr_of(items[j]) {
                    return None;
                }
            }
        }
        Some(Self { items })
    }

    /// Extends the itemset with `item`, keeping canonical order.
    ///
    /// Returns `None` when the itemset already constrains that attribute
    /// (including by `item` itself).
    pub fn with_item(&self, item: ItemId, catalog: &ItemCatalog) -> Option<Self> {
        let attr = catalog.attr_of(item);
        if self.items.iter().any(|&i| catalog.attr_of(i) == attr) {
            return None;
        }
        let mut items = self.items.clone();
        let pos = items.partition_point(|&i| i < item);
        items.insert(pos, item);
        Some(Self { items })
    }

    /// Number of items (`|I|`, the itemset length).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether this is the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Member item ids, ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Whether `item` is a member.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether every item of `other` is a member of `self`.
    pub fn is_superset_of(&self, other: &Itemset) -> bool {
        other.items.iter().all(|&i| self.contains(i))
    }

    /// All `len−1` subsets (used for Apriori candidate pruning).
    pub fn sub_itemsets(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |skip| {
            let items = self
                .items
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &id)| id)
                .collect();
            Itemset { items }
        })
    }

    /// Formats the itemset with labels from `catalog`.
    pub fn display<'a>(&'a self, catalog: &'a ItemCatalog) -> ItemsetDisplay<'a> {
        ItemsetDisplay {
            itemset: self,
            catalog,
        }
    }

    /// Constructs an itemset from pre-sorted, pre-validated items.
    ///
    /// Intended for the miners, which maintain the invariants themselves.
    ///
    /// # Panics
    /// Debug-asserts canonical order (always checked under the
    /// `debug-invariants` feature).
    pub fn from_sorted_unchecked(items: Vec<ItemId>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
        #[cfg(feature = "debug-invariants")]
        crate::invariants::assert_canonical_order(&items);
        Self { items }
    }
}

/// Helper implementing `Display` for an itemset with its catalog.
pub struct ItemsetDisplay<'a> {
    itemset: &'a Itemset,
    catalog: &'a ItemCatalog,
}

impl fmt::Display for ItemsetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.itemset.is_empty() {
            return write!(f, "{{}}");
        }
        let mut labels: Vec<&str> = self
            .itemset
            .items()
            .iter()
            .map(|&i| self.catalog.label(i))
            .collect();
        labels.sort_unstable();
        write!(f, "{{{}}}", labels.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::item::Item;
    use hdx_data::AttrId;

    fn catalog() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::range(AttrId(0), Interval::at_most(3.0), "age")),
            c.intern(Item::range(AttrId(0), Interval::greater_than(3.0), "age")),
            c.intern(Item::cat_eq(AttrId(1), 0, "sex", "F")),
            c.intern(Item::cat_eq(AttrId(1), 1, "sex", "M")),
            c.intern(Item::cat_eq(AttrId(2), 0, "race", "X")),
        ];
        (c, ids)
    }

    #[test]
    fn new_enforces_per_attribute_uniqueness() {
        let (c, ids) = catalog();
        assert!(Itemset::new(vec![ids[0], ids[2]], &c).is_some());
        assert!(Itemset::new(vec![ids[0], ids[1]], &c).is_none());
        assert!(Itemset::new(vec![ids[2], ids[3]], &c).is_none());
    }

    #[test]
    fn new_sorts_and_dedups() {
        let (c, ids) = catalog();
        let s = Itemset::new(vec![ids[2], ids[0], ids[2]], &c).unwrap();
        assert_eq!(s.items(), &[ids[0], ids[2]]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn with_item_extends_or_rejects() {
        let (c, ids) = catalog();
        let s = Itemset::singleton(ids[0]);
        let s2 = s.with_item(ids[2], &c).unwrap();
        assert_eq!(s2.items(), &[ids[0], ids[2]]);
        assert!(
            s2.with_item(ids[3], &c).is_none(),
            "same attribute as ids[2]"
        );
        // Re-adding a member conflicts with its own attribute.
        assert_eq!(s2.with_item(ids[0], &c), None);
    }

    #[test]
    fn subset_relation() {
        let (c, ids) = catalog();
        let small = Itemset::new(vec![ids[0]], &c).unwrap();
        let big = Itemset::new(vec![ids[0], ids[2], ids[4]], &c).unwrap();
        assert!(big.is_superset_of(&small));
        assert!(!small.is_superset_of(&big));
        assert!(big.is_superset_of(&Itemset::empty()));
    }

    #[test]
    fn sub_itemsets_enumerates_all() {
        let (c, ids) = catalog();
        let s = Itemset::new(vec![ids[0], ids[2], ids[4]], &c).unwrap();
        let subs: Vec<Itemset> = s.sub_itemsets().collect();
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert_eq!(sub.len(), 2);
            assert!(s.is_superset_of(sub));
        }
    }

    #[test]
    fn display_with_labels() {
        let (c, ids) = catalog();
        let s = Itemset::new(vec![ids[2], ids[0]], &c).unwrap();
        assert_eq!(s.display(&c).to_string(), "{age<=3, sex=F}");
        assert_eq!(Itemset::empty().display(&c).to_string(), "{}");
    }
}
