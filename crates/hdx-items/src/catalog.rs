//! Item interning: the global registry mapping items to dense ids.

use std::collections::HashMap;

use hdx_data::AttrId;

use crate::item::Item;

/// Dense identifier of an interned [`Item`] within an [`ItemCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interning registry of items (the item universe `I`).
///
/// Each distinct item gets a dense [`ItemId`]; the catalog also indexes
/// items by attribute, which the miners use to enforce the
/// one-item-per-attribute itemset constraint.
#[derive(Debug, Clone, Default)]
pub struct ItemCatalog {
    items: Vec<Item>,
    ids: HashMap<Item, ItemId>,
    by_attr: HashMap<AttrId, Vec<ItemId>>,
}

impl ItemCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an item, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, item: Item) -> ItemId {
        if let Some(&id) = self.ids.get(&item) {
            return id;
        }
        let id = ItemId(u32::try_from(self.items.len()).expect("too many items"));
        self.ids.insert(item.clone(), id);
        self.by_attr.entry(item.attr()).or_default().push(id);
        self.items.push(item);
        id
    }

    /// The item with the given id.
    ///
    /// # Panics
    /// Panics for a foreign id.
    #[inline]
    pub fn item(&self, id: ItemId) -> &Item {
        &self.items[id.index()]
    }

    /// The attribute an item constrains.
    #[inline]
    pub fn attr_of(&self, id: ItemId) -> AttrId {
        self.item(id).attr()
    }

    /// A dense `ItemId`-indexed table of each item's attribute
    /// (`table[id.index()] == attr_of(id)`), for inner loops that cannot
    /// afford the per-call [`Item`] indirection of
    /// [`attr_of`](Self::attr_of).
    pub fn attr_table(&self) -> Vec<AttrId> {
        self.items.iter().map(Item::attr).collect()
    }

    /// The label of an item.
    #[inline]
    pub fn label(&self, id: ItemId) -> &str {
        self.item(id).label()
    }

    /// Id of an already-interned item.
    pub fn id_of(&self, item: &Item) -> Option<ItemId> {
        self.ids.get(item).copied()
    }

    /// Looks up an item by its display label (linear scan; intended for
    /// tests and result formatting, not hot paths).
    pub fn find_by_label(&self, label: &str) -> Option<ItemId> {
        self.items
            .iter()
            .position(|i| i.label() == label)
            .map(|i| ItemId(i as u32))
    }

    /// Number of interned items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the catalog is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All ids, in interning order.
    pub fn ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.items.len() as u32).map(ItemId)
    }

    /// Ids of the items constraining `attr`, in interning order.
    pub fn items_of_attr(&self, attr: AttrId) -> &[ItemId] {
        self.by_attr.get(&attr).map_or(&[], Vec::as_slice)
    }

    /// The attributes that have at least one item.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        let mut v: Vec<AttrId> = self.by_attr.keys().copied().collect();
        v.sort();
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    #[test]
    fn intern_dedups() {
        let mut c = ItemCatalog::new();
        let i1 = c.intern(Item::cat_eq(AttrId(0), 0, "sex", "F"));
        let i2 = c.intern(Item::cat_eq(AttrId(0), 0, "sex", "F"));
        let i3 = c.intern(Item::cat_eq(AttrId(0), 1, "sex", "M"));
        assert_eq!(i1, i2);
        assert_ne!(i1, i3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn by_attr_index() {
        let mut c = ItemCatalog::new();
        let a0 = AttrId(0);
        let a1 = AttrId(1);
        let x = c.intern(Item::range(a0, Interval::at_most(3.0), "age"));
        let y = c.intern(Item::range(a0, Interval::greater_than(3.0), "age"));
        let z = c.intern(Item::cat_eq(a1, 0, "sex", "F"));
        assert_eq!(c.items_of_attr(a0), &[x, y]);
        assert_eq!(c.items_of_attr(a1), &[z]);
        assert!(c.items_of_attr(AttrId(9)).is_empty());
        assert_eq!(c.attrs().collect::<Vec<_>>(), vec![a0, a1]);
    }

    #[test]
    fn lookup_by_label() {
        let mut c = ItemCatalog::new();
        let id = c.intern(Item::range(
            AttrId(0),
            Interval::greater_than(8.0),
            "#prior",
        ));
        assert_eq!(c.find_by_label("#prior>8"), Some(id));
        assert_eq!(c.find_by_label("nope"), None);
        assert_eq!(c.label(id), "#prior>8");
    }

    #[test]
    fn ids_enumerates_in_order() {
        let mut c = ItemCatalog::new();
        let a = c.intern(Item::cat_eq(AttrId(0), 0, "x", "a"));
        let b = c.intern(Item::cat_eq(AttrId(0), 1, "x", "b"));
        assert_eq!(c.ids().collect::<Vec<_>>(), vec![a, b]);
    }
}
