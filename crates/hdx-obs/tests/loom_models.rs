//! hdx-loom models of the recorder's `flush_thread!` buffer hand-off, run
//! by `cargo xtask sanitize`:
//!
//! ```text
//! RUSTFLAGS="--cfg hdx_loom" cargo test -p hdx-obs --features obs --test loom_models
//! ```
//!
//! Under `--cfg hdx_loom` the recorder's `sync` facade swaps the
//! retired-sink registry lock for the modeled twin, so these tests drive
//! the *real* `flush_thread` / `collect` code through every interleaving
//! of the hand-off. The retired registry is process-global, so each model
//! closure starts with `reset()` (schedules are replayed many times).
//! Built as an empty test crate without the cfg.
#![cfg(hdx_loom)]

use hdx_obs::{collect, counter_add, flush_thread, reset, CounterId};

const COUNTER: CounterId = CounterId::MineCandidatesGenerated;

#[test]
fn flush_hand_off_neither_loses_nor_duplicates_a_batch() {
    hdx_loom::model(|| {
        reset();
        let h = hdx_loom::thread::spawn(|| {
            counter_add(COUNTER, 3);
            flush_thread();
        });
        // Collect concurrently with the worker's flush: the worker's batch
        // lands either in this collect or in the post-join one — never in
        // both, never in neither.
        let first = collect().counter(COUNTER);
        h.join().expect("worker panicked");
        let second = collect().counter(COUNTER);
        assert_eq!(
            first + second,
            3,
            "batch lost or duplicated across the hand-off ({first} + {second})"
        );
    });
}

#[test]
fn concurrent_flushes_merge_every_batch() {
    hdx_loom::model(|| {
        reset();
        let a = hdx_loom::thread::spawn(|| {
            counter_add(COUNTER, 1);
            flush_thread();
        });
        let b = hdx_loom::thread::spawn(|| {
            counter_add(COUNTER, 10);
            flush_thread();
        });
        a.join().expect("worker a panicked");
        b.join().expect("worker b panicked");
        assert_eq!(collect().counter(COUNTER), 11);
    });
}

#[test]
fn repeated_flushes_do_not_duplicate_drained_data() {
    hdx_loom::model(|| {
        reset();
        let h = hdx_loom::thread::spawn(|| {
            counter_add(COUNTER, 2);
            flush_thread();
            // A second flush with nothing new recorded must be a no-op.
            flush_thread();
        });
        h.join().expect("worker panicked");
        assert_eq!(collect().counter(COUNTER), 2);
    });
}

#[test]
fn drop_flush_backstop_preserves_unflushed_batches() {
    hdx_loom::model(|| {
        reset();
        let h = hdx_loom::thread::spawn(|| {
            // No explicit flush: the thread-local sink's drop must hand the
            // batch to the retired registry during thread teardown.
            counter_add(COUNTER, 4);
        });
        h.join().expect("worker panicked");
        assert_eq!(collect().counter(COUNTER), 4, "drop-flush lost the batch");
    });
}
