//! The live recorder (compiled only under the `obs` feature): per-thread
//! event buffers, counter/gauge/histogram cells, and the collector that
//! merges them into a [`RunTelemetry`].
//!
//! Recording is lock-free on the hot path: every thread appends to its own
//! thread-local sink (plain `Cell`/`RefCell` stores, no atomics, no shared
//! locks). The only lock is the retired-sink registry, touched once per
//! thread flush/exit and once per [`collect`]. Worker threads (e.g. the
//! parallel vertical miner's scoped workers) must call [`flush_thread`]
//! at the end of their closure: thread-local destructors run *after* a
//! scoped thread is considered finished, so relying on the drop-flush
//! alone would race `collect()` on the spawning thread. The drop-flush
//! still runs as a backstop for threads that never flush explicitly.
//!
//! Timestamps are nanoseconds from a process-global monotonic epoch
//! (`Instant`-based), so events from different threads order correctly.

use crate::metrics::{CounterId, GaugeId, HistId, HistStat};
use crate::sync::{Mutex, PoisonError};
use crate::telemetry::{RunTelemetry, SnapshotSample, SpanStat};
use crate::SpanArg;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::OnceLock;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Begin,
    End,
    Instant,
}

#[derive(Debug)]
struct Event {
    kind: EventKind,
    /// Unused (empty) for `End` events — the span stack supplies the match.
    label: &'static str,
    arg: SpanArg,
    t_ns: u64,
}

/// Everything one thread recorded, detached from its cells.
struct SinkData {
    counters: [u64; CounterId::COUNT],
    gauges: [u64; GaugeId::COUNT],
    hists: Vec<HistStat>,
    events: Vec<Event>,
    snapshots: Vec<SnapshotSample>,
}

/// The thread-local sink. Dropping it (thread exit) flushes its data into
/// the retired registry so `collect()` on the main thread still sees it.
struct LocalSink {
    counters: [Cell<u64>; CounterId::COUNT],
    gauges: [Cell<u64>; GaugeId::COUNT],
    hists: RefCell<Vec<HistStat>>,
    events: RefCell<Vec<Event>>,
    snapshots: RefCell<Vec<SnapshotSample>>,
}

impl LocalSink {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| Cell::new(0)),
            gauges: std::array::from_fn(|_| Cell::new(0)),
            hists: RefCell::new((0..HistId::COUNT).map(|_| HistStat::new()).collect()),
            events: RefCell::new(Vec::new()),
            snapshots: RefCell::new(Vec::new()),
        }
    }

    /// Moves the recorded data out, leaving the sink empty.
    fn take_data(&self) -> SinkData {
        SinkData {
            counters: std::array::from_fn(|i| self.counters[i].replace(0)),
            gauges: std::array::from_fn(|i| self.gauges[i].replace(0)),
            hists: self
                .hists
                .replace((0..HistId::COUNT).map(|_| HistStat::new()).collect()),
            events: self.events.take(),
            snapshots: self.snapshots.take(),
        }
    }

    fn is_empty(&self) -> bool {
        self.counters.iter().all(|c| c.get() == 0)
            && self.gauges.iter().all(|g| g.get() == 0)
            && self.hists.borrow().iter().all(|h| h.count == 0)
            && self.events.borrow().is_empty()
            && self.snapshots.borrow().is_empty()
    }
}

impl Drop for LocalSink {
    fn drop(&mut self) {
        if self.is_empty() {
            return;
        }
        let data = self.take_data();
        retired()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(data);
    }
}

thread_local! {
    static SINK: LocalSink = LocalSink::new();
}

fn retired() -> &'static Mutex<Vec<SinkData>> {
    static RETIRED: Mutex<Vec<SinkData>> = Mutex::new(Vec::new());
    &RETIRED
}

/// Nanoseconds since the process-global monotonic epoch (first obs use).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn with_sink(f: impl FnOnce(&LocalSink)) {
    // `try_with` so recording during thread teardown degrades to a no-op
    // instead of panicking.
    let _ = SINK.try_with(f);
}

fn push_event(kind: EventKind, label: &'static str, arg: SpanArg) {
    #[cfg(feature = "obs-tracing")]
    if let Some(observer) = crate::bridge::observer() {
        match kind {
            EventKind::Begin => observer.on_enter(label, &arg),
            EventKind::End => observer.on_exit(),
            EventKind::Instant => observer.on_instant(label, &arg),
        }
    }
    let t_ns = now_ns();
    with_sink(|s| {
        s.events.borrow_mut().push(Event {
            kind,
            label,
            arg,
            t_ns,
        });
    });
}

/// An RAII guard for one hierarchical span: entering records a begin event,
/// dropping records the matching end. Guards are `!Send` (a span belongs to
/// the thread that opened it) and zero-sized.
#[derive(Debug)]
pub struct SpanGuard {
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span named `label` (rendered as `label` or `label:arg`) under
    /// the thread's currently open span, if any.
    pub fn enter(label: &'static str, arg: SpanArg) -> Self {
        push_event(EventKind::Begin, label, arg);
        Self {
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        push_event(EventKind::End, "", SpanArg::None);
    }
}

/// Records an instantaneous event (a zero-duration span occurrence) under
/// the current span path.
pub fn instant(label: &'static str, arg: SpanArg) {
    push_event(EventKind::Instant, label, arg);
}

/// Adds `n` to a counter.
pub fn counter_add(id: CounterId, n: u64) {
    with_sink(|s| {
        let cell = &s.counters[id as usize];
        cell.set(cell.get().saturating_add(n));
    });
}

/// Sets a gauge to `value` if it exceeds the thread's current value
/// (gauges merge by maximum, so recording the high-water mark is the
/// meaningful operation).
pub fn gauge_max(id: GaugeId, value: u64) {
    with_sink(|s| {
        let cell = &s.gauges[id as usize];
        cell.set(cell.get().max(value));
    });
}

/// Sets a gauge to `value` unconditionally (thread-locally; cross-thread
/// merge still takes the maximum).
pub fn gauge_set(id: GaugeId, value: u64) {
    with_sink(|s| s.gauges[id as usize].set(value));
}

/// Records one value into a histogram.
pub fn hist_record(id: HistId, value: u64) {
    with_sink(|s| {
        if let Some(h) = s.hists.borrow_mut().get_mut(id as usize) {
            h.record(value);
        }
    });
}

/// Times `f` and records the wall nanoseconds into histogram `id`.
pub fn time_hist_fn<R>(id: HistId, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let result = f();
    hist_record(id, start.elapsed().as_nanos() as u64);
    result
}

fn snapshot_observer() -> &'static OnceLock<Box<dyn crate::SnapshotObserver>> {
    static OBSERVER: OnceLock<Box<dyn crate::SnapshotObserver>> = OnceLock::new();
    &OBSERVER
}

/// Installs the process-global live snapshot tap ([`crate::SnapshotObserver`]).
/// Returns `false` (dropping `observer`) if a tap is already installed —
/// same first-install-wins contract as the `obs-tracing` bridge.
pub fn set_snapshot_observer(observer: Box<dyn crate::SnapshotObserver>) -> bool {
    snapshot_observer().set(observer).is_ok()
}

/// Records a governor budget sample, forwarding it to the live tap first
/// (on this thread) so streaming consumers see it before any `collect()`.
pub fn record_snapshot(sample: SnapshotSample) {
    if let Some(tap) = snapshot_observer().get() {
        tap.on_snapshot(&sample);
    }
    with_sink(|s| s.snapshots.borrow_mut().push(sample));
}

/// Flushes the calling thread's sink into the retired registry so a later
/// [`collect`] on another thread sees its data. Worker threads must call
/// this at the end of their closure: a scoped thread counts as finished
/// *before* its thread-local destructors run, so the automatic drop-flush
/// can land after the spawning thread's `collect()`.
pub fn flush_thread() {
    with_sink(|s| {
        if s.is_empty() {
            return;
        }
        let data = s.take_data();
        retired()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(data);
    });
}

/// Discards everything recorded so far (current thread + retired threads).
/// Call at the start of a run whose telemetry should stand alone.
pub fn reset() {
    with_sink(|s| {
        let _ = s.take_data();
    });
    retired()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Drains everything recorded since the last [`reset`]/[`collect`] into a
/// [`RunTelemetry`]: counters sum, gauges take the maximum, histograms
/// merge, and span events aggregate per hierarchical path.
pub fn collect() -> RunTelemetry {
    let mut sinks: Vec<SinkData> = Vec::new();
    let _ = SINK.try_with(|s| sinks.push(s.take_data()));
    {
        let mut retired = retired().lock().unwrap_or_else(PoisonError::into_inner);
        sinks.append(&mut retired);
    }

    let mut telemetry = RunTelemetry::empty();
    let mut span_index: HashMap<String, usize> = HashMap::new();
    for sink in &sinks {
        for (slot, value) in telemetry.counters.iter_mut().zip(sink.counters) {
            slot.1 = slot.1.saturating_add(value);
        }
        for (slot, value) in telemetry.gauges.iter_mut().zip(sink.gauges) {
            slot.1 = slot.1.max(value);
        }
        for (slot, h) in telemetry.histograms.iter_mut().zip(&sink.hists) {
            slot.1.merge(h);
        }
        telemetry.snapshots.extend(sink.snapshots.iter().cloned());
        aggregate_events(&sink.events, &mut telemetry.spans, &mut span_index);
    }
    telemetry.snapshots.sort_by_key(|s| (s.elapsed_ns, s.level));
    telemetry
}

/// Renders one span path segment.
fn segment(label: &'static str, arg: &SpanArg) -> String {
    match arg {
        SpanArg::None => label.to_string(),
        SpanArg::Int(v) => format!("{label}:{v}"),
        SpanArg::Str(v) => format!("{label}:{v}"),
        SpanArg::Owned(v) => format!("{label}:{v}"),
    }
}

/// Replays one thread's event stream, charging durations to hierarchical
/// paths. Spans left open (a run aborted mid-span) are closed at the
/// stream's last timestamp.
fn aggregate_events(
    events: &[Event],
    spans: &mut Vec<SpanStat>,
    index: &mut HashMap<String, usize>,
) {
    let last_t = events.last().map_or(0, |e| e.t_ns);
    let mut intern = |spans: &mut Vec<SpanStat>, path: String| -> usize {
        if let Some(&i) = index.get(&path) {
            return i;
        }
        spans.push(SpanStat {
            path: path.clone(),
            count: 0,
            total_ns: 0,
        });
        index.insert(path, spans.len() - 1);
        spans.len() - 1
    };
    // (segment, aggregate index, begin timestamp) per open span.
    let mut stack: Vec<(String, usize, u64)> = Vec::new();
    let mut path = String::new();
    for event in events {
        match event.kind {
            EventKind::Begin => {
                let seg = segment(event.label, &event.arg);
                if !path.is_empty() {
                    path.push_str(" > ");
                }
                path.push_str(&seg);
                let idx = intern(spans, path.clone());
                stack.push((seg, idx, event.t_ns));
            }
            EventKind::End => {
                let Some((seg, idx, begin)) = stack.pop() else {
                    continue; // unmatched end: drop defensively
                };
                spans[idx].count += 1;
                spans[idx].total_ns += event.t_ns.saturating_sub(begin);
                truncate_path(&mut path, &seg);
            }
            EventKind::Instant => {
                let seg = segment(event.label, &event.arg);
                let full = if path.is_empty() {
                    seg
                } else {
                    format!("{path} > {seg}")
                };
                let idx = intern(spans, full);
                spans[idx].count += 1;
            }
        }
    }
    while let Some((seg, idx, begin)) = stack.pop() {
        spans[idx].count += 1;
        spans[idx].total_ns += last_t.saturating_sub(begin);
        truncate_path(&mut path, &seg);
    }
}

fn truncate_path(path: &mut String, last_segment: &str) {
    let new_len = path
        .len()
        .saturating_sub(last_segment.len())
        .saturating_sub(if path.len() > last_segment.len() {
            3
        } else {
            0
        });
    path.truncate(new_len);
}

/// Serialises tests that drain the process-global recorder (`collect` /
/// `reset`). Sinks of *exited* test threads can still land in RETIRED
/// between a reset() and a collect() (thread teardown is outside the
/// lock), so test assertions filter to the labels each test records.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_serial as serial;

    #[test]
    fn spans_nest_into_paths() {
        let _guard = serial();
        reset();
        {
            let _a = SpanGuard::enter("mine", SpanArg::None);
            {
                let _b = SpanGuard::enter("level", SpanArg::Int(1));
            }
            {
                let _c = SpanGuard::enter("level", SpanArg::Int(2));
                instant("trip", SpanArg::Str("budget"));
            }
        }
        let t = collect();
        let spans: Vec<&SpanStat> = t
            .spans
            .iter()
            .filter(|s| s.path.starts_with("mine"))
            .collect();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "mine",
                "mine > level:1",
                "mine > level:2",
                "mine > level:2 > trip:budget"
            ]
        );
        assert_eq!(spans[0].count, 1);
        assert_eq!(spans[3].total_ns, 0, "instant events carry no duration");
        assert!(spans[0].total_ns + 1 >= spans[1].total_ns + spans[2].total_ns);
    }

    #[test]
    fn job_span_attributes_work_to_its_tenant() {
        let _guard = serial();
        reset();
        {
            let _s = SpanGuard::enter("serve", SpanArg::None);
            let job = String::from("j-0000000001");
            crate::job_span!(job, tenant "acme");
            let _m = SpanGuard::enter("mine", SpanArg::None);
        }
        let t = collect();
        let paths: Vec<&str> = t.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(
            paths.contains(&"serve > tenant:acme > job:j-0000000001 > mine"),
            "paths: {paths:?}"
        );
    }

    #[test]
    fn uptime_gauge_merges_monotonically() {
        let _guard = serial();
        reset();
        // Out-of-order and cross-thread samples: max-merge keeps the gauge
        // monotone, which is what makes it a valid uptime.
        gauge_max(GaugeId::ServeUptimeMs, 120);
        gauge_max(GaugeId::ServeUptimeMs, 80);
        let h = std::thread::spawn(|| {
            gauge_max(GaugeId::ServeUptimeMs, 100);
            crate::flush_thread!();
        });
        h.join().expect("gauge thread");
        let t = collect();
        assert_eq!(t.gauge(GaugeId::ServeUptimeMs), 120);
    }

    #[test]
    fn counters_gauges_hists_merge_across_threads() {
        let _guard = serial();
        reset();
        counter_add(CounterId::MineCandidatesGenerated, 2);
        gauge_max(GaugeId::MineScratchPoolBytes, 10);
        hist_record(HistId::MineLevelLatencyNs, 5);
        std::thread::scope(|scope| {
            for i in 0..2u64 {
                scope.spawn(move || {
                    counter_add(CounterId::MineCandidatesGenerated, 3 + i);
                    gauge_max(GaugeId::MineScratchPoolBytes, 100 * (i + 1));
                    hist_record(HistId::MineLevelLatencyNs, 50);
                    flush_thread();
                });
            }
        });
        let t = collect();
        assert_eq!(t.counter(CounterId::MineCandidatesGenerated), 2 + 3 + 4);
        assert_eq!(t.gauge(GaugeId::MineScratchPoolBytes), 200);
        let h = t
            .histogram(HistId::MineLevelLatencyNs)
            .cloned()
            .unwrap_or_default();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 50);
    }

    #[test]
    fn collect_drains_and_validates() {
        let _guard = serial();
        reset();
        counter_add(CounterId::PolarityItemsPruned, 7);
        let first = collect();
        assert_eq!(first.counter(CounterId::PolarityItemsPruned), 7);
        assert!(first.validate().is_ok());
        let second = collect();
        assert_eq!(second.counter(CounterId::PolarityItemsPruned), 0);
    }

    #[test]
    fn open_spans_are_closed_at_collect() {
        let _guard = serial();
        reset();
        let guard = SpanGuard::enter("open-span-test", SpanArg::None);
        instant("checkpoint", SpanArg::None);
        let t = collect();
        let open = t
            .spans
            .iter()
            .find(|s| s.path == "open-span-test")
            .map(|s| s.count);
        assert_eq!(open, Some(1));
        drop(guard); // late end after drain: lands in the next collection
        reset();
    }

    #[test]
    fn snapshots_sort_by_elapsed() {
        let _guard = serial();
        reset();
        for (level, elapsed) in [(2u64, 20u64), (1, 10)] {
            record_snapshot(SnapshotSample {
                level,
                elapsed_ns: elapsed,
                deadline_remaining_ns: None,
                itemsets: level,
                candidate_bytes: 0,
                tree_nodes: 0,
            });
        }
        let t = collect();
        assert_eq!(t.snapshots.len(), 2);
        assert_eq!(t.snapshots[0].level, 1);
        assert_eq!(t.snapshots[1].level, 2);
    }

    #[test]
    fn snapshot_tap_sees_samples_before_collect() {
        let _guard = serial();
        reset();
        // The tap is process-global and first-install-wins; use a static
        // collector and assert on this test's unique sample values so other
        // tests' snapshots flowing through it are harmless.
        static SEEN: std::sync::Mutex<Vec<SnapshotSample>> = std::sync::Mutex::new(Vec::new());
        struct Tap;
        impl crate::SnapshotObserver for Tap {
            fn on_snapshot(&self, sample: &SnapshotSample) {
                SEEN.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(sample.clone());
            }
        }
        let installed = set_snapshot_observer(Box::new(Tap));
        let again = set_snapshot_observer(Box::new(Tap));
        assert!(installed || !again, "at most one install succeeds");
        record_snapshot(SnapshotSample {
            level: 777,
            elapsed_ns: 1,
            deadline_remaining_ns: None,
            itemsets: 9,
            candidate_bytes: 0,
            tree_nodes: 0,
        });
        let seen = SEEN.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(
            seen.iter().any(|s| s.level == 777 && s.itemsets == 9),
            "tap saw the sample synchronously"
        );
        drop(seen);
        // The sample still lands in the sink for the end-of-run artifact.
        let t = collect();
        assert!(t.snapshots.iter().any(|s| s.level == 777));
    }

    #[test]
    fn span_guard_is_zero_sized_even_when_enabled() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
