//! Dependency-free JSON for the telemetry artifact: a string-escaping
//! writer helper (mirroring `hdx_core::json`) and a minimal recursive-descent
//! parser, needed because [`crate::RunTelemetry`] round-trips
//! (serialize → deserialize → equal) for schema-stability tests and the CI
//! `validate-telemetry` gate.
//!
//! Numbers are kept as their raw source text ([`Json::Num`]) so integer
//! telemetry values survive the round trip exactly, without float
//! conversion.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw text for lossless integer round trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, when it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (RFC 8259).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
    // Validate by parsing as f64; keep the raw text for exactness.
    raw.parse::<f64>()
        .map_err(|_| format!("invalid number `{raw}` at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".to_string());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num("42".into()));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num("-1.5e3".into()));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": null}], "c": "x", "d": {}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("d").and_then(Json::as_obj), Some(&[][..]));
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "{1:2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_handles_specials_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        // And the parser inverts it.
        let original = "quote\" back\\ nl\n tab\t ctl\u{2} done";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "z");
        assert_eq!(obj[1].0, "a");
    }
}
