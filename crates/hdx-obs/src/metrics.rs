//! The typed metrics registry: every counter, gauge, and histogram the
//! pipeline records, with its stable telemetry name.
//!
//! Names follow the convention `hdx.<crate>.<stage>.<name>` (see DESIGN.md
//! §11). The registry is closed — adding a metric means adding an enum
//! variant here — which keeps recording an array index instead of a string
//! lookup and lets [`crate::RunTelemetry::validate`] check that a telemetry
//! artifact carries every registered counter.

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Candidate itemsets generated (all miners): `hdx.mining.candidates.generated`.
    MineCandidatesGenerated,
    /// Candidates discarded for support below `min_sup`: `hdx.mining.candidates.pruned_support`.
    MineCandidatesPrunedSupport,
    /// Candidates discarded by the one-item-per-attribute rule: `hdx.mining.candidates.pruned_attr`.
    MineCandidatesPrunedAttr,
    /// Apriori candidates discarded by the subset (anti-monotonicity) check: `hdx.mining.candidates.pruned_subset`.
    MineCandidatesPrunedSubset,
    /// Frequent itemsets emitted into results: `hdx.mining.itemsets.emitted`.
    MineItemsetsEmitted,
    /// Subtree roots stolen from another worker's deque by the parallel
    /// miner's work-stealing scheduler: `hdx.mining.sched.steals`.
    MineSchedSteals,
    /// Idle parks (yield-and-resweep passes) of parallel-miner workers that
    /// found no local, injected, or stealable work: `hdx.mining.sched.parks`.
    MineSchedParks,
    /// Items excluded from a polarity-restricted mine (§V-C): `hdx.core.polarity.pruned_items`.
    PolarityItemsPruned,
    /// Itemsets found by both polarity mines and deduplicated: `hdx.core.polarity.deduped_itemsets`.
    PolarityItemsetsDeduped,
    /// Discretization splits accepted into a tree: `hdx.discretize.split.accepted`.
    DiscretizeSplitsAccepted,
    /// Candidate splits evaluated but rejected (no gain / support): `hdx.discretize.split.rejected`.
    DiscretizeSplitsRejected,
    /// Governor trips with `Termination::BudgetExhausted`: `hdx.governor.trip.budget_exhausted`.
    GovernorTripBudget,
    /// Governor trips with `Termination::DeadlineExceeded`: `hdx.governor.trip.deadline_exceeded`.
    GovernorTripDeadline,
    /// Governor trips with `Termination::Cancelled`: `hdx.governor.trip.cancelled`.
    GovernorTripCancelled,
    /// Armed fail points that fired: `hdx.governor.failpoint.hits`.
    GovernorFailpointHits,
    /// Itemsets charged against the run budget: `hdx.governor.budget.itemsets`.
    GovernorItemsetsCharged,
    /// Candidate-cover bytes charged against the run budget: `hdx.governor.budget.candidate_bytes`.
    GovernorCandidateBytesCharged,
    /// Discretization-tree nodes charged against the run budget: `hdx.governor.budget.tree_nodes`.
    GovernorTreeNodesCharged,
    /// Checkpoints written durably: `hdx.checkpoint.write.count`.
    CheckpointWrites,
    /// Envelope bytes written durably: `hdx.checkpoint.write.bytes`.
    CheckpointWriteBytes,
    /// Checkpoint writes that failed (non-fatal): `hdx.checkpoint.write.failed`.
    CheckpointWritesFailed,
    /// Checkpoints loaded successfully: `hdx.checkpoint.load.count`.
    CheckpointLoads,
    /// Checkpoint files rejected as corrupt during load: `hdx.checkpoint.load.rejected`.
    CheckpointLoadsRejected,
    /// Non-finite continuous cells quarantined to missing during ingestion: `hdx.data.quarantine.cells`.
    DataCellsQuarantined,
    /// Malformed rows quarantined (dropped) during ingestion: `hdx.data.quarantine.rows`.
    DataRowsQuarantined,
    /// Cells nulled by the missing-value injector: `hdx.datasets.missing.injected`.
    DatasetsNullsInjected,
    /// Jobs admitted by the mining service: `hdx.serve.jobs.submitted`.
    ServeJobsSubmitted,
    /// Service jobs that finished with a result (complete or partial):
    /// `hdx.serve.jobs.completed`.
    ServeJobsCompleted,
    /// Service jobs that failed permanently (retry budget spent or
    /// non-retryable error): `hdx.serve.jobs.failed`.
    ServeJobsFailed,
    /// Transiently failed service jobs re-enqueued with backoff:
    /// `hdx.serve.jobs.retried`.
    ServeJobsRetried,
    /// Submissions shed by admission control (429 + `Retry-After`):
    /// `hdx.serve.admission.shed`.
    ServeRequestsShed,
    /// Orphaned incomplete jobs resumed by the startup scan:
    /// `hdx.serve.recovery.resumed`.
    ServeJobsResumed,
    /// Worker threads respawned after a panic escaped a job:
    /// `hdx.serve.worker.respawned`.
    ServeWorkerRespawned,
    /// Rows appended to an ingest WAL's open segment: `hdx.ingest.wal.rows_appended`.
    IngestRowsAppended,
    /// WAL commits (fsync of the open segment, the durability ack point):
    /// `hdx.ingest.wal.commits`.
    IngestCommits,
    /// Open segments sealed into envelope segments: `hdx.ingest.wal.segments_sealed`.
    IngestSegmentsSealed,
    /// Torn/corrupt frames quarantined by WAL recovery:
    /// `hdx.ingest.recover.frames_quarantined`.
    IngestFramesQuarantined,
    /// Bytes moved aside by WAL recovery quarantine:
    /// `hdx.ingest.recover.bytes_quarantined`.
    IngestBytesQuarantined,
    /// Rows folded into a live lattice view: `hdx.ingest.fold.rows_applied`.
    IngestFoldRowsApplied,
    /// Itemset accumulators touched by single-row folds:
    /// `hdx.ingest.fold.itemsets_touched`.
    IngestFoldItemsetsTouched,
    /// Rows accepted by `POST /jobs/<id>/append`: `hdx.serve.ingest.appends`.
    ServeIngestAppends,
    /// Append requests shed by ingest backpressure (429 + `Retry-After`):
    /// `hdx.serve.ingest.shed`.
    ServeIngestShed,
    /// Incremental re-mines triggered by appended rows: `hdx.serve.ingest.remines`.
    ServeIngestRemines,
}

impl CounterId {
    /// Every registered counter, in telemetry order.
    pub const ALL: [CounterId; 43] = [
        CounterId::MineCandidatesGenerated,
        CounterId::MineCandidatesPrunedSupport,
        CounterId::MineCandidatesPrunedAttr,
        CounterId::MineCandidatesPrunedSubset,
        CounterId::MineItemsetsEmitted,
        CounterId::MineSchedSteals,
        CounterId::MineSchedParks,
        CounterId::PolarityItemsPruned,
        CounterId::PolarityItemsetsDeduped,
        CounterId::DiscretizeSplitsAccepted,
        CounterId::DiscretizeSplitsRejected,
        CounterId::GovernorTripBudget,
        CounterId::GovernorTripDeadline,
        CounterId::GovernorTripCancelled,
        CounterId::GovernorFailpointHits,
        CounterId::GovernorItemsetsCharged,
        CounterId::GovernorCandidateBytesCharged,
        CounterId::GovernorTreeNodesCharged,
        CounterId::CheckpointWrites,
        CounterId::CheckpointWriteBytes,
        CounterId::CheckpointWritesFailed,
        CounterId::CheckpointLoads,
        CounterId::CheckpointLoadsRejected,
        CounterId::DataCellsQuarantined,
        CounterId::DataRowsQuarantined,
        CounterId::DatasetsNullsInjected,
        CounterId::ServeJobsSubmitted,
        CounterId::ServeJobsCompleted,
        CounterId::ServeJobsFailed,
        CounterId::ServeJobsRetried,
        CounterId::ServeRequestsShed,
        CounterId::ServeJobsResumed,
        CounterId::ServeWorkerRespawned,
        CounterId::IngestRowsAppended,
        CounterId::IngestCommits,
        CounterId::IngestSegmentsSealed,
        CounterId::IngestFramesQuarantined,
        CounterId::IngestBytesQuarantined,
        CounterId::IngestFoldRowsApplied,
        CounterId::IngestFoldItemsetsTouched,
        CounterId::ServeIngestAppends,
        CounterId::ServeIngestShed,
        CounterId::ServeIngestRemines,
    ];

    /// Number of registered counters.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable telemetry name (`hdx.<crate>.<stage>.<name>`).
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::MineCandidatesGenerated => "hdx.mining.candidates.generated",
            CounterId::MineCandidatesPrunedSupport => "hdx.mining.candidates.pruned_support",
            CounterId::MineCandidatesPrunedAttr => "hdx.mining.candidates.pruned_attr",
            CounterId::MineCandidatesPrunedSubset => "hdx.mining.candidates.pruned_subset",
            CounterId::MineItemsetsEmitted => "hdx.mining.itemsets.emitted",
            CounterId::MineSchedSteals => "hdx.mining.sched.steals",
            CounterId::MineSchedParks => "hdx.mining.sched.parks",
            CounterId::PolarityItemsPruned => "hdx.core.polarity.pruned_items",
            CounterId::PolarityItemsetsDeduped => "hdx.core.polarity.deduped_itemsets",
            CounterId::DiscretizeSplitsAccepted => "hdx.discretize.split.accepted",
            CounterId::DiscretizeSplitsRejected => "hdx.discretize.split.rejected",
            CounterId::GovernorTripBudget => "hdx.governor.trip.budget_exhausted",
            CounterId::GovernorTripDeadline => "hdx.governor.trip.deadline_exceeded",
            CounterId::GovernorTripCancelled => "hdx.governor.trip.cancelled",
            CounterId::GovernorFailpointHits => "hdx.governor.failpoint.hits",
            CounterId::GovernorItemsetsCharged => "hdx.governor.budget.itemsets",
            CounterId::GovernorCandidateBytesCharged => "hdx.governor.budget.candidate_bytes",
            CounterId::GovernorTreeNodesCharged => "hdx.governor.budget.tree_nodes",
            CounterId::CheckpointWrites => "hdx.checkpoint.write.count",
            CounterId::CheckpointWriteBytes => "hdx.checkpoint.write.bytes",
            CounterId::CheckpointWritesFailed => "hdx.checkpoint.write.failed",
            CounterId::CheckpointLoads => "hdx.checkpoint.load.count",
            CounterId::CheckpointLoadsRejected => "hdx.checkpoint.load.rejected",
            CounterId::DataCellsQuarantined => "hdx.data.quarantine.cells",
            CounterId::DataRowsQuarantined => "hdx.data.quarantine.rows",
            CounterId::DatasetsNullsInjected => "hdx.datasets.missing.injected",
            CounterId::ServeJobsSubmitted => "hdx.serve.jobs.submitted",
            CounterId::ServeJobsCompleted => "hdx.serve.jobs.completed",
            CounterId::ServeJobsFailed => "hdx.serve.jobs.failed",
            CounterId::ServeJobsRetried => "hdx.serve.jobs.retried",
            CounterId::ServeRequestsShed => "hdx.serve.admission.shed",
            CounterId::ServeJobsResumed => "hdx.serve.recovery.resumed",
            CounterId::ServeWorkerRespawned => "hdx.serve.worker.respawned",
            CounterId::IngestRowsAppended => "hdx.ingest.wal.rows_appended",
            CounterId::IngestCommits => "hdx.ingest.wal.commits",
            CounterId::IngestSegmentsSealed => "hdx.ingest.wal.segments_sealed",
            CounterId::IngestFramesQuarantined => "hdx.ingest.recover.frames_quarantined",
            CounterId::IngestBytesQuarantined => "hdx.ingest.recover.bytes_quarantined",
            CounterId::IngestFoldRowsApplied => "hdx.ingest.fold.rows_applied",
            CounterId::IngestFoldItemsetsTouched => "hdx.ingest.fold.itemsets_touched",
            CounterId::ServeIngestAppends => "hdx.serve.ingest.appends",
            CounterId::ServeIngestShed => "hdx.serve.ingest.shed",
            CounterId::ServeIngestRemines => "hdx.serve.ingest.remines",
        }
    }

    /// One-line description used as the `# HELP` text of the Prometheus
    /// exposition ([`crate::expo`]).
    pub const fn help(self) -> &'static str {
        match self {
            CounterId::MineCandidatesGenerated => "Candidate itemsets generated by all miners.",
            CounterId::MineCandidatesPrunedSupport => {
                "Candidates discarded for support below min_sup."
            }
            CounterId::MineCandidatesPrunedAttr => {
                "Candidates discarded by the one-item-per-attribute rule."
            }
            CounterId::MineCandidatesPrunedSubset => {
                "Apriori candidates discarded by the subset (anti-monotonicity) check."
            }
            CounterId::MineItemsetsEmitted => "Frequent itemsets emitted into results.",
            CounterId::MineSchedSteals => {
                "Subtree roots stolen from another worker's deque by the parallel miner."
            }
            CounterId::MineSchedParks => {
                "Idle parks of parallel-miner workers that found no work to claim or steal."
            }
            CounterId::PolarityItemsPruned => "Items excluded from a polarity-restricted mine.",
            CounterId::PolarityItemsetsDeduped => {
                "Itemsets found by both polarity mines and deduplicated."
            }
            CounterId::DiscretizeSplitsAccepted => "Discretization splits accepted into a tree.",
            CounterId::DiscretizeSplitsRejected => {
                "Candidate splits evaluated but rejected (no gain / support)."
            }
            CounterId::GovernorTripBudget => "Governor trips with Termination::BudgetExhausted.",
            CounterId::GovernorTripDeadline => "Governor trips with Termination::DeadlineExceeded.",
            CounterId::GovernorTripCancelled => "Governor trips with Termination::Cancelled.",
            CounterId::GovernorFailpointHits => "Armed fail points that fired.",
            CounterId::GovernorItemsetsCharged => "Itemsets charged against the run budget.",
            CounterId::GovernorCandidateBytesCharged => {
                "Candidate-cover bytes charged against the run budget."
            }
            CounterId::GovernorTreeNodesCharged => {
                "Discretization-tree nodes charged against the run budget."
            }
            CounterId::CheckpointWrites => "Checkpoints written durably.",
            CounterId::CheckpointWriteBytes => "Envelope bytes written durably.",
            CounterId::CheckpointWritesFailed => "Checkpoint writes that failed (non-fatal).",
            CounterId::CheckpointLoads => "Checkpoints loaded successfully.",
            CounterId::CheckpointLoadsRejected => {
                "Checkpoint files rejected as corrupt during load."
            }
            CounterId::DataCellsQuarantined => {
                "Non-finite continuous cells quarantined to missing during ingestion."
            }
            CounterId::DataRowsQuarantined => {
                "Malformed rows quarantined (dropped) during ingestion."
            }
            CounterId::DatasetsNullsInjected => "Cells nulled by the missing-value injector.",
            CounterId::ServeJobsSubmitted => "Jobs admitted by the mining service.",
            CounterId::ServeJobsCompleted => {
                "Service jobs that finished with a result (complete or partial)."
            }
            CounterId::ServeJobsFailed => "Service jobs that failed permanently.",
            CounterId::ServeJobsRetried => {
                "Transiently failed service jobs re-enqueued with backoff."
            }
            CounterId::ServeRequestsShed => "Submissions shed by admission control (429).",
            CounterId::ServeJobsResumed => "Orphaned incomplete jobs resumed by the startup scan.",
            CounterId::ServeWorkerRespawned => "Worker threads respawned after a panic.",
            CounterId::IngestRowsAppended => "Rows appended to an ingest WAL's open segment.",
            CounterId::IngestCommits => {
                "WAL commits (fsync of the open segment, the durability ack point)."
            }
            CounterId::IngestSegmentsSealed => "Open WAL segments sealed into envelope segments.",
            CounterId::IngestFramesQuarantined => {
                "Torn or corrupt frames quarantined by WAL recovery."
            }
            CounterId::IngestBytesQuarantined => "Bytes moved aside by WAL recovery quarantine.",
            CounterId::IngestFoldRowsApplied => "Rows folded into a live lattice view.",
            CounterId::IngestFoldItemsetsTouched => {
                "Itemset accumulators touched by single-row folds."
            }
            CounterId::ServeIngestAppends => "Rows accepted by POST /jobs/<id>/append.",
            CounterId::ServeIngestShed => "Append requests shed by ingest backpressure (429).",
            CounterId::ServeIngestRemines => "Incremental re-mines triggered by appended rows.",
        }
    }
}

/// Point-in-time values. Concurrent recordings merge by **maximum** (the
/// interesting value for a sizing gauge is its high-water mark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Bytes held by the vertical miner's per-root scratch pools: `hdx.mining.scratch_pool.bytes`.
    MineScratchPoolBytes,
    /// Nodes interned across all discretization trees: `hdx.discretize.tree.nodes`.
    DiscretizeTreeNodes,
    /// Milliseconds since the serving process started:
    /// `hdx.serve.process.uptime_ms`. Monotonic by construction — gauges
    /// merge by maximum and the source clock never goes backwards.
    ServeUptimeMs,
    /// High-water depth of the service's bounded job queue:
    /// `hdx.serve.queue.depth`.
    ServeQueueDepth,
}

impl GaugeId {
    /// Every registered gauge, in telemetry order.
    pub const ALL: [GaugeId; 4] = [
        GaugeId::MineScratchPoolBytes,
        GaugeId::DiscretizeTreeNodes,
        GaugeId::ServeUptimeMs,
        GaugeId::ServeQueueDepth,
    ];

    /// Number of registered gauges.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable telemetry name (`hdx.<crate>.<stage>.<name>`).
    pub const fn name(self) -> &'static str {
        match self {
            GaugeId::MineScratchPoolBytes => "hdx.mining.scratch_pool.bytes",
            GaugeId::DiscretizeTreeNodes => "hdx.discretize.tree.nodes",
            GaugeId::ServeUptimeMs => "hdx.serve.process.uptime_ms",
            GaugeId::ServeQueueDepth => "hdx.serve.queue.depth",
        }
    }

    /// One-line description used as the `# HELP` text of the Prometheus
    /// exposition ([`crate::expo`]).
    pub const fn help(self) -> &'static str {
        match self {
            GaugeId::MineScratchPoolBytes => {
                "High-water bytes held by the vertical miner's per-root scratch pools."
            }
            GaugeId::DiscretizeTreeNodes => {
                "High-water nodes interned across all discretization trees."
            }
            GaugeId::ServeUptimeMs => "Milliseconds since the serving process started.",
            GaugeId::ServeQueueDepth => "High-water depth of the service's bounded job queue.",
        }
    }
}

/// Latency / size distributions (values are nanoseconds unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Wall time of one Apriori mining level: `hdx.mining.level.latency_ns`.
    MineLevelLatencyNs,
    /// Wall time of one `best_split` gain evaluation: `hdx.discretize.split.gain_eval_ns`.
    DiscretizeSplitGainNs,
    /// One timed iteration of a bench harness run: `hdx.bench.iter.latency_ns`.
    BenchIterNs,
}

impl HistId {
    /// Every registered histogram, in telemetry order.
    pub const ALL: [HistId; 3] = [
        HistId::MineLevelLatencyNs,
        HistId::DiscretizeSplitGainNs,
        HistId::BenchIterNs,
    ];

    /// Number of registered histograms.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable telemetry name (`hdx.<crate>.<stage>.<name>`).
    pub const fn name(self) -> &'static str {
        match self {
            HistId::MineLevelLatencyNs => "hdx.mining.level.latency_ns",
            HistId::DiscretizeSplitGainNs => "hdx.discretize.split.gain_eval_ns",
            HistId::BenchIterNs => "hdx.bench.iter.latency_ns",
        }
    }

    /// One-line description used as the `# HELP` text of the Prometheus
    /// exposition ([`crate::expo`]).
    pub const fn help(self) -> &'static str {
        match self {
            HistId::MineLevelLatencyNs => "Wall nanoseconds of one Apriori mining level.",
            HistId::DiscretizeSplitGainNs => "Wall nanoseconds of one best_split gain evaluation.",
            HistId::BenchIterNs => "Wall nanoseconds of one timed bench-harness iteration.",
        }
    }
}

/// Aggregated histogram state: count/sum/extrema plus log₂ buckets
/// (`buckets[i]` counts values with `bit_length == i`, i.e. in
/// `[2^(i-1), 2^i)`), which is precise enough for latency percentiles at
/// 16 bytes per bucket and merges losslessly across threads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistStat {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Log₂ bucket counts; index = number of significant bits of the value.
    pub buckets: Vec<u64>,
}

/// Number of log₂ buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 65;

impl HistStat {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        if self.buckets.len() != HIST_BUCKETS {
            self.buckets.resize(HIST_BUCKETS, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Merges another histogram into this one (lossless for bucket counts).
    pub fn merge(&mut self, other: &HistStat) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() != HIST_BUCKETS {
            self.buckets.resize(HIST_BUCKETS, 0);
        }
        for (b, v) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += v;
        }
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge of the bucket holding the `q`-quantile (`q` in `[0, 1]`);
    /// a factor-of-two estimate, which is what log₂ buckets can offer.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_follow_convention() {
        for c in CounterId::ALL {
            let name = c.name();
            assert!(name.starts_with("hdx."), "{name}");
            assert_eq!(name.split('.').count(), 4, "{name}");
        }
        for g in GaugeId::ALL {
            assert_eq!(g.name().split('.').count(), 4, "{}", g.name());
        }
        for h in HistId::ALL {
            assert_eq!(h.name().split('.').count(), 4, "{}", h.name());
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = CounterId::ALL
            .iter()
            .map(|c| c.name())
            .chain(GaugeId::ALL.iter().map(|g| g.name()))
            .chain(HistId::ALL.iter().map(|h| h.name()))
            .collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn enum_discriminants_match_all_order() {
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, g) in GaugeId::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = HistStat::new();
        a.record(4);
        a.record(100);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 104);
        assert_eq!(a.min, 4);
        assert_eq!(a.max, 100);
        let mut b = HistStat::new();
        b.record(1);
        b.merge(&a);
        assert_eq!(b.count, 3);
        assert_eq!(b.min, 1);
        assert_eq!(b.max, 100);
        assert_eq!(b.sum, 105);
        let empty = HistStat::new();
        b.merge(&empty);
        assert_eq!(b.count, 3);
        assert!(b.mean() > 34.9 && b.mean() < 35.1);
    }

    #[test]
    fn quantile_bound_is_a_power_of_two_envelope() {
        let mut h = HistStat::new();
        for v in [3u64, 5, 9, 1000] {
            h.record(v);
        }
        assert!(h.quantile_upper_bound(0.5) >= 5);
        assert!(h.quantile_upper_bound(1.0) >= 1000);
        assert_eq!(HistStat::new().quantile_upper_bound(0.5), 0);
    }
}
