//! Shared wall-clock timing helpers, so benches and production code measure
//! through the same path: every sample is also recorded into the
//! `hdx.bench.iter.latency_ns` histogram (a no-op when the recorder is
//! disabled), replacing the ad-hoc `Instant` loops that used to live in
//! `hdx-bench`.

use crate::metrics::HistId;
use std::time::Instant;

/// Median wall time of `iters` runs of `f`, in nanoseconds (`iters` is
/// clamped to at least 1). Each sample flows through [`sample_ns`].
pub fn median_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1))
        .map(|_| sample_ns(&mut f) as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One timed run of `f`, in nanoseconds, recorded into the bench-iteration
/// histogram.
pub fn sample_ns(f: &mut impl FnMut()) -> u64 {
    let start = Instant::now();
    f();
    let ns = start.elapsed().as_nanos() as u64;
    crate::hist_record(HistId::BenchIterNs, ns);
    ns
}

/// Runs `f` once, returning its result and the wall nanoseconds it took
/// (also recorded into the bench-iteration histogram).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let start = Instant::now();
    let result = f();
    let ns = start.elapsed().as_nanos() as u64;
    crate::hist_record(HistId::BenchIterNs, ns);
    (result, ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_samples_is_middle() {
        let mut calls = 0u32;
        let ns = median_ns(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(ns >= 0.0);
    }

    #[test]
    fn measure_returns_value_and_duration() {
        let (value, ns) = measure(|| 6 * 7);
        assert_eq!(value, 42);
        // Monotonic clocks can report 0ns for trivial closures; just make
        // sure a real sleep registers.
        let (_, slept) = measure(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(slept >= 1_000_000, "{slept}");
        let _ = ns;
    }
}
