//! # hdx-obs
//!
//! Zero-cost-when-disabled observability for the H-DivExplorer pipeline:
//! hierarchical spans (`discretize > attr:<name> > split`,
//! `mine > level:<k>`, `explore > polarity:<sign>`), a typed metrics
//! registry (counters / gauges / histograms, names
//! `hdx.<crate>.<stage>.<name>`), and the versioned [`RunTelemetry`] JSON
//! artifact the CLI writes via `--metrics-out` and `hdx-bench` embeds in
//! `BENCH_*.json`. Re-exported as `hdx_core::obs`.
//!
//! ## The zero-cost contract
//!
//! Recording macros expand under `#[cfg(feature = "obs")]` — evaluated in
//! the **calling** crate, exactly like `hdx_governor::fail_point!`. An
//! instrumented crate declares its own `obs` feature forwarding to
//! `hdx-obs/obs`; without it every macro expands to *nothing* (arguments
//! are not even evaluated) and the entry points below compile to empty
//! inline stubs with zero-sized guard types. The artifact types
//! ([`RunTelemetry`], [`CounterId`], …) are always available, so consumers
//! of telemetry files need no features at all.
//!
//! ## Recording
//!
//! ```
//! use hdx_obs as obs;
//!
//! obs::reset();
//! {
//!     obs::span!("mine");
//!     for level in 1..=2u64 {
//!         obs::span!("level", int level);
//!         obs::counter_add!(MineCandidatesGenerated, 10);
//!         obs::counter_add!(MineCandidatesPrunedSupport, 4);
//!     }
//! }
//! let telemetry = obs::collect();
//! telemetry.validate().unwrap();
//! // With `obs` off (the default) nothing was recorded:
//! // telemetry == RunTelemetry::empty().
//! ```
//!
//! Spans are per-thread (a guard is `!Send`); each thread owns a lock-free
//! event buffer with monotonic timestamps, merged by [`collect`]. Worker
//! threads call [`flush_thread!`] at the end of their closure so their
//! buffers are visible to a `collect()` on the spawning thread. See
//! DESIGN.md §11 for the span taxonomy and the schema version policy.

/// Minimal JSON escaping/parsing helpers for the telemetry artifact.
pub mod json;
/// The typed metrics registry: counter / gauge / histogram identifiers.
pub mod metrics;
/// The versioned [`RunTelemetry`] artifact: schema, JSON round-trip,
/// validation and the human summary table.
pub mod telemetry;

/// Prometheus text-format 0.0.4 exposition of the registry, with its
/// hand-rolled grammar self-check.
pub mod expo;

/// Bridge forwarding recorded spans/events to a `tracing` subscriber.
#[cfg(feature = "obs-tracing")]
pub mod bridge;

pub use metrics::{CounterId, GaugeId, HistId, HistStat, HIST_BUCKETS};
pub use telemetry::{RunTelemetry, SchedRates, SnapshotSample, SpanStat, TELEMETRY_SCHEMA};

/// A live tap over governor budget samples, called synchronously from
/// [`record_snapshot`] on the recording thread *before* the sample lands in
/// the thread-local sink. Installed process-globally (at most once) via
/// [`set_snapshot_observer`]; hdx-serve uses it to stream per-level
/// progress to `GET /jobs/<id>/events` while a mine is still running.
/// Implementations must be cheap and non-blocking — they run inside the
/// miner's level loop.
pub trait SnapshotObserver: Send + Sync {
    /// Called for every recorded sample, on the thread that recorded it.
    fn on_snapshot(&self, sample: &SnapshotSample);
}

/// The optional argument of a span segment, rendered as `label:arg`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanArg {
    /// Bare label.
    None,
    /// Numeric argument (mining level, worker index).
    Int(i64),
    /// Static string argument (polarity sign, algorithm name).
    Str(&'static str),
    /// Runtime string argument (attribute name).
    Owned(String),
}

/// The lock behind the recorder's retired-sink registry, swapped for the
/// `hdx-loom` modeled twin under `--cfg hdx_loom` so the models in
/// `tests/loom_models.rs` drive the *real* flush/collect hand-off through
/// every interleaving (see DESIGN.md §13 and `cargo xtask sanitize`).
#[cfg(all(feature = "obs", not(hdx_loom)))]
pub(crate) mod sync {
    pub(crate) use std::sync::{Mutex, PoisonError};
}
/// `hdx-loom` twin of the `sync` facade (active under `--cfg hdx_loom`).
#[cfg(all(feature = "obs", hdx_loom))]
pub(crate) mod sync {
    pub(crate) use hdx_loom::sync::{Mutex, PoisonError};
}

#[cfg(feature = "obs")]
mod record;
#[cfg(feature = "obs")]
pub use record::{
    collect, counter_add, flush_thread, gauge_max, gauge_set, hist_record, instant, now_ns,
    record_snapshot, reset, set_snapshot_observer, time_hist_fn, SpanGuard,
};

#[cfg(not(feature = "obs"))]
mod stub {
    //! Inline no-op twins of the `record` API, compiled when `obs` is off.
    //! Everything here is empty and zero-sized so instrumentation vanishes.

    use crate::metrics::{CounterId, GaugeId, HistId};
    use crate::telemetry::{RunTelemetry, SnapshotSample};
    use crate::SpanArg;
    use std::marker::PhantomData;

    /// Zero-sized no-op span guard (the disabled twin of the recorder's).
    #[derive(Debug)]
    pub struct SpanGuard {
        _not_send: PhantomData<*const ()>,
    }

    impl SpanGuard {
        /// Does nothing; returns a zero-sized guard.
        #[inline(always)]
        pub fn enter(_label: &'static str, _arg: SpanArg) -> Self {
            Self {
                _not_send: PhantomData,
            }
        }
    }

    /// Does nothing.
    #[inline(always)]
    pub fn instant(_label: &'static str, _arg: SpanArg) {}

    /// Does nothing.
    #[inline(always)]
    pub fn counter_add(_id: CounterId, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn gauge_max(_id: GaugeId, _value: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn gauge_set(_id: GaugeId, _value: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn hist_record(_id: HistId, _value: u64) {}

    /// Runs `f` without timing it.
    #[inline(always)]
    pub fn time_hist_fn<R>(_id: HistId, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Does nothing.
    #[inline(always)]
    pub fn record_snapshot(_sample: SnapshotSample) {}

    /// Does nothing.
    #[inline(always)]
    pub fn reset() {}

    /// Returns an empty artifact (every registered metric at zero).
    #[inline(always)]
    pub fn collect() -> RunTelemetry {
        RunTelemetry::empty()
    }

    /// Always 0 when disabled.
    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Does nothing.
    #[inline(always)]
    pub fn flush_thread() {}

    /// Drops the observer and reports `false`: with `obs` off nothing ever
    /// records a snapshot, so no tap can be installed.
    #[inline(always)]
    pub fn set_snapshot_observer(_observer: Box<dyn crate::SnapshotObserver>) -> bool {
        false
    }
}
#[cfg(not(feature = "obs"))]
pub use stub::{
    collect, counter_add, flush_thread, gauge_max, gauge_set, hist_record, instant, now_ns,
    record_snapshot, reset, set_snapshot_observer, time_hist_fn, SpanGuard,
};

/// Wall-clock timing helpers shared by benches and the CLI (every sample
/// also lands in the `hdx.bench.iter.latency_ns` histogram).
pub mod timing;

/// Opens a hierarchical span for the rest of the enclosing scope.
///
/// `span!("mine")`, `span!("level", int k)`, `span!("polarity", str "+")`,
/// `span!("attr", owned name.to_string())`. Expands to nothing (arguments
/// unevaluated) unless the calling crate enables its `obs` feature.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        #[cfg(feature = "obs")]
        let _hdx_obs_span = $crate::SpanGuard::enter($label, $crate::SpanArg::None);
    };
    ($label:expr, int $arg:expr) => {
        #[cfg(feature = "obs")]
        let _hdx_obs_span = $crate::SpanGuard::enter($label, $crate::SpanArg::Int($arg as i64));
    };
    ($label:expr, str $arg:expr) => {
        #[cfg(feature = "obs")]
        let _hdx_obs_span = $crate::SpanGuard::enter($label, $crate::SpanArg::Str($arg));
    };
    ($label:expr, owned $arg:expr) => {
        #[cfg(feature = "obs")]
        let _hdx_obs_span = $crate::SpanGuard::enter($label, $crate::SpanArg::Owned($arg));
    };
}

/// Records an instantaneous event under the current span (same argument
/// forms as [`span!`]). Zero-cost without the calling crate's `obs`.
#[macro_export]
macro_rules! event {
    ($label:expr) => {
        #[cfg(feature = "obs")]
        $crate::instant($label, $crate::SpanArg::None);
    };
    ($label:expr, int $arg:expr) => {
        #[cfg(feature = "obs")]
        $crate::instant($label, $crate::SpanArg::Int($arg as i64));
    };
    ($label:expr, str $arg:expr) => {
        #[cfg(feature = "obs")]
        $crate::instant($label, $crate::SpanArg::Str($arg));
    };
    ($label:expr, owned $arg:expr) => {
        #[cfg(feature = "obs")]
        $crate::instant($label, $crate::SpanArg::Owned($arg));
    };
}

/// Opens the service's per-job attribution spans for the rest of the
/// enclosing scope: a `tenant:<tenant>` span wrapping a `job:<job_id>`
/// span, so every child span, event, and snapshot recorded while a job
/// executes lands under a `... > tenant:<t> > job:<id> > ...` path in
/// [`RunTelemetry`] and service telemetry stays attributable per tenant.
/// `job_span!(job_id, tenant tenant_name)` — both arguments are anything
/// `Display`able. Zero-cost without the calling crate's `obs`.
#[macro_export]
macro_rules! job_span {
    ($job_id:expr, tenant $tenant:expr) => {
        #[cfg(feature = "obs")]
        let _hdx_obs_tenant_span =
            $crate::SpanGuard::enter("tenant", $crate::SpanArg::Owned($tenant.to_string()));
        #[cfg(feature = "obs")]
        let _hdx_obs_job_span =
            $crate::SpanGuard::enter("job", $crate::SpanArg::Owned($job_id.to_string()));
    };
}

/// Adds to a registered counter by bare variant name:
/// `counter_add!(MineCandidatesGenerated, 1)`. Zero-cost without the
/// calling crate's `obs`.
#[macro_export]
macro_rules! counter_add {
    ($id:ident, $n:expr) => {
        #[cfg(feature = "obs")]
        $crate::counter_add($crate::CounterId::$id, $n as u64);
    };
}

/// Raises a registered gauge to a new high-water mark:
/// `gauge_max!(MineScratchPoolBytes, bytes)`. Zero-cost without the
/// calling crate's `obs`.
#[macro_export]
macro_rules! gauge_max {
    ($id:ident, $value:expr) => {
        #[cfg(feature = "obs")]
        $crate::gauge_max($crate::GaugeId::$id, $value as u64);
    };
}

/// Records one value into a registered histogram:
/// `hist_record!(MineLevelLatencyNs, ns)`. Zero-cost without the calling
/// crate's `obs`.
#[macro_export]
macro_rules! hist_record {
    ($id:ident, $value:expr) => {
        #[cfg(feature = "obs")]
        $crate::hist_record($crate::HistId::$id, $value as u64);
    };
}

/// Flushes the calling worker thread's recording buffer so a `collect()`
/// on the spawning thread sees it. Call at the end of every scoped-thread
/// closure that records anything (scoped threads count as finished before
/// their thread-local destructors run). Zero-cost without the calling
/// crate's `obs`.
#[macro_export]
macro_rules! flush_thread {
    () => {
        #[cfg(feature = "obs")]
        $crate::flush_thread();
    };
}

/// Evaluates an expression, recording its wall time into a histogram:
/// `let split = time_hist!(DiscretizeSplitGainNs, best_split(...));`
/// Without the calling crate's `obs` this is exactly the expression.
#[macro_export]
macro_rules! time_hist {
    ($id:ident, $e:expr) => {{
        #[cfg(feature = "obs")]
        {
            $crate::time_hist_fn($crate::HistId::$id, || $e)
        }
        #[cfg(not(feature = "obs"))]
        {
            $e
        }
    }};
}

#[cfg(all(test, not(feature = "obs")))]
mod disabled_tests {
    //! The compile-time no-op contract: without `obs`, guards are
    //! zero-sized and *any* recording sequence collects to the empty
    //! artifact.

    use super::*;

    #[test]
    fn span_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert_eq!(
            std::mem::size_of_val(&SpanGuard::enter("x", SpanArg::None)),
            0
        );
    }

    #[test]
    fn macros_expand_to_nothing_without_the_feature() {
        crate::span!("mine");
        crate::span!("level", int 3);
        crate::job_span!("j-1", tenant "acme");
        crate::event!("trip", str "budget");
        crate::counter_add!(MineCandidatesGenerated, 1);
        crate::gauge_max!(MineScratchPoolBytes, 100);
        crate::hist_record!(MineLevelLatencyNs, 5);
        crate::flush_thread!();
        let three = crate::time_hist!(BenchIterNs, 1 + 2);
        assert_eq!(three, 3);
        assert_eq!(collect(), RunTelemetry::empty());
        assert_eq!(now_ns(), 0);
    }

    /// Property test (hand-rolled, deterministic PRNG): for hundreds of
    /// random recording sequences, the disabled recorder still collects
    /// to the empty artifact.
    #[test]
    fn any_recording_sequence_collects_empty() {
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = move || {
            // SplitMix64 step — deterministic across runs and platforms.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        struct NopTap;
        impl SnapshotObserver for NopTap {
            fn on_snapshot(&self, _sample: &SnapshotSample) {
                unreachable!("disabled builds never install a tap");
            }
        }
        for case in 0..256 {
            let len = (next() % 64) as usize;
            for _ in 0..len {
                match next() % 7 {
                    0 => {
                        let _g = SpanGuard::enter("p", SpanArg::Int(1));
                    }
                    1 => instant("q", SpanArg::Str("s")),
                    2 => counter_add(CounterId::MineItemsetsEmitted, 3),
                    3 => gauge_set(GaugeId::DiscretizeTreeNodes, 9),
                    4 => hist_record(HistId::BenchIterNs, 17),
                    5 => assert!(
                        !set_snapshot_observer(Box::new(NopTap)),
                        "disabled tap install must refuse"
                    ),
                    _ => record_snapshot(SnapshotSample {
                        level: 1,
                        elapsed_ns: 2,
                        deadline_remaining_ns: Some(3),
                        itemsets: 4,
                        candidate_bytes: 5,
                        tree_nodes: 6,
                    }),
                }
            }
            assert_eq!(collect(), RunTelemetry::empty(), "case {case}");
        }
    }
}

#[cfg(all(test, feature = "obs"))]
mod enabled_macro_tests {
    //! The macros drive the real recorder when `obs` is on (hdx-obs's own
    //! `obs` feature doubles as its calling-crate gate here).

    use super::*;

    #[test]
    fn macros_record_through_the_real_recorder() {
        let _serial = crate::record::test_serial();
        {
            crate::span!("macro-test");
            crate::counter_add!(DiscretizeSplitsAccepted, 2);
            crate::event!("tick", int 7);
        }
        let sum: u64 = crate::time_hist!(BenchIterNs, (0..10u64).sum());
        assert_eq!(sum, 45);
        let t = collect();
        assert!(t.spans.iter().any(|s| s.path == "macro-test"));
        assert!(t.spans.iter().any(|s| s.path == "macro-test > tick:7"));
        assert!(t.counter(CounterId::DiscretizeSplitsAccepted) >= 2);
        assert!(t
            .histogram(HistId::BenchIterNs)
            .is_some_and(|h| h.count >= 1));
    }
}
