//! The machine-readable run artifact: [`RunTelemetry`], its versioned JSON
//! schema (writer *and* parser, so artifacts round-trip), structural
//! validation for CI gates, and the human-readable per-stage summary table
//! behind the CLI's `--trace-summary`.
//!
//! Schema policy (DESIGN.md §11): the schema string is
//! `hdx-obs/telemetry/v<N>`; field *renames or removals* bump `N`, additive
//! fields do not. Consumers must ignore unknown fields.

use crate::json::{self, Json};
use crate::metrics::{CounterId, GaugeId, HistId, HistStat};
use std::fmt::Write as _;

/// Version tag written into every artifact.
pub const TELEMETRY_SCHEMA: &str = "hdx-obs/telemetry/v1";

/// One aggregated span path, e.g. `explore > polarity:+ > mine > level:2`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Hierarchical path, segments joined with ` > `.
    pub path: String,
    /// How many times the span was entered (instant events count too).
    pub count: u64,
    /// Total nanoseconds spent inside the span (0 for instant events).
    pub total_ns: u64,
}

/// A governor budget sample taken mid-run (see
/// `hdx_governor::GovernorSnapshot`), stamped with the sampling context.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSample {
    /// Mining level (or 0 for end-of-stage samples).
    pub level: u64,
    /// Nanoseconds since the governed run started.
    pub elapsed_ns: u64,
    /// Nanoseconds until the deadline (`None` for unbounded runs).
    pub deadline_remaining_ns: Option<u64>,
    /// Itemsets charged so far.
    pub itemsets: u64,
    /// Candidate-cover bytes charged so far.
    pub candidate_bytes: u64,
    /// Tree nodes charged so far.
    pub tree_nodes: u64,
}

/// Scheduler-utilization rates derived from the work-stealing counters
/// (`hdx.mining.sched.*`), normalized per thousand emitted itemsets so runs
/// of different sizes compare. Computed on demand — never stored in the
/// artifact — and written into JSON under the additive `derived` key, which
/// parsers ignore (schema policy), keeping the round-trip identity intact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedRates {
    /// Raw `hdx.mining.sched.steals` count.
    pub steals: u64,
    /// Raw `hdx.mining.sched.parks` count.
    pub parks: u64,
    /// Steals per 1000 emitted itemsets (0.0 when nothing was emitted).
    pub steals_per_1k_itemsets: f64,
    /// Parks per 1000 emitted itemsets (0.0 when nothing was emitted).
    pub parks_per_1k_itemsets: f64,
}

/// Everything one run recorded, ready to serialize. Counters, gauges, and
/// histograms always carry **every** registered metric (zeros included) so
/// downstream gates can tell "not recorded" from "dropped from the schema".
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Schema version tag ([`TELEMETRY_SCHEMA`]).
    pub schema: String,
    /// Aggregated spans in first-seen order.
    pub spans: Vec<SpanStat>,
    /// Counter name → value, in registry order.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → high-water mark, in registry order.
    pub gauges: Vec<(String, u64)>,
    /// Histogram name → aggregated distribution, in registry order.
    pub histograms: Vec<(String, HistStat)>,
    /// Governor budget samples in elapsed order.
    pub snapshots: Vec<SnapshotSample>,
}

impl Default for RunTelemetry {
    fn default() -> Self {
        Self::empty()
    }
}

impl RunTelemetry {
    /// An artifact with every registered metric present at zero — what a
    /// disabled-obs build collects.
    pub fn empty() -> Self {
        Self {
            schema: TELEMETRY_SCHEMA.to_string(),
            spans: Vec::new(),
            counters: CounterId::ALL
                .iter()
                .map(|c| (c.name().to_string(), 0))
                .collect(),
            gauges: GaugeId::ALL
                .iter()
                .map(|g| (g.name().to_string(), 0))
                .collect(),
            histograms: HistId::ALL
                .iter()
                .map(|h| (h.name().to_string(), HistStat::new()))
                .collect(),
            snapshots: Vec::new(),
        }
    }

    /// The value of a counter by registry id (0 when absent).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counter_named(id.name())
    }

    /// The value of a counter by telemetry name (0 when absent).
    pub fn counter_named(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The high-water mark of a gauge (0 when absent).
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == id.name())
            .map_or(0, |(_, v)| *v)
    }

    /// The aggregated histogram for `id`, when recorded.
    pub fn histogram(&self, id: HistId) -> Option<&HistStat> {
        self.histograms
            .iter()
            .find(|(n, _)| n == id.name())
            .map(|(_, h)| h)
    }

    /// The derived scheduler rates ([`SchedRates`]) for this artifact.
    pub fn sched_rates(&self) -> SchedRates {
        let steals = self.counter(CounterId::MineSchedSteals);
        let parks = self.counter(CounterId::MineSchedParks);
        let emitted = self.counter(CounterId::MineItemsetsEmitted);
        let per_1k = |n: u64| {
            if emitted == 0 {
                0.0
            } else {
                n as f64 * 1000.0 / emitted as f64
            }
        };
        SchedRates {
            steals,
            parks,
            steals_per_1k_itemsets: per_1k(steals),
            parks_per_1k_itemsets: per_1k(parks),
        }
    }

    /// Folds another artifact into this one, the cross-*collection* analogue
    /// of the per-thread sink merge: counters add and gauges take the
    /// maximum (by name — names absent here are appended), histograms merge
    /// losslessly, spans add count/total by path, and snapshots concatenate
    /// in elapsed order. Used by long-lived processes (hdx-serve) that
    /// aggregate periodic [`crate::collect`] drains into one fleet view.
    pub fn merge_from(&mut self, other: &RunTelemetry) {
        for s in &other.spans {
            if let Some(mine) = self.spans.iter_mut().find(|m| m.path == s.path) {
                mine.count += s.count;
                mine.total_ns += s.total_ns;
            } else {
                self.spans.push(s.clone());
            }
        }
        for (name, v) in &other.counters {
            if let Some((_, mine)) = self.counters.iter_mut().find(|(n, _)| n == name) {
                *mine += v;
            } else {
                self.counters.push((name.clone(), *v));
            }
        }
        for (name, v) in &other.gauges {
            if let Some((_, mine)) = self.gauges.iter_mut().find(|(n, _)| n == name) {
                *mine = (*mine).max(*v);
            } else {
                self.gauges.push((name.clone(), *v));
            }
        }
        for (name, h) in &other.histograms {
            if let Some((_, mine)) = self.histograms.iter_mut().find(|(n, _)| n == name) {
                mine.merge(h);
            } else {
                self.histograms.push((name.clone(), h.clone()));
            }
        }
        self.snapshots.extend(other.snapshots.iter().cloned());
        self.snapshots.sort_by_key(|s| s.elapsed_ns);
    }

    /// Total nanoseconds of the spans whose *last* path segment is `stage`
    /// (children are separate paths, so nothing is double-counted). A query
    /// without an argument matches any argument: `mine` covers both a bare
    /// `mine` segment and `mine:vertical`, while `mine:vertical` matches
    /// only that exact segment.
    pub fn stage_total_ns(&self, stage: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| {
                let last = s.path.rsplit(" > ").next().unwrap_or("");
                last == stage || (!stage.contains(':') && last.split(':').next() == Some(stage))
            })
            .map(|s| s.total_ns)
            .sum()
    }

    /// Structural validation: schema version matches and every registered
    /// counter/gauge/histogram name is present. This is the CI `obs-smoke`
    /// gate — a partial (exit-code-3) run must still pass it.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != TELEMETRY_SCHEMA {
            return Err(format!(
                "schema mismatch: got `{}`, want `{TELEMETRY_SCHEMA}`",
                self.schema
            ));
        }
        let mut missing = Vec::new();
        for c in CounterId::ALL {
            if !self.counters.iter().any(|(n, _)| n == c.name()) {
                missing.push(c.name());
            }
        }
        for g in GaugeId::ALL {
            if !self.gauges.iter().any(|(n, _)| n == g.name()) {
                missing.push(g.name());
            }
        }
        for h in HistId::ALL {
            if !self.histograms.iter().any(|(n, _)| n == h.name()) {
                missing.push(h.name());
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "missing registered metrics: {}",
                missing.join(", ")
            ))
        }
    }

    /// Validates that each named stage has a span with non-zero time — the
    /// stronger gate for *complete* runs (`discretize`, `mine`, `explore`).
    pub fn validate_stages(&self, stages: &[&str]) -> Result<(), String> {
        let dead: Vec<&str> = stages
            .iter()
            .copied()
            .filter(|stage| self.stage_total_ns(stage) == 0)
            .collect();
        if dead.is_empty() {
            Ok(())
        } else {
            Err(format!("stages with no recorded time: {}", dead.join(", ")))
        }
    }

    /// Serializes to the versioned JSON artifact (stable field names,
    /// 2-space indent, deterministic order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json::escape(&self.schema));
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}}}{comma}",
                json::escape(&s.path),
                s.count,
                s.total_ns
            );
        }
        out.push_str(if self.spans.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = write!(out, "\n    \"{}\": {value}{comma}", json::escape(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = write!(out, "\n    \"{}\": {value}{comma}", json::escape(name));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let mut buckets = String::new();
            for (b, &n) in h.buckets.iter().enumerate().filter(|(_, &n)| n > 0) {
                if !buckets.is_empty() {
                    buckets.push_str(", ");
                }
                let _ = write!(buckets, "[{b}, {n}]");
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"buckets\": [{buckets}]}}{comma}",
                json::escape(name),
                h.count,
                h.sum,
                h.min,
                h.max
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let rates = self.sched_rates();
        let _ = write!(
            out,
            "  \"derived\": {{\"sched\": {{\"steals\": {}, \"parks\": {}, \
             \"steals_per_1k_itemsets\": {:.3}, \"parks_per_1k_itemsets\": {:.3}}}}},\n",
            rates.steals, rates.parks, rates.steals_per_1k_itemsets, rates.parks_per_1k_itemsets
        );
        out.push_str("  \"snapshots\": [");
        for (i, s) in self.snapshots.iter().enumerate() {
            let comma = if i + 1 < self.snapshots.len() {
                ","
            } else {
                ""
            };
            let deadline = s
                .deadline_remaining_ns
                .map_or("null".to_string(), |d| d.to_string());
            let _ = write!(
                out,
                "\n    {{\"level\": {}, \"elapsed_ns\": {}, \"deadline_remaining_ns\": {deadline}, \
                 \"itemsets\": {}, \"candidate_bytes\": {}, \"tree_nodes\": {}}}{comma}",
                s.level, s.elapsed_ns, s.itemsets, s.candidate_bytes, s.tree_nodes
            );
        }
        out.push_str(if self.snapshots.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses an artifact back from JSON. Unknown fields are ignored
    /// (schema policy); missing sections default to empty.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing `schema` field")?
            .to_string();
        let mut spans = Vec::new();
        for s in doc.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
            spans.push(SpanStat {
                path: s
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or("span without `path`")?
                    .to_string(),
                count: u64_field(s, "count")?,
                total_ns: u64_field(s, "total_ns")?,
            });
        }
        let counters = u64_map(&doc, "counters")?;
        let gauges = u64_map(&doc, "gauges")?;
        let mut histograms = Vec::new();
        for (name, h) in doc.get("histograms").and_then(Json::as_obj).unwrap_or(&[]) {
            let mut stat = HistStat::new();
            stat.count = u64_field(h, "count")?;
            stat.sum = u64_field(h, "sum")?;
            stat.min = u64_field(h, "min")?;
            stat.max = u64_field(h, "max")?;
            for pair in h.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                let Some([b, n]) = pair
                    .as_arr()
                    .and_then(|p| p.get(..2))
                    .map(|p| [&p[0], &p[1]])
                else {
                    return Err(format!("histogram `{name}`: malformed bucket pair"));
                };
                let idx = b
                    .as_u64()
                    .ok_or_else(|| format!("histogram `{name}`: non-integer bucket index"))?
                    as usize;
                if idx >= stat.buckets.len() {
                    return Err(format!(
                        "histogram `{name}`: bucket index {idx} out of range"
                    ));
                }
                stat.buckets[idx] = n
                    .as_u64()
                    .ok_or_else(|| format!("histogram `{name}`: non-integer bucket count"))?;
            }
            histograms.push((name.clone(), stat));
        }
        let mut snapshots = Vec::new();
        for s in doc.get("snapshots").and_then(Json::as_arr).unwrap_or(&[]) {
            let deadline = match s.get("deadline_remaining_ns") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("snapshot with non-integer `deadline_remaining_ns`")?,
                ),
            };
            snapshots.push(SnapshotSample {
                level: u64_field(s, "level")?,
                elapsed_ns: u64_field(s, "elapsed_ns")?,
                deadline_remaining_ns: deadline,
                itemsets: u64_field(s, "itemsets")?,
                candidate_bytes: u64_field(s, "candidate_bytes")?,
                tree_nodes: u64_field(s, "tree_nodes")?,
            });
        }
        Ok(Self {
            schema,
            spans,
            counters,
            gauges,
            histograms,
            snapshots,
        })
    }

    /// Renders the per-stage summary table (`--trace-summary`): spans in
    /// first-seen order with counts and total milliseconds, followed by the
    /// non-zero counters and gauges.
    pub fn summary_table(&self) -> String {
        let mut rows: Vec<[String; 3]> = vec![[
            "stage".to_string(),
            "count".to_string(),
            "total_ms".to_string(),
        ]];
        for s in &self.spans {
            rows.push([
                s.path.clone(),
                s.count.to_string(),
                format!("{:.3}", s.total_ns as f64 / 1e6),
            ]);
        }
        if self.spans.is_empty() {
            rows.push([
                "(no spans recorded)".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        let mut out = render_rows(&rows);
        let nonzero: Vec<[String; 2]> = self
            .counters
            .iter()
            .map(|(n, v)| (n, *v))
            .chain(self.gauges.iter().map(|(n, v)| (n, *v)))
            .filter(|(_, v)| *v > 0)
            .map(|(n, v)| [n.clone(), v.to_string()])
            .collect();
        if !nonzero.is_empty() {
            let mut rows: Vec<[String; 2]> =
                vec![["counter/gauge".to_string(), "value".to_string()]];
            rows.extend(nonzero);
            out.push('\n');
            out.push_str(&render_rows(&rows));
        }
        out
    }
}

/// Aligns rows into a plain-text table (first row = header).
fn render_rows<const N: usize>(rows: &[[String; N]]) -> String {
    let widths: [usize; N] =
        std::array::from_fn(|c| rows.iter().map(|r| r[c].chars().count()).max().unwrap_or(0));
    let mut out = String::new();
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            if c + 1 < N {
                out.push_str(&" ".repeat(widths[c].saturating_sub(cell.chars().count())));
            }
        }
        out.push('\n');
    }
    out
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}` field"))
}

fn u64_map(doc: &Json, key: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (name, value) in doc.get(key).and_then(Json::as_obj).unwrap_or(&[]) {
        let v = value
            .as_u64()
            .ok_or_else(|| format!("`{key}` entry `{name}` is not a non-negative integer"))?;
        out.push((name.clone(), v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> RunTelemetry {
        let mut t = RunTelemetry::empty();
        t.spans = vec![
            SpanStat {
                path: "discretize".into(),
                count: 1,
                total_ns: 1_500_000,
            },
            SpanStat {
                path: "discretize > attr:age > split".into(),
                count: 7,
                total_ns: 900_000,
            },
            SpanStat {
                path: "explore > mine > level:2".into(),
                count: 1,
                total_ns: 2_000,
            },
            SpanStat {
                path: "explore > mine:vertical".into(),
                count: 1,
                total_ns: 3_000,
            },
        ];
        t.counters[0].1 = 42;
        t.gauges[0].1 = 4096;
        let mut h = HistStat::new();
        h.record(100);
        h.record(900);
        t.histograms[0].1 = h;
        t.snapshots = vec![
            SnapshotSample {
                level: 1,
                elapsed_ns: 10,
                deadline_remaining_ns: None,
                itemsets: 3,
                candidate_bytes: 64,
                tree_nodes: 0,
            },
            SnapshotSample {
                level: 2,
                elapsed_ns: 20,
                deadline_remaining_ns: Some(5_000),
                itemsets: 9,
                candidate_bytes: 128,
                tree_nodes: 0,
            },
        ];
        t
    }

    #[test]
    fn json_round_trip_is_identity() {
        for t in [RunTelemetry::empty(), populated()] {
            let parsed = RunTelemetry::from_json(&t.to_json()).unwrap();
            assert_eq!(parsed, t);
        }
    }

    #[test]
    fn validate_accepts_empty_and_rejects_missing_counters() {
        assert!(RunTelemetry::empty().validate().is_ok());
        let mut t = populated();
        t.counters.remove(0);
        let err = t.validate().unwrap_err();
        assert!(err.contains("hdx.mining.candidates.generated"), "{err}");
        let mut t = populated();
        t.schema = "hdx-obs/telemetry/v0".into();
        assert!(t.validate().unwrap_err().contains("schema mismatch"));
    }

    #[test]
    fn stage_totals_match_last_segment_only() {
        let t = populated();
        assert_eq!(t.stage_total_ns("discretize"), 1_500_000);
        assert_eq!(t.stage_total_ns("split"), 900_000);
        assert_eq!(t.stage_total_ns("level:2"), 2_000);
        // A bare query matches any argument; an argumented query is exact.
        assert_eq!(t.stage_total_ns("mine"), 3_000, "matches mine:vertical");
        assert_eq!(t.stage_total_ns("mine:vertical"), 3_000);
        assert_eq!(t.stage_total_ns("mine:apriori"), 0);
        assert_eq!(t.stage_total_ns("attr"), 0, "attr is never a last segment");
        assert!(t.validate_stages(&["discretize", "mine"]).is_ok());
        assert!(t.validate_stages(&["mine:apriori"]).is_err());
    }

    #[test]
    fn parser_ignores_unknown_fields_and_defaults_missing_sections() {
        let t = RunTelemetry::from_json("{\"schema\": \"hdx-obs/telemetry/v1\", \"extra\": [1]}")
            .unwrap();
        assert_eq!(t.schema, TELEMETRY_SCHEMA);
        assert!(t.spans.is_empty());
        assert!(t.counters.is_empty());
        // ... which validate() then correctly rejects.
        assert!(t.validate().is_err());
    }

    #[test]
    fn parser_reports_malformed_artifacts() {
        assert!(RunTelemetry::from_json("{}").is_err());
        assert!(RunTelemetry::from_json("not json").is_err());
        let bad_counter = "{\"schema\": \"s\", \"counters\": {\"a\": -1}}";
        assert!(RunTelemetry::from_json(bad_counter).is_err());
        let bad_bucket = "{\"schema\": \"s\", \"histograms\": {\"h\": {\"count\": 1, \"sum\": 1, \
             \"min\": 1, \"max\": 1, \"buckets\": [[99999, 1]]}}}";
        assert!(RunTelemetry::from_json(bad_bucket).is_err());
    }

    #[test]
    fn summary_table_lists_spans_and_nonzero_metrics() {
        let table = populated().summary_table();
        assert!(table.contains("discretize > attr:age > split"));
        assert!(table.contains("hdx.mining.candidates.generated"));
        assert!(table.contains("1.500"));
        assert!(
            !table.contains("hdx.governor.trip.cancelled"),
            "zeros omitted"
        );
        let empty = RunTelemetry::empty().summary_table();
        assert!(empty.contains("(no spans recorded)"));
    }

    #[test]
    fn sched_rates_normalize_per_thousand_itemsets() {
        let mut t = RunTelemetry::empty();
        let idx = |id: CounterId| id as usize;
        t.counters[idx(CounterId::MineSchedSteals)].1 = 6;
        t.counters[idx(CounterId::MineSchedParks)].1 = 3;
        t.counters[idx(CounterId::MineItemsetsEmitted)].1 = 2000;
        let rates = t.sched_rates();
        assert_eq!(rates.steals, 6);
        assert!((rates.steals_per_1k_itemsets - 3.0).abs() < 1e-9);
        assert!((rates.parks_per_1k_itemsets - 1.5).abs() < 1e-9);
        // Nothing emitted: rates pin to zero rather than dividing by zero.
        let zero = RunTelemetry::empty().sched_rates();
        assert!(zero.steals_per_1k_itemsets.abs() < 1e-9);
        // The derived block is serialized but never parsed back (round-trip
        // identity over the stored fields is covered above).
        assert!(t.to_json().contains("\"steals_per_1k_itemsets\": 3.000"));
    }

    #[test]
    fn merge_from_adds_counters_maxes_gauges_and_merges_hists() {
        let mut a = populated();
        let mut b = populated();
        b.counters[0].1 = 8;
        b.gauges[0].1 = 100; // below a's 4096 high-water
        b.spans.push(SpanStat {
            path: "serve > job".into(),
            count: 2,
            total_ns: 50,
        });
        b.counters.push(("custom.counter.name.x".into(), 7));
        a.merge_from(&b);
        assert_eq!(a.counter_named("hdx.mining.candidates.generated"), 50);
        assert_eq!(a.gauges[0].1, 4096);
        assert_eq!(a.counter_named("custom.counter.name.x"), 7);
        assert_eq!(a.histograms[0].1.count, 4, "2 + 2 recorded values");
        let span = a.spans.iter().find(|s| s.path == "discretize").unwrap();
        assert_eq!(span.count, 2);
        assert_eq!(span.total_ns, 3_000_000);
        assert_eq!(a.snapshots.len(), 4);
        assert!(a
            .snapshots
            .windows(2)
            .all(|w| w[0].elapsed_ns <= w[1].elapsed_ns));
        assert!(a.validate().is_ok());
    }

    #[test]
    fn snapshots_round_trip_with_and_without_deadline() {
        let t = populated();
        let parsed = RunTelemetry::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed.snapshots[0].deadline_remaining_ns, None);
        assert_eq!(parsed.snapshots[1].deadline_remaining_ns, Some(5_000));
    }
}
