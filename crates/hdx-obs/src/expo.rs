//! Prometheus text-format 0.0.4 exposition for the typed registry.
//!
//! Like [`crate::telemetry`], this is artifact-layer code: always compiled,
//! no features required, consumable by a scraper whether or not the process
//! recorded anything. [`Exposition`] is a small builder that renders one
//! scrape page; [`render_registry`] maps a [`RunTelemetry`] onto it
//! (counters as `<name>_total`, gauges verbatim, histograms as cumulative
//! `_bucket`/`_sum`/`_count` families with exact `le` edges for the log₂
//! buckets); and [`check_grammar`] is a hand-rolled validator for the
//! exposition grammar, used both as this module's self-test (the same
//! pattern as hdx-lint's SARIF round-trip) and by the CI serve-smoke job
//! via `hdx validate-metrics`.
//!
//! Metric names translate from the registry's dotted convention by
//! replacing every non-alphanumeric byte with `_`:
//! `hdx.mining.sched.steals` → `hdx_mining_sched_steals_total`.

use crate::metrics::{CounterId, GaugeId, HistId, HistStat};
use crate::telemetry::RunTelemetry;
use std::collections::HashMap;
use std::fmt::Write as _;

/// The `Content-Type` a 0.0.4 exposition endpoint must answer with.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Translates a dotted registry name into a Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): non-alphanumeric bytes become `_`, and a
/// leading digit is prefixed with `_`.
pub fn metric_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 1);
    for (i, c) in dotted.chars().enumerate() {
        if c.is_ascii_alphanumeric() {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a `# HELP` text: backslashes and line feeds only (0.0.4 rules).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, and line feed.
fn escape_label(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Builder for one scrape page. Families render in call order; each call
/// emits the family's `# HELP`/`# TYPE` header followed by its samples, so
/// the output is grouped the way the grammar requires by construction.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One counter family (`<name>` should already carry the `_total`
    /// suffix per Prometheus convention).
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, "counter", help);
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabeled gauge. Values render via `f64`'s shortest form, so
    /// integral gauges stay integral (`2`, not `2.0`).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, "gauge", help);
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One gauge family with a single label dimension, one sample per
    /// `(label value, sample value)` pair.
    pub fn labeled_gauge(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        samples: &[(String, f64)],
    ) {
        self.header(name, "gauge", help);
        for (value, sample) in samples {
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{}\"}} {sample}",
                escape_label(value)
            );
        }
    }

    /// One histogram family from an aggregated [`HistStat`]. Log₂ bucket
    /// `i` holds values with `bit_length == i`, i.e. `value <= 2^i - 1`
    /// cumulatively, so the `le` edges are exact for the integer samples
    /// the registry records.
    pub fn histogram(&mut self, name: &str, help: &str, h: &HistStat) {
        self.header(name, "histogram", help);
        let mut cumulative = 0u64;
        let last = h
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i.min(62));
        for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
            cumulative += n;
            let le = (1u64 << i) - 1;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(self.out, "{name}_sum {}", h.sum);
        let _ = writeln!(self.out, "{name}_count {}", h.count);
    }

    /// The finished page (always newline-terminated).
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders every registered metric of a [`RunTelemetry`] onto `page`:
/// counters (suffixed `_total`), gauges, and histograms, in registry order.
/// Spans and snapshots have no exposition mapping and are skipped.
pub fn render_registry(page: &mut Exposition, telemetry: &RunTelemetry) {
    for id in CounterId::ALL {
        let name = format!("{}_total", metric_name(id.name()));
        page.counter(&name, id.help(), telemetry.counter(id));
    }
    for id in GaugeId::ALL {
        page.gauge(
            &metric_name(id.name()),
            id.help(),
            telemetry.gauge(id) as f64,
        );
    }
    for id in HistId::ALL {
        let empty = HistStat::new();
        let h = telemetry.histogram(id).unwrap_or(&empty);
        page.histogram(&metric_name(id.name()), id.help(), h);
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Per-family state accumulated by [`check_grammar`].
#[derive(Debug, Default)]
struct FamilyCheck {
    kind: Option<String>,
    samples: u64,
    /// `(le, cumulative count)` pairs in appearance order (histograms).
    buckets: Vec<(f64, f64)>,
    sum: bool,
    count_value: Option<f64>,
}

/// The metric family a sample name belongs to: histogram series suffixes
/// fold onto their declared base family.
fn family_of<'a>(name: &'a str, families: &HashMap<String, FamilyCheck>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families
                .get(base)
                .is_some_and(|f| f.kind.as_deref() == Some("histogram"))
            {
                return base;
            }
        }
    }
    name
}

/// Splits a sample line into `(name, labels, value)`; the optional
/// trailing timestamp is validated and discarded.
fn parse_sample(line: &str) -> Result<(&str, Vec<(String, String)>, f64), String> {
    let (name_part, rest) = match line.find(['{', ' ', '\t']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err("sample line has no value".into()),
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name `{name_part}`"));
    }
    let mut labels = Vec::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}').ok_or("unterminated label set")?;
        let (label_text, tail) = (&body[..close], &body[close + 1..]);
        let mut cursor = label_text;
        while !cursor.is_empty() {
            let eq = cursor.find('=').ok_or("label without `=`")?;
            let label = &cursor[..eq];
            if !valid_label_name(label) {
                return Err(format!("invalid label name `{label}`"));
            }
            let after = cursor[eq + 1..]
                .strip_prefix('"')
                .ok_or("label value is not quoted")?;
            // Scan the escaped value for its closing quote.
            let mut value = String::new();
            let mut chars = after.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => match chars.next().map(|(_, e)| e) {
                        Some('\\') => value.push('\\'),
                        Some('"') => value.push('"'),
                        Some('n') => value.push('\n'),
                        _ => return Err("bad escape in label value".into()),
                    },
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    c => value.push(c),
                }
            }
            let end = end.ok_or("unterminated label value")?;
            labels.push((label.to_string(), value));
            cursor = after[end + 1..].trim_start_matches(',');
        }
        tail
    } else {
        rest
    };
    let mut parts = rest.split_ascii_whitespace();
    let value: f64 = parts
        .next()
        .ok_or("sample line has no value")?
        .parse()
        .map_err(|_| "sample value is not a float".to_string())?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| "sample timestamp is not an integer".to_string())?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".into());
    }
    Ok((name_part, labels, value))
}

/// Validates a page against the text-format 0.0.4 grammar plus the
/// structural rules scrapers rely on: valid metric/label names, quoted and
/// escaped label values, float-parseable sample values, `# TYPE` declared
/// at most once per family and before its samples, one family's lines kept
/// contiguous, and histogram families carrying monotone cumulative
/// buckets, a `+Inf` bucket equal to `_count`, and a `_sum` series.
///
/// # Errors
/// A `line N: <problem>` description of the first violation.
pub fn check_grammar(text: &str) -> Result<(), String> {
    if text.is_empty() || !text.ends_with('\n') {
        return Err("exposition must be non-empty and newline-terminated".into());
    }
    let mut families: HashMap<String, FamilyCheck> = HashMap::new();
    let mut closed: Vec<String> = Vec::new();
    let mut current: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        let fail = |msg: String| format!("line {ln}: {msg}");
        if line.is_empty() {
            return Err(fail("empty line".into()));
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let keyword = comment.split_ascii_whitespace().next().unwrap_or("");
            if keyword != "HELP" && keyword != "TYPE" {
                continue; // plain comment
            }
            let mut parts = comment.split_ascii_whitespace();
            let _ = parts.next();
            let name = parts
                .next()
                .ok_or_else(|| fail("missing metric name".into()))?;
            if !valid_metric_name(name) {
                return Err(fail(format!("invalid metric name `{name}`")));
            }
            if keyword == "TYPE" {
                let kind = parts.next().ok_or_else(|| fail("missing type".into()))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(fail(format!("unknown type `{kind}`")));
                }
                let family = families.entry(name.to_string()).or_default();
                if family.kind.is_some() {
                    return Err(fail(format!("duplicate TYPE for `{name}`")));
                }
                if family.samples > 0 {
                    return Err(fail(format!("TYPE for `{name}` after its samples")));
                }
                family.kind = Some(kind.to_string());
            }
            continue;
        }
        let (name, labels, value) = parse_sample(line).map_err(&fail)?;
        let family = family_of(name, &families).to_string();
        if current.as_deref() != Some(&family) {
            if closed.contains(&family) {
                return Err(fail(format!("family `{family}` is interleaved")));
            }
            if let Some(prev) = current.replace(family.clone()) {
                closed.push(prev);
            }
        }
        let entry = families.entry(family).or_default();
        entry.samples += 1;
        if entry.kind.as_deref() == Some("histogram") {
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| fail("histogram bucket without `le`".into()))?;
                let edge: f64 =
                    le.1.parse()
                        .map_err(|_| fail(format!("bad `le` value `{}`", le.1)))?;
                entry.buckets.push((edge, value));
            } else if name.ends_with("_sum") {
                entry.sum = true;
            } else if name.ends_with("_count") {
                entry.count_value = Some(value);
            } else {
                return Err(fail(format!("unexpected histogram series `{name}`")));
            }
        }
    }
    for (name, family) in &families {
        if family.kind.as_deref() != Some("histogram") {
            continue;
        }
        let buckets = &family.buckets;
        if !buckets
            .windows(2)
            .all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0)
        {
            return Err(format!(
                "histogram `{name}`: buckets are not cumulative in increasing `le` order"
            ));
        }
        let Some((last_le, last_n)) = buckets.last() else {
            return Err(format!("histogram `{name}` has no buckets"));
        };
        if !last_le.is_infinite() {
            return Err(format!("histogram `{name}` is missing its `+Inf` bucket"));
        }
        if !family.sum {
            return Err(format!("histogram `{name}` is missing `_sum`"));
        }
        match family.count_value {
            // Float equality is exact here: both sides are the same u64
            // count rendered through f64.
            Some(count) if (count - last_n).abs() < f64::EPSILON => {}
            Some(_) => {
                return Err(format!(
                    "histogram `{name}`: `_count` disagrees with the `+Inf` bucket"
                ))
            }
            None => return Err(format!("histogram `{name}` is missing `_count`")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_page() -> String {
        let mut t = RunTelemetry::empty();
        t.counters[0].1 = 42;
        t.gauges[0].1 = 4096;
        let mut h = HistStat::new();
        for v in [0u64, 1, 3, 900, 900] {
            h.record(v);
        }
        t.histograms[0].1 = h;
        let mut page = Exposition::new();
        render_registry(&mut page, &t);
        page.labeled_gauge(
            "hdx_serve_tenant_inflight",
            "In-flight jobs per tenant.",
            "tenant",
            &[
                ("acme \"quoted\"\\".to_string(), 2.0),
                ("zen".to_string(), 1.0),
            ],
        );
        page.gauge("hdx_serve_workers_busy", "Workers mining right now.", 0.5);
        page.finish()
    }

    #[test]
    fn registry_page_passes_the_grammar_self_test() {
        let page = populated_page();
        check_grammar(&page).expect("grammar");
        assert!(page.contains("# TYPE hdx_mining_candidates_generated_total counter"));
        assert!(page.contains("hdx_mining_candidates_generated_total 42"));
        assert!(page.contains("hdx_mining_scratch_pool_bytes 4096"));
        assert!(page.contains("hdx_serve_tenant_inflight{tenant=\"acme \\\"quoted\\\"\\\\\"} 2"));
    }

    #[test]
    fn empty_registry_page_is_valid_exposition() {
        let mut page = Exposition::new();
        render_registry(&mut page, &RunTelemetry::empty());
        check_grammar(&page.finish()).expect("all-zero page still parses");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_exact_edges() {
        let mut h = HistStat::new();
        for v in [0u64, 1, 3, 900, 900] {
            h.record(v);
        }
        let mut page = Exposition::new();
        page.histogram("lat", "help", &h);
        let text = page.finish();
        check_grammar(&text).expect("grammar");
        assert!(text.contains("lat_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1023\"} 5"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("lat_count 5"), "{text}");
    }

    #[test]
    fn metric_names_sanitize_to_the_prometheus_alphabet() {
        assert_eq!(
            metric_name("hdx.mining.sched.steals"),
            "hdx_mining_sched_steals"
        );
        assert_eq!(
            metric_name("weird-name with spaces"),
            "weird_name_with_spaces"
        );
        assert_eq!(metric_name("9lives"), "_9lives");
        assert!(valid_metric_name(&metric_name("9lives")));
    }

    #[test]
    fn grammar_rejects_structural_violations() {
        let cases: &[(&str, &str)] = &[
            ("no trailing newline", "m 1"),
            ("empty line", "m 1\n\nn 2\n"),
            ("bad name", "2m 1\n"),
            ("bad value", "m one\n"),
            ("bad label name", "m{0x=\"v\"} 1\n"),
            ("unquoted label", "m{l=v} 1\n"),
            ("unterminated label value", "m{l=\"v} 1\n"),
            ("unknown type", "# TYPE m ticker\nm 1\n"),
            ("type after samples", "m 1\n# TYPE m counter\n"),
            ("duplicate type", "# TYPE m counter\n# TYPE m gauge\nm 1\n"),
            ("interleaved family", "a 1\nb 1\na 2\n"),
            (
                "non-cumulative buckets",
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
            ),
            (
                "missing +Inf",
                "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
            ),
            (
                "count disagrees",
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
            ),
        ];
        for (what, text) in cases {
            assert!(check_grammar(text).is_err(), "{what} must be rejected");
        }
    }

    #[test]
    fn plain_comments_and_timestamps_are_accepted() {
        let text = "# scraped by test\nm{l=\"a\",n=\"b\"} 1.5 1700000000\nnan_metric NaN\n";
        check_grammar(text).expect("grammar");
    }
}
