//! The `obs-tracing` subscriber bridge: a process-global observer that
//! mirrors every span event as it is recorded.
//!
//! The workspace is dependency-free, so the `tracing` crate itself is not
//! linked here. Instead this module exposes the exact hook a
//! `tracing`-subscriber adapter needs: implement [`SpanObserver`] in an
//! out-of-tree crate that depends on both `hdx-obs` (with `obs-tracing`)
//! and `tracing`, forward `on_enter`/`on_exit` to `tracing::span!` enter
//! and exit, and flamegraph workflows (`tracing-flame`, `tracing-chrome`)
//! work unchanged. See DESIGN.md §11.

use crate::SpanArg;
use std::sync::OnceLock;

/// Receives span events synchronously on the recording thread. Implementors
/// must be cheap and non-blocking — this runs on the mining hot path.
pub trait SpanObserver: Send + Sync {
    /// A span opened (`label`, optional argument).
    fn on_enter(&self, label: &'static str, arg: &SpanArg);
    /// The most recently opened span on this thread closed.
    fn on_exit(&self);
    /// An instantaneous event under the current span.
    fn on_instant(&self, label: &'static str, arg: &SpanArg);
}

fn slot() -> &'static OnceLock<Box<dyn SpanObserver>> {
    static OBSERVER: OnceLock<Box<dyn SpanObserver>> = OnceLock::new();
    &OBSERVER
}

/// Installs the process-global observer. Returns `false` (dropping the
/// candidate) when one is already installed — observers cannot be swapped
/// mid-run without racing recorders.
pub fn set_observer(observer: Box<dyn SpanObserver>) -> bool {
    slot().set(observer).is_ok()
}

/// The installed observer, if any.
pub(crate) fn observer() -> Option<&'static dyn SpanObserver> {
    slot().get().map(Box::as_ref)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counting(&'static AtomicU64);

    impl SpanObserver for Counting {
        fn on_enter(&self, _label: &'static str, _arg: &SpanArg) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn on_exit(&self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn on_instant(&self, _label: &'static str, _arg: &SpanArg) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn observer_sees_mirrored_events() {
        static SEEN: AtomicU64 = AtomicU64::new(0);
        assert!(set_observer(Box::new(Counting(&SEEN))));
        assert!(
            !set_observer(Box::new(Counting(&SEEN))),
            "second install rejected"
        );
        {
            let _span = crate::SpanGuard::enter("bridge-test", SpanArg::None);
            crate::instant("tick", SpanArg::None);
        }
        assert!(SEEN.load(Ordering::Relaxed) >= 3);
    }
}
