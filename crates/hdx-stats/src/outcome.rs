//! Outcome values and the statistic accumulator shared by discretization and
//! mining.
//!
//! §III-B defines statistics via *outcome functions* `o : D → ℝ ∪ {⊥}`; for
//! probability-shaped statistics (false-positive rate, error rate, …) the
//! outcome is boolean (`{T, F, ⊥}`, §V-A). [`StatAccum`] folds either kind
//! into four additive counters, from which mean (the statistic `f`),
//! variance, divergence and Welch's t all follow. Because the accumulator is
//! additive, the frequent-pattern miners can merge it exactly like a support
//! count — this is the paper's "divergence at essentially no additional
//! cost" design.

use crate::tdist::{t_quantile, welch_df, welch_p_value};
use crate::welch::welch_t;

/// The outcome `o(x)` of a single instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Boolean outcome (e.g. "is a false positive").
    Bool(bool),
    /// Real-valued outcome (e.g. income).
    Real(f64),
    /// `⊥`: the instance does not participate in the statistic.
    Undefined,
}

impl Outcome {
    /// Whether the outcome is defined (not `⊥`).
    #[inline]
    pub fn is_defined(&self) -> bool {
        !matches!(self, Outcome::Undefined)
    }

    /// The numeric contribution of the outcome (`T → 1`, `F → 0`, reals as
    /// themselves), or `None` for `⊥`.
    #[inline]
    pub fn value(&self) -> Option<f64> {
        match self {
            Outcome::Bool(true) => Some(1.0),
            Outcome::Bool(false) => Some(0.0),
            Outcome::Real(x) => Some(*x),
            Outcome::Undefined => None,
        }
    }
}

/// Additive statistics of a set of instances.
///
/// Tracks the instance count `n` (for support), the count of defined
/// outcomes, and the sum / sum of squares of defined outcomes. For a boolean
/// outcome function the mean is exactly `k⁺/(k⁺+k⁻)` — the probability form
/// `f_o` of §V-A — and the variance is the Bernoulli sample variance, so one
/// accumulator serves both outcome kinds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatAccum {
    n: u64,
    n_valid: u64,
    sum: f64,
    sum_sq: f64,
}

impl StatAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one instance.
    #[inline]
    pub fn push(&mut self, outcome: Outcome) {
        self.n += 1;
        if let Some(v) = outcome.value() {
            self.n_valid += 1;
            self.sum += v;
            self.sum_sq += v * v;
        }
    }

    /// Builds an accumulator directly from boolean-outcome counts: `n` rows,
    /// `n_valid` of them with a defined outcome, `positives` of those `T`.
    ///
    /// This is the word-level kernel constructor ([`crate::OutcomePlanes`]):
    /// because the scalar path sums `1.0` per positive row and integer-valued
    /// `f64` sums are exact below 2⁵³, setting `sum = sum_sq = positives`
    /// reproduces the pushed accumulator **bit for bit**.
    #[inline]
    pub fn from_counts(n: u64, n_valid: u64, positives: u64) -> Self {
        debug_assert!(positives <= n_valid && n_valid <= n);
        Self {
            n,
            n_valid,
            sum: positives as f64,
            sum_sq: positives as f64,
        }
    }

    /// Builds an accumulator directly from precomputed sums: `n` rows,
    /// `n_valid` defined outcomes with the given `sum` / `sum_sq`.
    ///
    /// Numeric-path counterpart of [`StatAccum::from_counts`]; the caller
    /// (the word-level kernel) guarantees the sums were reduced in the same
    /// ascending-row order as the scalar path.
    #[inline]
    pub fn from_sums(n: u64, n_valid: u64, sum: f64, sum_sq: f64) -> Self {
        debug_assert!(n_valid <= n);
        Self {
            n,
            n_valid,
            sum,
            sum_sq,
        }
    }

    /// Merges another accumulator (disjoint instance sets).
    #[inline]
    pub fn merge(&mut self, other: &StatAccum) {
        self.n += other.n;
        self.n_valid += other.n_valid;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Subtracts a previously merged accumulator — the inverse of
    /// [`StatAccum::merge`], used by streaming ingestion to retire a
    /// sliding-window segment's contribution without re-accumulating.
    ///
    /// Exactness contract (mirrors [`StatAccum::from_counts`]): the counts
    /// are integers, so `unmerge(merge(a, b), b) == a` is **bitwise** on
    /// `n`/`n_valid` always, and on `sum`/`sum_sq` whenever the sums are
    /// integer-valued below 2⁵³ (every boolean-outcome accumulator). For
    /// real-valued outcomes the round-trip is ULP-bounded, not bitwise —
    /// the same contract the SIMD kernel layer documents for reassociated
    /// sums. `other` must describe a subset of `self`'s instances; counts
    /// saturate at zero if it does not (checked in debug builds).
    #[inline]
    pub fn unmerge(&mut self, other: &StatAccum) {
        debug_assert!(
            other.n <= self.n && other.n_valid <= self.n_valid,
            "unmerge of a non-subset accumulator"
        );
        self.n = self.n.saturating_sub(other.n);
        self.n_valid = self.n_valid.saturating_sub(other.n_valid);
        self.sum -= other.sum;
        self.sum_sq -= other.sum_sq;
    }

    /// Number of instances (the support count `#D_I`).
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of instances with defined outcome.
    #[inline]
    pub fn valid_count(&self) -> u64 {
        self.n_valid
    }

    /// The raw additive components `(n, n_valid, sum, sum_sq)` — the exact
    /// inverse of [`StatAccum::from_sums`], so an accumulator can be
    /// persisted and rebuilt bit for bit (checkpoint/resume).
    #[inline]
    pub fn raw_parts(&self) -> (u64, u64, f64, f64) {
        (self.n, self.n_valid, self.sum, self.sum_sq)
    }

    /// The statistic `f` over this set: mean of defined outcomes, or `None`
    /// when no outcome is defined.
    #[inline]
    pub fn statistic(&self) -> Option<f64> {
        (self.n_valid > 0).then(|| self.sum / self.n_valid as f64)
    }

    /// Unbiased sample variance of the defined outcomes (0 when `n_valid < 2`).
    pub fn variance(&self) -> f64 {
        if self.n_valid < 2 {
            return 0.0;
        }
        let n = self.n_valid as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0) // guard tiny negative values from cancellation
    }

    /// Divergence `Δ_f = f(self) − f(global)`, or `None` when either side is
    /// undefined.
    pub fn divergence(&self, global: &StatAccum) -> Option<f64> {
        Some(self.statistic()? - global.statistic()?)
    }

    /// Welch t-value of this set's statistic against `global`'s (§III-B).
    ///
    /// Returns 0 when undefined on either side.
    pub fn t_value(&self, global: &StatAccum) -> f64 {
        match (self.statistic(), global.statistic()) {
            (Some(m1), Some(m2)) => welch_t(
                m1,
                self.variance(),
                self.n_valid,
                m2,
                global.variance(),
                global.n_valid,
            ),
            _ => 0.0,
        }
    }

    /// Two-sided Welch p-value of this set's divergence from `global`
    /// (Welch–Satterthwaite degrees of freedom, Student-t tail).
    ///
    /// Returns `1.0` when the test is undefined (tiny samples, zero
    /// variance): no evidence against the null.
    pub fn p_value(&self, global: &StatAccum) -> f64 {
        let t = self.t_value(global);
        if crate::approx::approx_zero(t) {
            return 1.0;
        }
        welch_p_value(
            t,
            self.variance(),
            self.n_valid,
            global.variance(),
            global.n_valid,
        )
        .unwrap_or(1.0)
    }

    /// Two-sided `(1 − alpha)` confidence interval for the divergence from
    /// `global` (Welch interval: difference of means ± t-quantile × SE).
    ///
    /// Returns `None` when the interval is undefined (fewer than two valid
    /// observations on either side, or zero variance everywhere).
    pub fn divergence_ci(&self, global: &StatAccum, alpha: f64) -> Option<(f64, f64)> {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let diff = self.divergence(global)?;
        let df = welch_df(
            self.variance(),
            self.n_valid,
            global.variance(),
            global.n_valid,
        )?;
        let se = (self.variance() / self.n_valid as f64
            + global.variance() / global.n_valid as f64)
            .sqrt();
        let t = t_quantile(1.0 - alpha / 2.0, df);
        Some((diff - t * se, diff + t * se))
    }

    /// Accumulates a whole slice of outcomes.
    pub fn from_outcomes(outcomes: &[Outcome]) -> Self {
        let mut acc = Self::new();
        for &o in outcomes {
            acc.push(o);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_parts_round_trips_through_from_sums() {
        let mut acc = StatAccum::new();
        acc.push(Outcome::Real(1.25));
        acc.push(Outcome::Real(-3.5));
        acc.push(Outcome::Undefined);
        let (n, n_valid, sum, sum_sq) = acc.raw_parts();
        assert_eq!(StatAccum::from_sums(n, n_valid, sum, sum_sq), acc);
    }

    #[test]
    fn outcome_values() {
        assert_eq!(Outcome::Bool(true).value(), Some(1.0));
        assert_eq!(Outcome::Bool(false).value(), Some(0.0));
        assert_eq!(Outcome::Real(2.5).value(), Some(2.5));
        assert_eq!(Outcome::Undefined.value(), None);
        assert!(!Outcome::Undefined.is_defined());
        assert!(Outcome::Bool(false).is_defined());
    }

    #[test]
    fn boolean_statistic_is_probability() {
        let acc = StatAccum::from_outcomes(&[
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Bool(false),
            Outcome::Bool(true),
            Outcome::Undefined,
            Outcome::Bool(false),
        ]);
        assert_eq!(acc.count(), 6);
        assert_eq!(acc.valid_count(), 5);
        assert!((acc.statistic().unwrap() - 0.4).abs() < 1e-12);
        // Bernoulli sample variance p(1-p)n/(n-1) = 0.24 * 5/4 = 0.3.
        assert!((acc.variance() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn real_statistic_mean_and_variance() {
        let acc = StatAccum::from_outcomes(&[
            Outcome::Real(2.0),
            Outcome::Real(4.0),
            Outcome::Real(6.0),
            Outcome::Undefined,
        ]);
        assert_eq!(acc.statistic(), Some(4.0));
        assert!((acc.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_undefined() {
        let empty = StatAccum::new();
        assert_eq!(empty.statistic(), None);
        assert_eq!(empty.variance(), 0.0);
        let undef = StatAccum::from_outcomes(&[Outcome::Undefined; 3]);
        assert_eq!(undef.count(), 3);
        assert_eq!(undef.valid_count(), 0);
        assert_eq!(undef.statistic(), None);
        assert_eq!(undef.divergence(&empty), None);
        assert_eq!(undef.t_value(&empty), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let outcomes = [
            Outcome::Bool(true),
            Outcome::Real(3.0),
            Outcome::Undefined,
            Outcome::Bool(false),
        ];
        let whole = StatAccum::from_outcomes(&outcomes);
        let mut left = StatAccum::from_outcomes(&outcomes[..2]);
        let right = StatAccum::from_outcomes(&outcomes[2..]);
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn unmerge_inverts_merge_bitwise_for_boolean_outcomes() {
        // Boolean outcomes: sums are small integers, so the round trip is
        // exact on every field, not just the counts.
        let a = StatAccum::from_counts(100, 90, 37);
        let b = StatAccum::from_counts(50, 48, 11);
        let mut merged = a;
        merged.merge(&b);
        merged.unmerge(&b);
        let (n, v, s, q) = merged.raw_parts();
        let (an, av, as_, aq) = a.raw_parts();
        assert_eq!((n, v), (an, av));
        assert_eq!(s.to_bits(), as_.to_bits(), "integer-valued sum: bitwise");
        assert_eq!(q.to_bits(), aq.to_bits());
    }

    #[test]
    fn unmerge_to_empty_is_exactly_empty() {
        let b = StatAccum::from_outcomes(&[Outcome::Real(2.5), Outcome::Real(-1.0)]);
        let mut acc = StatAccum::new();
        acc.merge(&b);
        acc.unmerge(&b);
        let (n, v, s, q) = acc.raw_parts();
        assert_eq!((n, v), (0, 0));
        // x - x == 0.0 exactly in IEEE 754 for finite x.
        assert_eq!(s, 0.0);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn unmerge_saturates_counts_on_non_subset() {
        let mut a = StatAccum::from_counts(2, 2, 1);
        let b = StatAccum::from_counts(5, 5, 2);
        // Release builds: counts saturate rather than wrap.
        if cfg!(debug_assertions) {
            let err = std::panic::catch_unwind(move || a.unmerge(&b));
            assert!(err.is_err(), "debug builds assert the subset contract");
        } else {
            a.unmerge(&b);
            assert_eq!(a.count(), 0);
            assert_eq!(a.valid_count(), 0);
        }
    }

    #[test]
    fn divergence_sign() {
        let global = StatAccum::from_outcomes(&[
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Bool(false),
            Outcome::Bool(false),
        ]); // f = 0.25
        let high = StatAccum::from_outcomes(&[Outcome::Bool(true), Outcome::Bool(true)]);
        let low = StatAccum::from_outcomes(&[Outcome::Bool(false), Outcome::Bool(false)]);
        assert!((high.divergence(&global).unwrap() - 0.75).abs() < 1e-12);
        assert!((low.divergence(&global).unwrap() + 0.25).abs() < 1e-12);
    }

    #[test]
    fn t_value_grows_with_evidence() {
        let mut global = StatAccum::new();
        for i in 0..1000 {
            global.push(Outcome::Bool(i % 10 == 0)); // f = 0.1
        }
        let mut small = StatAccum::new();
        for i in 0..20 {
            small.push(Outcome::Bool(i % 2 == 0)); // f = 0.5
        }
        let mut large = StatAccum::new();
        for i in 0..200 {
            large.push(Outcome::Bool(i % 2 == 0));
        }
        let t_small = small.t_value(&global);
        let t_large = large.t_value(&global);
        assert!(t_small > 0.0);
        assert!(t_large > t_small);
    }

    #[test]
    fn divergence_ci_brackets_the_estimate() {
        let mut global = StatAccum::new();
        for i in 0..1000 {
            global.push(Outcome::Bool(i % 10 == 0)); // f = 0.1
        }
        let mut sub = StatAccum::new();
        for i in 0..100 {
            sub.push(Outcome::Bool(i % 4 == 0)); // f = 0.25
        }
        let (lo, hi) = sub.divergence_ci(&global, 0.05).unwrap();
        let d = sub.divergence(&global).unwrap();
        assert!(lo < d && d < hi);
        assert!(lo > 0.0, "clearly positive divergence: CI excludes 0");
        // Wider interval at higher confidence.
        let (lo99, hi99) = sub.divergence_ci(&global, 0.01).unwrap();
        assert!(lo99 < lo && hi99 > hi);
        // Undefined for tiny samples.
        let tiny = StatAccum::from_outcomes(&[Outcome::Bool(true)]);
        assert!(tiny.divergence_ci(&global, 0.05).is_none());
    }

    #[test]
    fn variance_never_negative() {
        // Constant data with large magnitude stresses cancellation.
        let acc = StatAccum::from_outcomes(&[Outcome::Real(1e9); 100]);
        assert!(acc.variance() >= 0.0);
        assert!(acc.variance() < 1e-3);
    }
}
