//! Epsilon-aware floating-point comparisons.
//!
//! Divergences, t-values and probabilities flow through long chains of
//! floating-point arithmetic; comparing them with `==`/`!=` is a recurring
//! source of silent bugs (and is forbidden workspace-wide by `hdx-lint`'s
//! `no-float-eq` rule). These helpers centralise the tolerance policy:
//! a tight absolute epsilon combined with a relative one, suited to the
//! `[-1, 1]`-ish magnitudes of divergences and probabilities as well as
//! large t-values.
//!
//! Exact comparisons against *structural* constants (`f64::INFINITY` for
//! unbounded interval ends, for instance) remain legitimate and are not
//! routed through this module.

/// Absolute tolerance: far below statistical noise, far above accumulated
/// rounding error of the pipelines in this workspace.
pub const ABS_EPS: f64 = 1e-12;

/// Relative tolerance applied on top of [`ABS_EPS`] for large magnitudes.
pub const REL_EPS: f64 = 1e-12;

/// True when `a` and `b` are equal within tolerance
/// (`|a − b| ≤ ABS_EPS + REL_EPS · max(|a|, |b|)`).
///
/// `NaN` is equal to nothing, like `==`. Infinities of the same sign
/// compare equal.
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a == b {
        // Covers equal infinities (where the tolerance arithmetic would
        // produce NaN) and the common exact case.
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        // Opposite-sign infinities and NaN: the tolerance formula below
        // degenerates to `inf ≤ inf` / NaN and must not be consulted.
        return false;
    }
    (a - b).abs() <= ABS_EPS + REL_EPS * a.abs().max(b.abs())
}

/// True when `a` and `b` differ beyond tolerance. `NaN` differs from
/// everything (including itself), like `!=`.
pub fn approx_ne(a: f64, b: f64) -> bool {
    !approx_eq(a, b) || a.is_nan() || b.is_nan()
}

/// True when `x` is zero within the absolute tolerance.
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= ABS_EPS
}

/// True when `a` and `b` have the same sign (both positive, both negative,
/// or both zero). `NaN` never shares a sign with anything.
pub fn same_sign(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    (a > 0.0) == (b > 0.0) && (a < 0.0) == (b < 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-15));
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(!approx_eq(1.0, 1.0 + 1e-9));
        // Relative tolerance matters at large magnitudes.
        assert!(approx_eq(1e9, 1e9 + 1e-4));
        assert!(!approx_eq(1e9, 1e9 + 1.0));
    }

    #[test]
    fn ne_mirrors_eq_except_nan() {
        assert!(!approx_ne(0.3, 0.1 + 0.2));
        assert!(approx_ne(1.0, 2.0));
        assert!(approx_ne(f64::NAN, f64::NAN));
    }

    #[test]
    fn zero_detection() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-0.0));
        assert!(approx_zero(1e-15));
        assert!(!approx_zero(1e-9));
        assert!(!approx_zero(f64::NAN));
    }

    #[test]
    fn infinities() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
        assert!(!approx_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn sign_agreement() {
        assert!(same_sign(0.5, 3.0));
        assert!(same_sign(-0.5, -3.0));
        assert!(same_sign(0.0, 0.0));
        assert!(same_sign(0.0, -0.0));
        assert!(!same_sign(0.5, -3.0));
        assert!(!same_sign(0.0, 1.0));
        assert!(!same_sign(f64::NAN, 1.0));
        assert!(!same_sign(f64::NAN, f64::NAN));
    }
}
