//! Vectorized masked-sum kernels for the numeric outcome path.
//!
//! [`OutcomePlanes`](crate::OutcomePlanes) reduces a cover bitset to a
//! [`StatAccum`](crate::StatAccum). For boolean outcomes that is three fused
//! popcounts; for numeric outcomes the reduction is a *masked sum*:
//!
//! ```text
//! n_valid = Σ popcount(cover ∧ valid)
//! sum     = Σ values[r]        over set bits r of cover ∧ valid
//! sum_sq  = Σ values[r]²       over set bits r of cover ∧ valid
//! ```
//!
//! The historical implementation drained each word's set bits with
//! `trailing_zeros` — a serial, branchy loop that leaves the vector units
//! idle. The kernels here instead *expand* each mask bit into an all-ones /
//! all-zero `f64` lane selector and accumulate **16 independent lanes**:
//! within every 64-row word, lane `j` sums the rows `≡ j (mod 16)`, in
//! ascending order. Because lane partials only ever combine element-wise,
//! every vector path — whatever its register width groups lanes into —
//! produces identical per-lane values, and one shared fixed-order reduction
//! ([`reduce16`]) folds them, so all vector paths agree **bit for bit**.
//!
//! ## Dispatch
//!
//! [`active_kernel`] picks the best compiled-in path once per process:
//!
//! | path | gate | notes |
//! |------|------|-------|
//! | [`KernelPath::Avx512`] | `simd-arch`, x86-64, runtime `avx512f` | native 8-lane mask loads |
//! | [`KernelPath::Avx2`] | `simd-arch`, x86-64, runtime `avx2` | compare-expanded masks |
//! | [`KernelPath::Neon`] | `simd-arch`, aarch64 | NEON is baseline on aarch64 |
//! | [`KernelPath::Simd`] | `simd` feature (nightly `portable_simd`) | `std::simd` |
//! | [`KernelPath::Portable`] | always compiled | safe branch-free lane loop (autovectorizable) |
//! | [`KernelPath::Scalar`] | `HDX_FORCE_SCALAR` env override | the historical per-bit loop |
//!
//! Setting `HDX_FORCE_SCALAR` to any value other than `0`/empty forces the
//! scalar path — the escape hatch for A/B debugging and for CI legs that
//! exercise the fallback.
//!
//! ## Exactness contract
//!
//! * `n_valid` is a popcount: **exact on every path**.
//! * All vector paths share the 16-lane accumulation order and [`reduce16`],
//!   so they are **bitwise identical to each other** (no FMA anywhere —
//!   products round before accumulation on every path).
//! * The scalar path sums rows in ascending order with one accumulator; the
//!   lane paths reassociate. For **integer-valued** outcomes (booleans,
//!   counts, labels), as long as every partial sum stays below 2⁵³, each
//!   partial is exactly representable and scalar and vector paths agree
//!   **bit for bit**. For arbitrary reals the paths agree within the
//!   reassociation error bound property-tested in
//!   `tests/property_kernel.rs`.
//!
//! Masking is a bitwise AND of the value with an expanded mask (or a
//! zero-masked load — never a multiply), so masked-out `inf`/`NaN` rows
//! contribute `+0.0` instead of poisoning the sum, exactly like the scalar
//! path that never visits them.

use std::sync::OnceLock;

/// Covers are streamed through the kernels in blocks of this many 64-row
/// words: 256 words = 16 Ki rows per block, i.e. 2 KiB of cover words plus
/// 128 KiB of `f64` values — sized so a block's working set stays resident
/// in L2 while multi-million-row inputs stream through
/// ([`OutcomePlanes::accum_assign_pair`](crate::OutcomePlanes::accum_assign_pair)
/// writes the joint cover and consumes it while hot).
pub const BLOCK_WORDS: usize = 256;

/// Number of independent lane accumulators — the canonical reassociation
/// width every vector path shares.
pub const LANES: usize = 16;

/// A masked-sum kernel implementation, selected by [`active_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// The historical per-bit `trailing_zeros` drain loop (single
    /// accumulator, ascending row order). Forced by `HDX_FORCE_SCALAR`.
    Scalar,
    /// Safe branch-free 16-lane loop; the compiler autovectorizes it on any
    /// target. Always compiled; the default when no explicit SIMD path is
    /// available.
    Portable,
    /// `std::simd` lanes (nightly `portable_simd`, behind the `simd`
    /// feature).
    Simd,
    /// AVX2 `core::arch` intrinsics (behind `simd-arch`, runtime-detected).
    Avx2,
    /// AVX-512 `core::arch` intrinsics with native mask-register loads
    /// (behind `simd-arch`, runtime-detected `avx512f`).
    Avx512,
    /// NEON `core::arch` intrinsics (behind `simd-arch` on aarch64).
    Neon,
}

impl KernelPath {
    /// Stable lower-case label (telemetry, bench JSON, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Portable => "portable",
            Self::Simd => "simd",
            Self::Avx2 => "avx2",
            Self::Avx512 => "avx512",
            Self::Neon => "neon",
        }
    }

    /// Whether this path is compiled in *and* usable on the running CPU.
    pub fn is_available(self) -> bool {
        match self {
            Self::Scalar | Self::Portable => true,
            Self::Simd => cfg!(feature = "simd"),
            Self::Avx2 => avx2_available(),
            Self::Avx512 => avx512_available(),
            Self::Neon => cfg!(all(feature = "simd-arch", target_arch = "aarch64")),
        }
    }
}

#[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(all(feature = "simd-arch", target_arch = "x86_64")))]
fn avx2_available() -> bool {
    false
}

#[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

#[cfg(not(all(feature = "simd-arch", target_arch = "x86_64")))]
fn avx512_available() -> bool {
    false
}

/// The kernel path every [`OutcomePlanes`](crate::OutcomePlanes) reduction
/// dispatches to, selected once per process: the `HDX_FORCE_SCALAR`
/// environment override, else the best available path in the order
/// AVX-512 → AVX2 / NEON → portable-`std::simd` → portable lanes.
pub fn active_kernel() -> KernelPath {
    static ACTIVE: OnceLock<KernelPath> = OnceLock::new();
    *ACTIVE.get_or_init(select_kernel)
}

/// Every path usable in this build on this CPU, best-first. `Scalar` and
/// `Portable` are always present; property tests iterate this to prove
/// cross-path equivalence on whatever hardware runs them.
pub fn available_kernels() -> Vec<KernelPath> {
    [
        KernelPath::Avx512,
        KernelPath::Avx2,
        KernelPath::Neon,
        KernelPath::Simd,
        KernelPath::Portable,
        KernelPath::Scalar,
    ]
    .into_iter()
    .filter(|p| p.is_available())
    .collect()
}

fn select_kernel() -> KernelPath {
    let forced = std::env::var_os("HDX_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0");
    if forced {
        return KernelPath::Scalar;
    }
    if avx512_available() {
        return KernelPath::Avx512;
    }
    if avx2_available() {
        return KernelPath::Avx2;
    }
    if cfg!(all(feature = "simd-arch", target_arch = "aarch64")) {
        return KernelPath::Neon;
    }
    if cfg!(feature = "simd") {
        return KernelPath::Simd;
    }
    KernelPath::Portable
}

/// Folds the 16 lane accumulators in the fixed order every vector path
/// shares: halves 8 apart, then pairs 4 apart, 2 apart, and the final add —
/// the order a 512→256→128-bit horizontal reduction naturally produces.
#[inline]
fn reduce16(s: &[f64; LANES]) -> f64 {
    let &[s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15] = s;
    let h0 = s0 + s8;
    let h1 = s1 + s9;
    let h2 = s2 + s10;
    let h3 = s3 + s11;
    let h4 = s4 + s12;
    let h5 = s5 + s13;
    let h6 = s6 + s14;
    let h7 = s7 + s15;
    let t0 = h0 + h4;
    let t1 = h1 + h5;
    let t2 = h2 + h6;
    let t3 = h3 + h7;
    (t0 + t2) + (t1 + t3)
}

/// Streaming masked-sum kernel state: feed blocks of pre-masked cover words
/// with [`update`](SumsKernel::update), then [`finish`](SumsKernel::finish).
///
/// The streaming shape exists so callers can *fuse* producing the masked
/// words (e.g. intersecting two covers block by block) with consuming them,
/// keeping each [`BLOCK_WORDS`] block cache-hot. Feeding the same words in
/// one call or many produces bitwise-identical results: lane state persists
/// across calls and blocks are whole words, so each lane sees the same
/// ascending row sequence either way.
#[derive(Debug)]
pub struct SumsKernel {
    path: KernelPath,
    n_valid: u64,
    s: [f64; LANES],
    s2: [f64; LANES],
}

impl SumsKernel {
    /// A fresh kernel on `path`.
    ///
    /// # Panics
    /// Panics when `path` is not compiled in or not supported by the CPU
    /// (see [`KernelPath::is_available`]).
    pub fn new(path: KernelPath) -> Self {
        assert!(
            path.is_available(),
            "kernel path {:?} unavailable in this build / on this CPU",
            path
        );
        Self {
            path,
            n_valid: 0,
            s: [0.0; LANES],
            s2: [0.0; LANES],
        }
    }

    /// Accumulates one block. `masked` holds `cover ∧ valid` words; `values`
    /// holds the corresponding rows' outcome values, `values.len() ≤
    /// 64 · masked.len()`. All calls but the last must pass whole words
    /// (`values.len() = 64 · masked.len()`); bits of `masked` at or beyond
    /// `values.len()` must be clear (the valid plane guarantees this).
    pub fn update(&mut self, masked: &[u64], values: &[f64]) {
        debug_assert!(
            values.len() <= masked.len() * 64,
            "values overrun masked words"
        );
        if self.path == KernelPath::Scalar {
            self.update_scalar(masked, values);
            return;
        }
        let full = values.len() / 64;
        let head_words = full.min(masked.len());
        let (head_m, tail_m) = masked.split_at(head_words);
        let (head_v, tail_v) = values.split_at(head_words * 64);
        match self.path {
            #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
            KernelPath::Avx512 => {
                // SAFETY: `SumsKernel::new` asserted `Avx512.is_available()`,
                // i.e. runtime detection confirmed `avx512f`; `head_v` holds
                // exactly 64 values per word of `head_m`.
                unsafe {
                    avx512_update(&mut self.n_valid, &mut self.s, &mut self.s2, head_m, head_v);
                }
            }
            #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
            KernelPath::Avx2 => {
                // SAFETY: `SumsKernel::new` asserted `Avx2.is_available()`,
                // i.e. runtime detection confirmed AVX2; `head_v` holds
                // exactly 64 values per word of `head_m`.
                unsafe {
                    avx2_update(&mut self.n_valid, &mut self.s, &mut self.s2, head_m, head_v);
                }
            }
            #[cfg(feature = "simd")]
            KernelPath::Simd => {
                simd_update(&mut self.n_valid, &mut self.s, &mut self.s2, head_m, head_v);
            }
            #[cfg(all(feature = "simd-arch", target_arch = "aarch64"))]
            KernelPath::Neon => {
                // SAFETY: NEON is baseline on every aarch64 target this
                // compiles for; `head_v` holds 64 values per `head_m` word.
                unsafe {
                    neon_update(&mut self.n_valid, &mut self.s, &mut self.s2, head_m, head_v);
                }
            }
            // `Portable`, plus paths not compiled into this build (which
            // `new` already proved unreachable by asserting availability).
            _ => {
                for (&m, chunk) in head_m.iter().zip(head_v.chunks(64)) {
                    self.lanes_word(m, chunk);
                }
            }
        }
        // Shared partial-word tail: the same 16-lane structure, scalar code.
        for (&m, chunk) in tail_m.iter().zip(tail_v.chunks(64)) {
            self.lanes_word(m, chunk);
        }
    }

    /// Final `(n_valid, sum, sum_sq)`.
    pub fn finish(self) -> (u64, f64, f64) {
        match self.path {
            KernelPath::Scalar => {
                let (&[s0, ..], &[q0, ..]) = (&self.s, &self.s2);
                (self.n_valid, s0, q0)
            }
            _ => (self.n_valid, reduce16(&self.s), reduce16(&self.s2)),
        }
    }

    /// The historical per-bit drain loop: ascending rows, one accumulator
    /// (lane 0; streamed across `update` calls, so block boundaries never
    /// change the association).
    fn update_scalar(&mut self, masked: &[u64], values: &[f64]) {
        let (&mut [ref mut s0, ..], &mut [ref mut q0, ..]) = (&mut self.s, &mut self.s2);
        let mut n_valid = 0u64;
        for (&m, chunk) in masked.iter().zip(values.chunks(64)) {
            let mut bits = m;
            n_valid += u64::from(bits.count_ones());
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                debug_assert!(tz < chunk.len(), "masked bit beyond encoded rows");
                if let Some(&x) = chunk.get(tz) {
                    *s0 += x;
                    *q0 += x * x;
                }
                bits &= bits - 1;
            }
        }
        self.n_valid += n_valid;
    }

    /// Branch-free lane accumulation of one (possibly partial) 64-row word:
    /// the portable kernel body, also the shared tail handler of every
    /// vector path. Lane `j` of each 16-row group takes the row's value
    /// ANDed with the expanded mask bit (all-ones or all-zero), so
    /// unselected rows add exactly `+0.0`.
    fn lanes_word(&mut self, m: u64, chunk: &[f64]) {
        self.n_valid += u64::from(m.count_ones());
        let mut groups = chunk.chunks_exact(LANES);
        let mut g = 0usize;
        for group in groups.by_ref() {
            let window = (m >> (g * LANES)) & 0xffff;
            for (j, (&v, (s, s2))) in group
                .iter()
                .zip(self.s.iter_mut().zip(self.s2.iter_mut()))
                .enumerate()
            {
                let keep = 0u64.wrapping_sub((window >> j) & 1);
                let x = f64::from_bits(v.to_bits() & keep);
                *s += x;
                *s2 += x * x;
            }
            g += 1;
        }
        let done = g * LANES;
        for (j, (&v, (s, s2))) in groups
            .remainder()
            .iter()
            .zip(self.s.iter_mut().zip(self.s2.iter_mut()))
            .enumerate()
        {
            let keep = 0u64.wrapping_sub((m >> (done + j)) & 1);
            let x = f64::from_bits(v.to_bits() & keep);
            *s += x;
            *s2 += x * x;
        }
    }
}

/// One-shot masked sums on the [`active_kernel`] path:
/// `(n_valid, Σ values[r], Σ values[r]²)` over the set bits of
/// `cover ∧ valid`.
///
/// `cover` and `valid` must have equal word counts covering `values`
/// (`values.len() ≤ 64 · valid.len()`); `valid` must have no bits at or
/// beyond `values.len()`.
///
/// # Panics
/// Panics when the word counts differ.
pub fn masked_sums(values: &[f64], valid: &[u64], cover: &[u64]) -> (u64, f64, f64) {
    masked_sums_on(active_kernel(), values, valid, cover)
}

/// [`masked_sums`] on an explicit path — the per-path entry point the
/// equivalence property tests drive.
///
/// # Panics
/// Panics when the word counts differ or `path` is unavailable
/// (see [`KernelPath::is_available`]).
pub fn masked_sums_on(
    path: KernelPath,
    values: &[f64],
    valid: &[u64],
    cover: &[u64],
) -> (u64, f64, f64) {
    assert_eq!(cover.len(), valid.len(), "cover/valid word-count mismatch");
    let mut kernel = SumsKernel::new(path);
    let mut buf = [0u64; BLOCK_WORDS];
    let mut values_rest = values;
    for (cw, vw) in cover.chunks(BLOCK_WORDS).zip(valid.chunks(BLOCK_WORDS)) {
        for (dst, (&c, &v)) in buf.iter_mut().zip(cw.iter().zip(vw)) {
            *dst = c & v;
        }
        let take = (cw.len() * 64).min(values_rest.len());
        let (vals, rest) = values_rest.split_at(take);
        values_rest = rest;
        let (masked, _) = buf.split_at(cw.len());
        kernel.update(masked, vals);
    }
    kernel.finish()
}

#[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
use std::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_and_pd, _mm256_and_si256, _mm256_castsi256_pd,
    _mm256_cmpeq_epi64, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_epi64x, _mm256_set_epi64x,
    _mm256_storeu_pd, _mm512_add_pd, _mm512_loadu_pd, _mm512_maskz_loadu_pd, _mm512_mul_pd,
    _mm512_storeu_pd,
};

/// AVX-512 masked-sum block body: the cover byte *is* the lane mask
/// (`_mm512_maskz_loadu_pd` zeroes unselected lanes), so mask expansion
/// costs nothing. Two 8-lane accumulator pairs cover the canonical 16-lane
/// layout: register A takes lanes 0–7 of each 16-row group, register B
/// lanes 8–15. Whole 64-row words only; the caller routes the partial tail
/// through the portable lane loop.
///
/// # Safety
/// The caller must have verified `avx512f` support at runtime
/// (`is_x86_feature_detected!("avx512f")`); `values` must hold exactly
/// 64 values per word of `masked`.
#[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
#[allow(unsafe_code)]
// SAFETY: `unsafe fn` solely because of `#[target_feature]`: callers reach
// it only through `SumsKernel::update` after runtime AVX-512 detection.
unsafe fn avx512_update(
    n_valid: &mut u64,
    s: &mut [f64; LANES],
    s2: &mut [f64; LANES],
    masked: &[u64],
    values: &[f64],
) {
    debug_assert_eq!(values.len(), masked.len() * 64);
    // SAFETY: the accumulator arrays are 16 contiguous f64s; unaligned
    // loads/stores of 8 lanes at offsets 0 and 8 are in bounds.
    let mut acc_a = _mm512_loadu_pd(s.as_ptr());
    let mut acc_b = _mm512_loadu_pd(s.as_ptr().add(8));
    let mut sq_a = _mm512_loadu_pd(s2.as_ptr());
    let mut sq_b = _mm512_loadu_pd(s2.as_ptr().add(8));
    for (&m, chunk) in masked.iter().zip(values.chunks_exact(64)) {
        *n_valid += u64::from(m.count_ones());
        let base = chunk.as_ptr();
        let mut g = 0u32;
        while g < 4 {
            let k_a = ((m >> (g * 16)) & 0xff) as u8;
            let k_b = ((m >> (g * 16 + 8)) & 0xff) as u8;
            // SAFETY: `chunk` is exactly 64 contiguous f64s, so offsets
            // `16·g` and `16·g + 8` with `g < 4` leave 8 readable lanes;
            // masked-out lanes are zeroed, never faulting.
            let x_a = _mm512_maskz_loadu_pd(k_a, base.add((g * 16) as usize));
            let x_b = _mm512_maskz_loadu_pd(k_b, base.add((g * 16 + 8) as usize));
            acc_a = _mm512_add_pd(acc_a, x_a);
            acc_b = _mm512_add_pd(acc_b, x_b);
            sq_a = _mm512_add_pd(sq_a, _mm512_mul_pd(x_a, x_a));
            sq_b = _mm512_add_pd(sq_b, _mm512_mul_pd(x_b, x_b));
            g += 1;
        }
    }
    // SAFETY: same 16-f64 accumulator arrays as the loads above.
    _mm512_storeu_pd(s.as_mut_ptr(), acc_a);
    _mm512_storeu_pd(s.as_mut_ptr().add(8), acc_b);
    _mm512_storeu_pd(s2.as_mut_ptr(), sq_a);
    _mm512_storeu_pd(s2.as_mut_ptr().add(8), sq_b);
}

/// AVX2 masked-sum block body: four 4-lane accumulator pairs covering the
/// canonical 16-lane layout (lanes 4p‥4p+4 of each 16-row group in register
/// p), with compare-expanded masks and mul-then-add (no FMA) so lane values
/// stay bitwise identical to [`SumsKernel::lanes_word`]. Whole 64-row words
/// only; the caller routes the partial tail through the portable lane loop.
///
/// # Safety
/// The caller must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`); `values` must hold exactly
/// 64 values per word of `masked`.
#[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
// SAFETY: `unsafe fn` solely because of `#[target_feature]`: callers reach
// it only through `SumsKernel::update` after runtime AVX2 detection.
unsafe fn avx2_update(
    n_valid: &mut u64,
    s: &mut [f64; LANES],
    s2: &mut [f64; LANES],
    masked: &[u64],
    values: &[f64],
) {
    debug_assert_eq!(values.len(), masked.len() * 64);
    // Lane selectors: the 16-bit group window ANDed against each lane's
    // bit, compared for equality → all-ones where the row is selected.
    let [bits0, bits1, bits2, bits3] = [
        _mm256_set_epi64x(8, 4, 2, 1),
        _mm256_set_epi64x(128, 64, 32, 16),
        _mm256_set_epi64x(2048, 1024, 512, 256),
        _mm256_set_epi64x(32768, 16384, 8192, 4096),
    ];
    // SAFETY: the accumulator arrays are 16 contiguous f64s; `loadu` has no
    // alignment requirement and offsets 0/4/8/12 leave 4 readable lanes.
    let mut acc0 = _mm256_loadu_pd(s.as_ptr());
    let mut acc1 = _mm256_loadu_pd(s.as_ptr().add(4));
    let mut acc2 = _mm256_loadu_pd(s.as_ptr().add(8));
    let mut acc3 = _mm256_loadu_pd(s.as_ptr().add(12));
    let mut sq0 = _mm256_loadu_pd(s2.as_ptr());
    let mut sq1 = _mm256_loadu_pd(s2.as_ptr().add(4));
    let mut sq2 = _mm256_loadu_pd(s2.as_ptr().add(8));
    let mut sq3 = _mm256_loadu_pd(s2.as_ptr().add(12));
    for (&m, chunk) in masked.iter().zip(values.chunks_exact(64)) {
        *n_valid += u64::from(m.count_ones());
        let base = chunk.as_ptr();
        let mut g = 0u32;
        while g < 4 {
            let window = _mm256_set1_epi64x(((m >> (g * 16)) & 0xffff) as i64);
            let row0 = (g * 16) as usize;
            // SAFETY: `chunk` is exactly 64 contiguous f64s; `row0 + 12`
            // with `g < 4` leaves 4 readable lanes.
            let keep = |b| _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(window, b), b));
            let x0: __m256d = _mm256_and_pd(_mm256_loadu_pd(base.add(row0)), keep(bits0));
            let x1: __m256d = _mm256_and_pd(_mm256_loadu_pd(base.add(row0 + 4)), keep(bits1));
            let x2: __m256d = _mm256_and_pd(_mm256_loadu_pd(base.add(row0 + 8)), keep(bits2));
            let x3: __m256d = _mm256_and_pd(_mm256_loadu_pd(base.add(row0 + 12)), keep(bits3));
            acc0 = _mm256_add_pd(acc0, x0);
            acc1 = _mm256_add_pd(acc1, x1);
            acc2 = _mm256_add_pd(acc2, x2);
            acc3 = _mm256_add_pd(acc3, x3);
            sq0 = _mm256_add_pd(sq0, _mm256_mul_pd(x0, x0));
            sq1 = _mm256_add_pd(sq1, _mm256_mul_pd(x1, x1));
            sq2 = _mm256_add_pd(sq2, _mm256_mul_pd(x2, x2));
            sq3 = _mm256_add_pd(sq3, _mm256_mul_pd(x3, x3));
            g += 1;
        }
    }
    // SAFETY: same 16-f64 accumulator arrays as the loads above.
    _mm256_storeu_pd(s.as_mut_ptr(), acc0);
    _mm256_storeu_pd(s.as_mut_ptr().add(4), acc1);
    _mm256_storeu_pd(s.as_mut_ptr().add(8), acc2);
    _mm256_storeu_pd(s.as_mut_ptr().add(12), acc3);
    _mm256_storeu_pd(s2.as_mut_ptr(), sq0);
    _mm256_storeu_pd(s2.as_mut_ptr().add(4), sq1);
    _mm256_storeu_pd(s2.as_mut_ptr().add(8), sq2);
    _mm256_storeu_pd(s2.as_mut_ptr().add(12), sq3);
}

/// `std::simd` masked-sum block body (nightly `portable_simd`): two 8-lane
/// registers covering the canonical 16-lane layout, with masks decoded from
/// the cover bits via `Mask::from_bitmask`. Whole 64-row words only.
#[cfg(feature = "simd")]
fn simd_update(
    n_valid: &mut u64,
    s: &mut [f64; LANES],
    s2: &mut [f64; LANES],
    masked: &[u64],
    values: &[f64],
) {
    use std::simd::{f64x8, Mask, Select as _};
    debug_assert_eq!(values.len(), masked.len() * 64);
    let (s_lo, s_hi) = s.split_at_mut(8);
    let (q_lo, q_hi) = s2.split_at_mut(8);
    let mut acc_a = f64x8::from_slice(s_lo);
    let mut acc_b = f64x8::from_slice(s_hi);
    let mut sq_a = f64x8::from_slice(q_lo);
    let mut sq_b = f64x8::from_slice(q_hi);
    let zero = f64x8::splat(0.0);
    for (&m, chunk) in masked.iter().zip(values.chunks_exact(64)) {
        *n_valid += u64::from(m.count_ones());
        for (g, group) in chunk.chunks_exact(LANES).enumerate() {
            let (lo, hi) = group.split_at(8);
            let keep_a: Mask<i64, 8> = Mask::from_bitmask((m >> (g * 16)) & 0xff);
            let keep_b: Mask<i64, 8> = Mask::from_bitmask((m >> (g * 16 + 8)) & 0xff);
            let x_a = keep_a.select(f64x8::from_slice(lo), zero);
            let x_b = keep_b.select(f64x8::from_slice(hi), zero);
            acc_a += x_a;
            acc_b += x_b;
            sq_a += x_a * x_a;
            sq_b += x_b * x_b;
        }
    }
    s_lo.copy_from_slice(&acc_a.to_array());
    s_hi.copy_from_slice(&acc_b.to_array());
    q_lo.copy_from_slice(&sq_a.to_array());
    q_hi.copy_from_slice(&sq_b.to_array());
}

/// NEON masked-sum block body: eight 2-lane accumulator pairs covering the
/// canonical 16-lane layout. Whole 64-row words only.
///
/// # Safety
/// NEON is part of the aarch64 baseline; `values` must hold exactly 64
/// values per word of `masked`.
#[cfg(all(feature = "simd-arch", target_arch = "aarch64"))]
#[target_feature(enable = "neon")]
#[allow(unsafe_code)]
// SAFETY: `unsafe fn` solely because of `#[target_feature]`; NEON is in the
// aarch64 baseline, so every call through `SumsKernel::update` is sound.
unsafe fn neon_update(
    n_valid: &mut u64,
    s: &mut [f64; LANES],
    s2: &mut [f64; LANES],
    masked: &[u64],
    values: &[f64],
) {
    use std::arch::aarch64::{
        float64x2_t, vaddq_f64, vandq_u64, vld1q_f64, vld1q_u64, vmulq_f64, vreinterpretq_f64_u64,
        vreinterpretq_u64_f64, vst1q_f64,
    };
    debug_assert_eq!(values.len(), masked.len() * 64);
    let mut acc = [vld1q_f64([0.0f64, 0.0].as_ptr()); 8];
    let mut sq = acc;
    for (p, (a, q)) in acc.iter_mut().zip(sq.iter_mut()).enumerate() {
        // SAFETY: the accumulator arrays are 16 contiguous f64s; `p < 8`
        // keeps the 2-lane load in bounds.
        *a = vld1q_f64(s.as_ptr().add(2 * p));
        *q = vld1q_f64(s2.as_ptr().add(2 * p));
    }
    for (&m, chunk) in masked.iter().zip(values.chunks_exact(64)) {
        *n_valid += u64::from(m.count_ones());
        for (g, group) in chunk.chunks_exact(LANES).enumerate() {
            let window = (m >> (g * 16)) & 0xffff;
            for (p, (a, q)) in acc.iter_mut().zip(sq.iter_mut()).enumerate() {
                let pair = [
                    0u64.wrapping_sub((window >> (2 * p)) & 1),
                    0u64.wrapping_sub((window >> (2 * p + 1)) & 1),
                ];
                // SAFETY: `pair` is 2 contiguous u64s and `group` holds 16
                // contiguous f64s, so `add(2 * p)` with `p < 8` is in
                // bounds for a 2-lane load.
                let keep = vld1q_u64(pair.as_ptr());
                let x = vreinterpretq_f64_u64(vandq_u64(
                    vreinterpretq_u64_f64(vld1q_f64(group.as_ptr().add(2 * p))),
                    keep,
                ));
                *a = vaddq_f64(*a, x);
                *q = vaddq_f64(*q, vmulq_f64(x, x));
            }
        }
    }
    for (p, (a, q)) in acc.iter().zip(sq.iter()).enumerate() {
        // SAFETY: same 16-f64 accumulator arrays as the loads above; `p < 8`
        // keeps the 2-lane store in bounds.
        vst1q_f64(s.as_mut_ptr().add(2 * p), *a);
        vst1q_f64(s2.as_mut_ptr().add(2 * p), *q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(values: &[f64], valid: &[u64], cover: &[u64]) -> (u64, f64, f64) {
        let mut n_valid = 0u64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for (row, &x) in values.iter().enumerate() {
            let bit = |w: &[u64]| w[row / 64] >> (row % 64) & 1 == 1;
            if bit(valid) && bit(cover) {
                n_valid += 1;
                sum += x;
                sum_sq += x * x;
            }
        }
        (n_valid, sum, sum_sq)
    }

    fn words_of(n: usize, pred: impl Fn(usize) -> bool) -> Vec<u64> {
        let mut w = vec![0u64; n.div_ceil(64)];
        for r in (0..n).filter(|&r| pred(r)) {
            w[r / 64] |= 1 << (r % 64);
        }
        w
    }

    #[test]
    fn all_paths_agree_on_integer_values() {
        let n = 1000;
        let values: Vec<f64> = (0..n).map(|i| ((i * 37) % 1000) as f64 - 500.0).collect();
        let valid = words_of(n, |r| r % 7 != 3);
        let cover = words_of(n, |r| r % 3 != 1);
        let expect = reference(&values, &valid, &cover);
        for path in available_kernels() {
            let got = masked_sums_on(path, &values, &valid, &cover);
            assert_eq!(got.0, expect.0, "{path:?} n_valid");
            assert_eq!(got.1.to_bits(), expect.1.to_bits(), "{path:?} sum");
            assert_eq!(got.2.to_bits(), expect.2.to_bits(), "{path:?} sum_sq");
        }
    }

    #[test]
    fn vector_paths_bitwise_identical_to_each_other() {
        let n = 777;
        let values: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1e3).collect();
        let valid = words_of(n, |r| r % 5 != 0);
        let cover = words_of(n, |r| r % 2 == 0);
        let portable = masked_sums_on(KernelPath::Portable, &values, &valid, &cover);
        for path in available_kernels() {
            if path == KernelPath::Scalar {
                continue;
            }
            let got = masked_sums_on(path, &values, &valid, &cover);
            assert_eq!(got.0, portable.0, "{path:?} n_valid");
            assert_eq!(got.1.to_bits(), portable.1.to_bits(), "{path:?} sum");
            assert_eq!(got.2.to_bits(), portable.2.to_bits(), "{path:?} sum_sq");
        }
    }

    #[test]
    fn streaming_blocks_match_one_shot() {
        let n = BLOCK_WORDS * 64 * 2 + 100;
        let values: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
        let valid = words_of(n, |r| r % 11 != 7);
        let cover = words_of(n, |r| r % 4 != 2);
        for path in available_kernels() {
            let one_shot = {
                let mut k = SumsKernel::new(path);
                let masked: Vec<u64> = cover.iter().zip(&valid).map(|(&c, &v)| c & v).collect();
                k.update(&masked, &values);
                k.finish()
            };
            let blocked = masked_sums_on(path, &values, &valid, &cover);
            assert_eq!(one_shot.0, blocked.0, "{path:?}");
            assert_eq!(one_shot.1.to_bits(), blocked.1.to_bits(), "{path:?}");
            assert_eq!(one_shot.2.to_bits(), blocked.2.to_bits(), "{path:?}");
        }
    }

    #[test]
    fn masked_out_non_finite_rows_do_not_poison() {
        let n = 70;
        let mut values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        values[5] = f64::INFINITY;
        values[65] = f64::NAN;
        let valid = words_of(n, |r| r != 5 && r != 65);
        let cover = words_of(n, |_| true);
        for path in available_kernels() {
            let (n_valid, sum, sum_sq) = masked_sums_on(path, &values, &valid, &cover);
            assert_eq!(n_valid, 68, "{path:?}");
            assert!(sum.is_finite() && sum_sq.is_finite(), "{path:?}");
        }
    }

    #[test]
    fn empty_input() {
        for path in available_kernels() {
            assert_eq!(masked_sums_on(path, &[], &[], &[]), (0, 0.0, 0.0));
        }
    }

    #[test]
    fn active_kernel_is_available() {
        assert!(active_kernel().is_available());
        assert!(available_kernels().contains(&active_kernel()));
    }
}
