//! Normal and multivariate normal sampling plus densities.
//!
//! The synthetic-peak dataset (§VI-A) injects errors with probability equal
//! to the normalized density of a multivariate normal with mean `[0, 1, 2]`
//! and identity-scaled covariance; this module provides exactly the pieces
//! that generator needs.

use rand::{Rng, RngExt as _};

/// Univariate normal distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics if `std_dev` is not strictly positive and finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev > 0.0 && std_dev.is_finite(),
            "standard deviation must be positive and finite"
        );
        Self { mean, std_dev }
    }

    /// The standard normal.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Draws one sample via the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 in (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }
}

/// Cholesky factorisation of a symmetric positive-definite matrix
/// (row-major, `n×n`). Returns the lower-triangular factor `L` with
/// `L·Lᵀ = A`, or `None` when the matrix is not positive definite.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Multivariate normal distribution with full covariance.
#[derive(Debug, Clone, PartialEq)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    /// Lower Cholesky factor of the covariance.
    chol: Vec<f64>,
    /// Inverse covariance (for the density).
    precision: Vec<f64>,
    /// `1 / sqrt((2π)^d · det Σ)`.
    norm_const: f64,
    dim: usize,
}

impl MultivariateNormal {
    /// Creates a multivariate normal from a mean vector and a row-major
    /// covariance matrix.
    ///
    /// Returns `None` when the covariance is not symmetric positive definite.
    pub fn new(mean: Vec<f64>, covariance: &[f64]) -> Option<Self> {
        let dim = mean.len();
        assert_eq!(covariance.len(), dim * dim, "covariance shape mismatch");
        let chol = cholesky(covariance, dim)?;
        // det Σ = prod(diag(L))²; Σ⁻¹ via forward/back substitution per basis
        // vector.
        let mut det_sqrt = 1.0;
        for i in 0..dim {
            det_sqrt *= chol[i * dim + i];
        }
        let mut precision = vec![0.0; dim * dim];
        for col in 0..dim {
            // Solve L y = e_col.
            let mut y = vec![0.0; dim];
            for i in 0..dim {
                let mut sum = if i == col { 1.0 } else { 0.0 };
                for k in 0..i {
                    sum -= chol[i * dim + k] * y[k];
                }
                y[i] = sum / chol[i * dim + i];
            }
            // Solve Lᵀ x = y.
            let mut x = vec![0.0; dim];
            for i in (0..dim).rev() {
                let mut sum = y[i];
                for k in (i + 1)..dim {
                    sum -= chol[k * dim + i] * x[k];
                }
                x[i] = sum / chol[i * dim + i];
            }
            for i in 0..dim {
                precision[i * dim + col] = x[i];
            }
        }
        let norm_const = 1.0 / ((2.0 * std::f64::consts::PI).powi(dim as i32).sqrt() * det_sqrt);
        Some(Self {
            mean,
            chol,
            precision,
            norm_const,
            dim,
        })
    }

    /// An isotropic normal `N(mean, σ²·I)`.
    ///
    /// # Panics
    /// Panics if `variance` is not strictly positive.
    pub fn isotropic(mean: Vec<f64>, variance: f64) -> Self {
        assert!(variance > 0.0, "variance must be positive");
        let dim = mean.len();
        let mut cov = vec![0.0; dim * dim];
        for i in 0..dim {
            cov[i * dim + i] = variance;
        }
        Self::new(mean, &cov).expect("isotropic covariance is positive definite")
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The mean vector.
    #[inline]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Draws one sample (`μ + L·z`, `z` i.i.d. standard normal).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let std = Normal::standard();
        let z: Vec<f64> = (0..self.dim).map(|_| std.sample(rng)).collect();
        let mut out = self.mean.clone();
        for (i, o) in out.iter_mut().enumerate() {
            for (k, &zk) in z.iter().enumerate().take(i + 1) {
                *o += self.chol[i * self.dim + k] * zk;
            }
        }
        out
    }

    /// Probability density at `x`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()`.
    pub fn pdf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "point dimensionality mismatch");
        let d: Vec<f64> = x.iter().zip(&self.mean).map(|(a, b)| a - b).collect();
        let mut quad = 0.0;
        for i in 0..self.dim {
            for j in 0..self.dim {
                quad += d[i] * self.precision[i * self.dim + j] * d[j];
            }
        }
        self.norm_const * (-0.5 * quad).exp()
    }

    /// Density normalized so the peak (at the mean) equals `1.0`.
    ///
    /// This is the "normalized multivariate normal distribution" used as a
    /// flip probability by the synthetic-peak generator (§VI-A).
    pub fn normalized_pdf(&self, x: &[f64]) -> f64 {
        self.pdf(x) / self.norm_const
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::MeanVar;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sample_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Normal::new(3.0, 2.0);
        let acc: MeanVar = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!((acc.mean() - 3.0).abs() < 0.05, "mean = {}", acc.mean());
        assert!(
            (acc.variance() - 4.0).abs() < 0.15,
            "var = {}",
            acc.variance()
        );
    }

    #[test]
    fn normal_pdf_peak() {
        let d = Normal::standard();
        let peak = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((d.pdf(0.0) - peak).abs() < 1e-12);
        assert!(d.pdf(1.0) < d.pdf(0.0));
        assert!((d.pdf(1.0) - d.pdf(-1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn normal_rejects_bad_sigma() {
        let _ = Normal::new(0.0, 0.0);
    }

    #[test]
    fn cholesky_identity() {
        let l = cholesky(&[1.0, 0.0, 0.0, 1.0], 2).unwrap();
        assert_eq!(l, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let l = cholesky(&[4.0, 2.0, 2.0, 3.0], 2).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_non_pd() {
        assert!(cholesky(&[1.0, 2.0, 2.0, 1.0], 2).is_none());
        assert!(cholesky(&[0.0, 0.0, 0.0, 0.0], 2).is_none());
    }

    #[test]
    fn mvn_pdf_matches_product_of_univariates() {
        let mvn = MultivariateNormal::isotropic(vec![0.0, 1.0, 2.0], 1.0);
        let n0 = Normal::new(0.0, 1.0);
        let n1 = Normal::new(1.0, 1.0);
        let n2 = Normal::new(2.0, 1.0);
        let x = [0.5, 0.5, 0.5];
        let expected = n0.pdf(x[0]) * n1.pdf(x[1]) * n2.pdf(x[2]);
        assert!((mvn.pdf(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn mvn_normalized_pdf_peaks_at_one() {
        let mvn = MultivariateNormal::isotropic(vec![0.0, 1.0, 2.0], 1.0);
        assert!((mvn.normalized_pdf(&[0.0, 1.0, 2.0]) - 1.0).abs() < 1e-12);
        let off = mvn.normalized_pdf(&[3.0, 3.0, 3.0]);
        assert!(off > 0.0 && off < 1.0);
    }

    #[test]
    fn mvn_sample_moments() {
        let mvn = MultivariateNormal::new(vec![1.0, -2.0], &[2.0, 0.6, 0.6, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut a0 = MeanVar::new();
        let mut a1 = MeanVar::new();
        let mut cov = 0.0;
        let n = 50_000;
        let samples: Vec<Vec<f64>> = (0..n).map(|_| mvn.sample(&mut rng)).collect();
        for s in &samples {
            a0.push(s[0]);
            a1.push(s[1]);
        }
        for s in &samples {
            cov += (s[0] - a0.mean()) * (s[1] - a1.mean());
        }
        cov /= (n - 1) as f64;
        assert!((a0.mean() - 1.0).abs() < 0.05);
        assert!((a1.mean() + 2.0).abs() < 0.05);
        assert!((a0.variance() - 2.0).abs() < 0.1);
        assert!((a1.variance() - 1.0).abs() < 0.05);
        assert!((cov - 0.6).abs() < 0.05, "cov = {cov}");
    }
}
