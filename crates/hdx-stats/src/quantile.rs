//! Quantile computation for the unsupervised discretization baseline (§VI-D).

/// The `q`-quantile (0 ≤ q ≤ 1) of `values` using linear interpolation
/// between order statistics (type-7, the numpy default).
///
/// `NaN`s are ignored. Returns `None` when no finite values remain.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let h = q * (v.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// The `k−1` interior cut points splitting `values` into `k` equal-frequency
/// bins, deduplicated (ties can collapse adjacent cut points).
///
/// Returns an empty vector when `k < 2` or there is no data.
pub fn quantiles(values: &[f64], k: usize) -> Vec<f64> {
    if k < 2 {
        return Vec::new();
    }
    let mut cuts = Vec::with_capacity(k - 1);
    for i in 1..k {
        if let Some(c) = quantile(values, i as f64 / k as f64) {
            cuts.push(c);
        }
    }
    cuts.dedup();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.5), Some(2.5));
    }

    #[test]
    fn extremes() {
        let v = [5.0, -1.0, 3.0];
        assert_eq!(quantile(&v, 0.0), Some(-1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
    }

    #[test]
    fn nan_ignored_and_empty_none() {
        assert_eq!(quantile(&[f64::NAN, 2.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_q_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn equal_frequency_cuts() {
        let v: Vec<f64> = (0..100).map(f64::from).collect();
        let cuts = quantiles(&v, 4);
        assert_eq!(cuts.len(), 3);
        assert!((cuts[0] - 24.75).abs() < 1e-9);
        assert!((cuts[1] - 49.5).abs() < 1e-9);
        assert!((cuts[2] - 74.25).abs() < 1e-9);
    }

    #[test]
    fn constant_data_collapses() {
        let v = [7.0; 50];
        let cuts = quantiles(&v, 5);
        assert_eq!(cuts, vec![7.0]);
    }

    #[test]
    fn degenerate_k() {
        assert!(quantiles(&[1.0, 2.0], 0).is_empty());
        assert!(quantiles(&[1.0, 2.0], 1).is_empty());
        assert!(quantiles(&[], 4).is_empty());
    }
}
