//! Numerically stable running mean/variance (Welford's algorithm).

/// Online accumulator of count, mean and variance.
///
/// Two accumulators can be [`merge`](MeanVar::merge)d, which the miners use
/// to combine per-partition statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one (Chan's parallel formula).
    pub fn merge(&mut self, other: &MeanVar) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `0.0` when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n−1` denominator); `0.0` when `n < 2`.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `0.0` when empty.
    #[inline]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
}

impl FromIterator<f64> for MeanVar {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = MeanVar::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form() {
        let acc: MeanVar = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.population_variance() - 4.0).abs() < 1e-12);
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let acc = MeanVar::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        let one: MeanVar = [3.0].into_iter().collect();
        assert_eq!(one.mean(), 3.0);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.5, -1.0, 8.0, 0.25];
        let whole: MeanVar = xs.iter().copied().collect();
        let mut left: MeanVar = xs[..3].iter().copied().collect();
        let right: MeanVar = xs[3..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs: MeanVar = [1.0, 2.0].into_iter().collect();
        let mut a = xs;
        a.merge(&MeanVar::new());
        assert_eq!(a, xs);
        let mut b = MeanVar::new();
        b.merge(&xs);
        assert_eq!(b, xs);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Catastrophic cancellation check: variance of {1e9, 1e9+1, 1e9+2}.
        let acc: MeanVar = [1e9, 1e9 + 1.0, 1e9 + 2.0].into_iter().collect();
        assert!((acc.variance() - 1.0).abs() < 1e-6);
    }
}
