#![cfg_attr(feature = "simd", feature(portable_simd))]
//! # hdx-stats
//!
//! Statistics substrate for the H-DivExplorer reproduction:
//!
//! * [`binary_entropy`] and split-gain helpers (paper §V-A, entropy
//!   criterion);
//! * [`welch_t`] — Welch's t-test for the statistical significance of a
//!   subgroup's divergence (paper §III-B);
//! * [`MeanVar`] — a numerically stable (Welford) running mean/variance
//!   accumulator;
//! * [`Normal`] and [`MultivariateNormal`] samplers plus a Cholesky
//!   factorisation, used by the synthetic-peak generator (paper §VI-A);
//! * [`quantiles`] — equal-frequency cut points for the quantile
//!   discretization baseline (paper §VI-D);
//! * [`Outcome`] / [`StatAccum`] — the outcome-function values of §III-B and
//!   the additive accumulator that lets the miners compute divergence in the
//!   same pass as support;
//! * [`OutcomePlanes`] — word-level bitplane kernels that fold a cover bitset
//!   into a [`StatAccum`] with fused popcounts / vectorized masked sums
//!   (exact counts everywhere; sums bitwise identical to the scalar path for
//!   integer-valued outcomes — see [`simd`] for the dispatch table and the
//!   full exactness contract);
//! * [`simd`] — the masked-sum kernel layer: portable lane kernel, optional
//!   `std::simd` / AVX2 / NEON paths, runtime dispatch
//!   ([`simd::active_kernel`]) and the `HDX_FORCE_SCALAR` escape hatch;
//! * [`approx`] — epsilon-aware float comparisons (the only sanctioned way
//!   to compare divergences/t-values for equality; see `hdx-lint`'s
//!   `no-float-eq` rule).

/// Tolerance-based floating-point comparison helpers.
pub mod approx;

/// Vectorized masked-sum kernels (portable / `std::simd` / AVX2 / NEON)
/// behind one runtime dispatcher; see the module docs for the exactness
/// contract.
#[allow(unsafe_code)] // Audited intrinsics: see UNSAFE_LEDGER.md.
pub mod simd;

mod accum;
mod dist;
mod entropy;
mod outcome;
mod plane;
mod quantile;
mod tdist;
mod welch;

pub use accum::MeanVar;
pub use approx::{approx_eq, approx_ne, approx_zero, same_sign};
pub use dist::{cholesky, MultivariateNormal, Normal};
pub use entropy::{binary_entropy, entropy_of_counts};
pub use outcome::{Outcome, StatAccum};
pub use plane::OutcomePlanes;
pub use quantile::{quantile, quantiles};
pub use simd::{active_kernel, available_kernels, KernelPath};
pub use tdist::{t_cdf, t_p_value, t_quantile, welch_df, welch_p_value};
pub use welch::{bernoulli_variance, welch_t, welch_t_from_counts};
