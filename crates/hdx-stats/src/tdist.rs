//! Student's t distribution: p-values for Welch's test.
//!
//! Subgroup discovery produces *many* t-values (§III-B measures significance
//! with Welch's t); converting them to p-values enables principled
//! thresholds and multiple-testing control (see
//! `DivergenceReport::significant_fdr` in `hdx-core`). The CDF is computed
//! through the regularized incomplete beta function (continued-fraction
//! expansion, Lentz's algorithm), and the Welch–Satterthwaite equation
//! supplies the degrees of freedom.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction (Numerical Recipes' `betacf`), valid for `x ∈ [0, 1]`,
/// `a, b > 0`.
fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    if crate::approx::approx_zero(x) {
        return 0.0;
    }
    if crate::approx::approx_eq(x, 1.0) {
        return 1.0;
    }
    // `front` is symmetric under (a, b, x) ↔ (b, a, 1−x), so both branches
    // share it; the reflection is computed directly (not via recursion,
    // which would ping-pong forever at the branch boundary).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Panics
/// Panics when `df <= 0`.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom:
/// `P(|T| ≥ |t|)`.
pub fn t_p_value(t: f64, df: f64) -> f64 {
    if t.is_nan() {
        return 1.0;
    }
    (2.0 * (1.0 - t_cdf(t.abs(), df))).clamp(0.0, 1.0)
}

/// Quantile (inverse CDF) of Student's t distribution, by bisection on the
/// monotone CDF. Accurate to ~1e-10, which is far below statistical noise.
///
/// # Panics
/// Panics when `p` is outside `(0, 1)` or `df <= 0`.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    assert!(df > 0.0, "degrees of freedom must be positive");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Bracket: |t| grows slowly with p; 1e8 covers any practical tail.
    let (mut lo, mut hi) = (-1e8_f64, 1e8_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + lo.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Welch–Satterthwaite effective degrees of freedom for two samples with
/// (unbiased) variances `v1`, `v2` and sizes `n1`, `n2`.
///
/// Returns `None` when either sample has fewer than two observations or
/// both variance terms vanish.
pub fn welch_df(v1: f64, n1: u64, v2: f64, n2: u64) -> Option<f64> {
    if n1 < 2 || n2 < 2 {
        return None;
    }
    let a = v1 / n1 as f64;
    let b = v2 / n2 as f64;
    let denom = a * a / (n1 - 1) as f64 + b * b / (n2 - 1) as f64;
    if denom <= 0.0 {
        return None;
    }
    Some((a + b).powi(2) / denom)
}

/// Two-sided Welch p-value from two sample summaries (means are folded into
/// the caller's t; this takes the already-computed t statistic).
pub fn welch_p_value(t: f64, v1: f64, n1: u64, v2: f64, n2: u64) -> Option<f64> {
    welch_df(v1, n1, v2, n2).map(|df| t_p_value(t, df))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_symmetry_and_median() {
        for df in [1.0, 5.0, 30.0, 200.0] {
            assert!((t_cdf(0.0, df) - 0.5).abs() < 1e-12, "df={df}");
            for t in [0.5, 1.3, 2.7] {
                let p = t_cdf(t, df);
                let q = t_cdf(-t, df);
                assert!((p + q - 1.0).abs() < 1e-10, "df={df} t={t}");
                assert!(p > 0.5);
            }
        }
    }

    #[test]
    fn t_cdf_matches_reference_values() {
        // Cross-checked with scipy.stats.t.cdf.
        let cases = [
            (1.0, 1.0, 0.75),
            (2.0, 10.0, 0.963_306),
            (1.96, 1000.0, 0.974_890),
            (-2.5, 5.0, 0.027_245),
        ];
        for (t, df, expected) in cases {
            let got = t_cdf(t, df);
            assert!(
                (got - expected).abs() < 5e-4,
                "t={t} df={df}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn large_df_approaches_normal() {
        // t(∞) = N(0,1): Φ(1.959964) ≈ 0.975.
        let p = t_cdf(1.959_964, 1e6);
        assert!((p - 0.975).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn p_values_behave() {
        assert!((t_p_value(0.0, 10.0) - 1.0).abs() < 1e-12);
        let p1 = t_p_value(2.0, 30.0);
        let p2 = t_p_value(3.0, 30.0);
        assert!(p1 > p2, "larger |t| → smaller p");
        assert_eq!(t_p_value(2.0, 30.0), t_p_value(-2.0, 30.0));
        // scipy: 2*(1-t.cdf(2, 30)) ≈ 0.054645.
        assert!((p1 - 0.0546).abs() < 5e-4, "p1 = {p1}");
        assert_eq!(t_p_value(f64::NAN, 5.0), 1.0);
    }

    #[test]
    fn welch_df_formula() {
        // Equal variances and sizes → df = 2(n−1).
        let df = welch_df(4.0, 16, 4.0, 16).unwrap();
        assert!((df - 30.0).abs() < 1e-9, "df = {df}");
        // Degenerate inputs.
        assert!(welch_df(1.0, 1, 1.0, 30).is_none());
        assert!(welch_df(0.0, 10, 0.0, 10).is_none());
        // Asymmetric case, cross-checked by hand:
        // a=2/10=.2, b=8/20=.4, df = .36/(.04/9 + .16/19) ≈ 27.982
        let df2 = welch_df(2.0, 10, 8.0, 20).unwrap();
        assert!((df2 - 27.982).abs() < 0.01, "df2 = {df2}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        for df in [3.0, 12.0, 100.0] {
            for p in [0.025, 0.5, 0.9, 0.975] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-8, "df={df} p={p}");
            }
        }
        // Known value: t_{0.975, 10} ≈ 2.228.
        assert!((t_quantile(0.975, 10.0) - 2.228).abs() < 1e-3);
        // Symmetry.
        assert!((t_quantile(0.975, 10.0) + t_quantile(0.025, 10.0)).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn quantile_rejects_bad_p() {
        let _ = t_quantile(1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_df_panics() {
        let _ = t_cdf(1.0, 0.0);
    }
}
