//! Binary entropy, used by the entropy-based split gain criterion (§V-A).

/// Shannon entropy (natural log) of a Bernoulli distribution with success
/// probability `p`.
///
/// `H(p) = −p ln p − (1−p) ln(1−p)`, with the usual convention
/// `0 ln 0 = 0`. Returns `0.0` for `p` outside `(0, 1)` (degenerate or
/// undefined inputs carry no split information).
#[inline]
pub fn binary_entropy(p: f64) -> f64 {
    if !(p > 0.0 && p < 1.0) {
        return 0.0;
    }
    -p * p.ln() - (1.0 - p) * (1.0 - p).ln()
}

/// Entropy of the boolean outcome over a node, from its positive/negative
/// counts (`⊥` outcomes are excluded upstream, per §V-A).
///
/// Returns `0.0` for empty nodes.
#[inline]
pub fn entropy_of_counts(k_pos: u64, k_neg: u64) -> f64 {
    let n = k_pos + k_neg;
    if n == 0 {
        return 0.0;
    }
    binary_entropy(k_pos as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_at_half() {
        let h = binary_entropy(0.5);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(binary_entropy(0.3) < h);
        assert!(binary_entropy(0.7) < h);
    }

    #[test]
    fn symmetric() {
        for p in [0.1, 0.25, 0.4] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert_eq!(binary_entropy(-0.5), 0.0);
        assert_eq!(binary_entropy(2.0), 0.0);
        assert_eq!(binary_entropy(f64::NAN), 0.0);
    }

    #[test]
    fn counts_form() {
        assert_eq!(entropy_of_counts(0, 0), 0.0);
        assert_eq!(entropy_of_counts(5, 0), 0.0);
        assert!((entropy_of_counts(3, 3) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((entropy_of_counts(1, 3) - binary_entropy(0.25)).abs() < 1e-12);
    }
}
