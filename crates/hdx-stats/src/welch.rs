//! Welch's t-test, used to score the statistical significance of divergence.
//!
//! Following DivExplorer (and §III-B of this paper), the significance of a
//! subgroup's divergence is the Welch t-value comparing the outcome mean over
//! the subgroup against the outcome mean over the whole dataset.

/// Welch's t statistic for two samples summarised by mean, *unbiased sample
/// variance* and size.
///
/// `t = (m1 − m2) / sqrt(v1/n1 + v2/n2)`.
///
/// Returns `0.0` when either sample is empty or both variance terms vanish
/// (no evidence either way).
pub fn welch_t(mean1: f64, var1: f64, n1: u64, mean2: f64, var2: f64, n2: u64) -> f64 {
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    let se2 = var1 / n1 as f64 + var2 / n2 as f64;
    if se2 <= 0.0 {
        return 0.0;
    }
    (mean1 - mean2) / se2.sqrt()
}

/// Unbiased sample variance of a Bernoulli sample with `k_pos` successes out
/// of `n` trials: `p(1−p)·n/(n−1)`.
///
/// Returns `0.0` when `n < 2`.
pub fn bernoulli_variance(k_pos: u64, n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let p = k_pos as f64 / n as f64;
    p * (1.0 - p) * n as f64 / (n - 1) as f64
}

/// Welch t-value between two boolean-outcome groups given raw counts
/// (positives and valid totals), as used for probability statistics such as
/// the false-positive rate.
pub fn welch_t_from_counts(k_pos1: u64, n1: u64, k_pos2: u64, n2: u64) -> f64 {
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    let m1 = k_pos1 as f64 / n1 as f64;
    let m2 = k_pos2 as f64 / n2 as f64;
    welch_t(
        m1,
        bernoulli_variance(k_pos1, n1),
        n1,
        m2,
        bernoulli_variance(k_pos2, n2),
        n2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accum::MeanVar;

    #[test]
    fn textbook_example() {
        // Two samples with known Welch t (cross-checked against scipy
        // ttest_ind(equal_var=False)).
        let a: MeanVar = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ]
        .into_iter()
        .collect();
        let b: MeanVar = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0,
            23.9,
        ]
        .into_iter()
        .collect();
        let t = welch_t(
            a.mean(),
            a.variance(),
            a.count(),
            b.mean(),
            b.variance(),
            b.count(),
        );
        assert!((t - (-2.8)).abs() < 0.15, "t = {t}");
    }

    #[test]
    fn sign_tracks_mean_difference() {
        assert!(welch_t(1.0, 0.5, 30, 0.0, 0.5, 30) > 0.0);
        assert!(welch_t(0.0, 0.5, 30, 1.0, 0.5, 30) < 0.0);
        assert_eq!(
            welch_t(1.0, 0.5, 30, 0.0, 0.5, 30),
            -welch_t(0.0, 0.5, 30, 1.0, 0.5, 30)
        );
    }

    #[test]
    fn degenerate_inputs_give_zero() {
        assert_eq!(welch_t(1.0, 0.5, 0, 0.0, 0.5, 30), 0.0);
        assert_eq!(welch_t(1.0, 0.5, 30, 0.0, 0.5, 0), 0.0);
        assert_eq!(welch_t(1.0, 0.0, 30, 0.0, 0.0, 30), 0.0);
    }

    #[test]
    fn bernoulli_variance_formula() {
        // p = 0.5, n = 2 → 0.25 * 2/1 = 0.5
        assert!((bernoulli_variance(1, 2) - 0.5).abs() < 1e-12);
        assert_eq!(bernoulli_variance(1, 1), 0.0);
        assert_eq!(bernoulli_variance(0, 0), 0.0);
        // all-positive sample has zero variance
        assert_eq!(bernoulli_variance(5, 5), 0.0);
    }

    #[test]
    fn counts_form_matches_manual() {
        let t1 = welch_t_from_counts(30, 100, 10, 100);
        let m1 = 0.3;
        let m2 = 0.1;
        let t2 = welch_t(
            m1,
            bernoulli_variance(30, 100),
            100,
            m2,
            bernoulli_variance(10, 100),
            100,
        );
        assert_eq!(t1, t2);
        assert!(t1 > 3.0, "clearly significant difference, t = {t1}");
    }

    #[test]
    fn larger_samples_increase_significance() {
        let small = welch_t_from_counts(3, 10, 10, 100);
        let large = welch_t_from_counts(300, 1000, 1000, 10000);
        assert!(large > small);
    }
}
