//! Word-level outcome kernels: the outcome vector as word-packed bitplanes.
//!
//! The mining hot loop computes a [`StatAccum`] for every frequent candidate
//! subgroup. The scalar path ([`StatAccum::push`] over the cover's set bits)
//! walks rows one at a time and dispatches on the [`Outcome`] enum per row.
//! [`OutcomePlanes`] re-encodes the outcome vector **once** as bitplanes so
//! that a subgroup's whole accumulator reduces to word-parallel operations
//! over the cover bitset:
//!
//! * a **valid plane** — bit `r` set iff `o(r) ≠ ⊥`;
//! * a **positive plane** — bit `r` set iff `o(r) = T` (boolean outcomes;
//!   always a subset of the valid plane).
//!
//! When every defined outcome is boolean (the probability-shaped statistics
//! of §V-A: FPR, error rate, …) the accumulator is three fused popcounts:
//!
//! ```text
//! n       = popcount(cover)                  (known from count-first pruning)
//! n_valid = popcount(cover ∧ valid)
//! k⁺      = popcount(cover ∧ pos)
//! ```
//!
//! and `sum = sum_sq = k⁺` exactly (integer-valued `f64` sums are exact below
//! 2⁵³), so the kernel result is **bit-for-bit identical** to the scalar
//! path. For real-valued (or mixed) outcomes the kernel reduces `sum` /
//! `sum_sq` over `cover ∧ valid` through the vectorized masked-sum kernels
//! of [`crate::simd`] (dispatched once per process by
//! [`simd::active_kernel`]): covers stream through in
//! [`BLOCK_WORDS`](crate::simd::BLOCK_WORDS)-sized row blocks, each mask bit
//! expanded into an all-ones/all-zero `f64` lane selector over
//! [`LANES`](crate::simd::LANES) independent lane accumulators.
//!
//! **Exactness contract** (property-tested in `tests/property_kernel.rs`):
//! counts (`n`, `n_valid`, and the whole boolean path) are exact on every
//! kernel path; numeric sums are bitwise identical to the scalar path for
//! *integer-valued* outcomes (every partial sum below 2⁵³ is exactly
//! representable, so association doesn't matter), and within the 16-lane
//! reassociation bound for arbitrary reals. All vector paths are bitwise
//! identical *to each other*, and `HDX_FORCE_SCALAR` restores the historical
//! ascending-order scalar reduction exactly.
//!
//! The planes operate on raw `&[u64]` word slices (least-significant bit =
//! lowest row index, tail bits beyond the last row zero) so `hdx-stats`
//! stays independent of the bitset type; `hdx-items::Bitset::words` exposes
//! exactly this layout.

use crate::outcome::{Outcome, StatAccum};
use crate::simd::{self, SumsKernel, BLOCK_WORDS};

/// Bitplane encoding of an outcome vector (see the [module docs](self)).
///
/// Build once per mining run with [`OutcomePlanes::from_outcomes`], then fold
/// covers into accumulators with [`accum`](OutcomePlanes::accum) (cover
/// already materialised) or [`accum_pair`](OutcomePlanes::accum_pair) (fused
/// over an unmaterialised intersection `a ∧ b`).
#[derive(Debug, Clone)]
pub struct OutcomePlanes {
    /// Number of encoded rows.
    n_rows: usize,
    /// Bit `r` set iff `outcomes[r]` is defined (not `⊥`).
    valid: Vec<u64>,
    /// Bit `r` set iff `outcomes[r] == Bool(true)`; subset of `valid`.
    pos: Vec<u64>,
    /// Per-row numeric outcome value (`0.0` where undefined); only populated
    /// (and only read) on the numeric path.
    values: Vec<f64>,
    /// Whether every defined outcome is boolean (three-popcount fast path).
    all_boolean: bool,
}

impl OutcomePlanes {
    /// Encodes `outcomes` into bitplanes. `O(n)`, done once per mining run.
    pub fn from_outcomes(outcomes: &[Outcome]) -> Self {
        let n = outcomes.len();
        let n_words = n.div_ceil(64);
        let all_boolean = !outcomes.iter().any(|o| matches!(o, Outcome::Real(_)));
        let mut valid = vec![0u64; n_words];
        let mut pos = vec![0u64; n_words];
        let mut values = if all_boolean {
            Vec::new()
        } else {
            vec![0.0; n]
        };
        for (row, o) in outcomes.iter().enumerate() {
            if let Some(v) = o.value() {
                // BOUND: row < n, so row / 64 < n_words by construction.
                valid[row / 64] |= 1u64 << (row % 64);
                if !all_boolean {
                    // BOUND: values was sized to n and row < n.
                    values[row] = v;
                }
            }
            if matches!(o, Outcome::Bool(true)) {
                // BOUND: row < n, so row / 64 < n_words by construction.
                pos[row / 64] |= 1u64 << (row % 64);
            }
        }
        Self {
            n_rows: n,
            valid,
            pos,
            values,
            all_boolean,
        }
    }

    /// Number of encoded rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of 64-bit words per plane (what cover slices must match).
    #[inline]
    pub fn n_words(&self) -> usize {
        self.valid.len()
    }

    /// Whether every defined outcome is boolean, i.e. whether
    /// [`accum`](Self::accum) runs on the three-popcount fast path.
    #[inline]
    pub fn is_boolean(&self) -> bool {
        self.all_boolean
    }

    /// The [`StatAccum`] of the rows set in `cover`, whose popcount the
    /// caller already knows to be `n` (typically from count-first pruning).
    ///
    /// `cover` is word-packed with the same layout as the planes; tail bits
    /// beyond the last row are ignored (they are masked by the valid plane).
    ///
    /// # Panics
    /// Panics when `cover` has a different word count than the planes.
    pub fn accum(&self, cover: &[u64], n: u64) -> StatAccum {
        assert_eq!(
            cover.len(),
            self.valid.len(),
            "cover word-count mismatch against outcome planes"
        );
        if self.all_boolean {
            let mut n_valid = 0u64;
            let mut k_pos = 0u64;
            for ((&c, &v), &p) in cover.iter().zip(&self.valid).zip(&self.pos) {
                n_valid += u64::from((c & v).count_ones());
                k_pos += u64::from((c & p).count_ones());
            }
            StatAccum::from_counts(n, n_valid, k_pos)
        } else {
            self.numeric_reduce(n, cover.iter().zip(&self.valid).map(|(&c, &v)| c & v))
        }
    }

    /// The [`StatAccum`] of the rows in `a ∧ b` — the fused pair kernel used
    /// for leaf candidates; the intersection is never materialised.
    ///
    /// # Panics
    /// Panics when `a` or `b` has a different word count than the planes.
    pub fn accum_pair(&self, a: &[u64], b: &[u64], n: u64) -> StatAccum {
        assert_eq!(
            a.len(),
            self.valid.len(),
            "cover word-count mismatch against outcome planes"
        );
        assert_eq!(a.len(), b.len(), "cover word-count mismatch");
        if self.all_boolean {
            let mut n_valid = 0u64;
            let mut k_pos = 0u64;
            for (((&wa, &wb), &v), &p) in a.iter().zip(b).zip(&self.valid).zip(&self.pos) {
                let c = wa & wb;
                n_valid += u64::from((c & v).count_ones());
                k_pos += u64::from((c & p).count_ones());
            }
            StatAccum::from_counts(n, n_valid, k_pos)
        } else {
            self.numeric_reduce(
                n,
                a.iter()
                    .zip(b)
                    .zip(&self.valid)
                    .map(|((&x, &y), &v)| x & y & v),
            )
        }
    }

    /// The fused intersect-assign-accumulate kernel: writes `a ∧ b` into
    /// `out` **and** folds its [`StatAccum`] in the same pass, streaming
    /// [`BLOCK_WORDS`]-sized row blocks so each freshly written block is
    /// consumed while still cache-hot — on multi-million-row inputs this
    /// halves the memory traffic of the separate intersect-then-accumulate
    /// sequence it replaces.
    ///
    /// `n` is the popcount of `a ∧ b`, which the caller already knows from
    /// count-first pruning. Tail bits of `a`/`b` beyond the last row must be
    /// zero (both operands holding the clean-tail bitset invariant keeps the
    /// written intersection's tail clean too).
    ///
    /// # Panics
    /// Panics when `a`, `b` or `out` has a different word count than the
    /// planes.
    pub fn accum_assign_pair(&self, a: &[u64], b: &[u64], out: &mut [u64], n: u64) -> StatAccum {
        assert_eq!(
            a.len(),
            self.valid.len(),
            "cover word-count mismatch against outcome planes"
        );
        assert_eq!(a.len(), b.len(), "cover word-count mismatch");
        assert_eq!(a.len(), out.len(), "output word-count mismatch");
        if self.all_boolean {
            let mut n_valid = 0u64;
            let mut k_pos = 0u64;
            for ((((&wa, &wb), &v), &p), o) in a
                .iter()
                .zip(b)
                .zip(&self.valid)
                .zip(&self.pos)
                .zip(out.iter_mut())
            {
                let c = wa & wb;
                *o = c;
                n_valid += u64::from((c & v).count_ones());
                k_pos += u64::from((c & p).count_ones());
            }
            StatAccum::from_counts(n, n_valid, k_pos)
        } else {
            self.numeric_reduce(
                n,
                a.iter()
                    .zip(b)
                    .zip(&self.valid)
                    .zip(out.iter_mut())
                    .map(|(((&x, &y), &v), o)| {
                        let c = x & y;
                        *o = c;
                        c & v
                    }),
            )
        }
    }

    /// Streams pre-masked words (`cover ∧ valid`, produced lazily by the
    /// caller's iterator) through the active [`SumsKernel`] in
    /// [`BLOCK_WORDS`]-sized blocks. Kernel lane state persists across
    /// blocks, so the result is independent of the blocking geometry.
    fn numeric_reduce(&self, n: u64, masked_words: impl Iterator<Item = u64>) -> StatAccum {
        let mut kernel = SumsKernel::new(simd::active_kernel());
        let mut buf = [0u64; BLOCK_WORDS];
        let mut filled = 0usize;
        let mut values_rest = self.values.as_slice();
        for m in masked_words {
            // BOUND: `filled < BLOCK_WORDS` — reset below whenever the
            // buffer fills.
            buf[filled] = m;
            filled += 1;
            if filled == BLOCK_WORDS {
                let take = (BLOCK_WORDS * 64).min(values_rest.len());
                let (vals, rest) = values_rest.split_at(take);
                values_rest = rest;
                kernel.update(&buf, vals);
                filled = 0;
            }
        }
        if filled > 0 {
            let take = (filled * 64).min(values_rest.len());
            let (vals, _) = values_rest.split_at(take);
            let (masked, _) = buf.split_at(filled);
            kernel.update(masked, vals);
        }
        let (n_valid, sum, sum_sq) = kernel.finish();
        StatAccum::from_sums(n, n_valid, sum, sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: push the outcomes of the cover's rows one at a time.
    fn scalar(cover_words: &[u64], outcomes: &[Outcome]) -> StatAccum {
        let mut acc = StatAccum::new();
        for (row, o) in outcomes.iter().enumerate() {
            if cover_words[row / 64] >> (row % 64) & 1 == 1 {
                acc.push(*o);
            }
        }
        acc
    }

    fn cover_of(n: usize, pred: impl Fn(usize) -> bool) -> Vec<u64> {
        let mut words = vec![0u64; n.div_ceil(64)];
        for row in (0..n).filter(|&r| pred(r)) {
            words[row / 64] |= 1 << (row % 64);
        }
        words
    }

    fn popcount(words: &[u64]) -> u64 {
        words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    #[test]
    fn boolean_kernel_is_bitwise_equal_to_scalar() {
        let outcomes: Vec<Outcome> = (0..200)
            .map(|i| match i % 5 {
                0 => Outcome::Undefined,
                1 | 2 => Outcome::Bool(true),
                _ => Outcome::Bool(false),
            })
            .collect();
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        assert!(planes.is_boolean());
        for modulus in [1usize, 2, 3, 7] {
            let cover = cover_of(200, |r| r % modulus == 0);
            let n = popcount(&cover);
            assert_eq!(planes.accum(&cover, n), scalar(&cover, &outcomes));
        }
    }

    #[test]
    fn numeric_and_mixed_kernels_match_scalar() {
        let outcomes: Vec<Outcome> = (0..130)
            .map(|i| match i % 4 {
                0 => Outcome::Real(i as f64 * 0.25 - 7.0),
                1 => Outcome::Bool(i % 8 == 1),
                2 => Outcome::Undefined,
                _ => Outcome::Real(-(i as f64)),
            })
            .collect();
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        assert!(!planes.is_boolean());
        let cover = cover_of(130, |r| r % 3 != 1);
        let n = popcount(&cover);
        // Same summation order as the scalar path → bitwise equal.
        assert_eq!(planes.accum(&cover, n), scalar(&cover, &outcomes));
    }

    #[test]
    fn pair_kernel_equals_materialised_intersection() {
        let outcomes: Vec<Outcome> = (0..150)
            .map(|i| {
                if i % 6 == 0 {
                    Outcome::Undefined
                } else {
                    Outcome::Bool(i % 3 == 0)
                }
            })
            .collect();
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        let a = cover_of(150, |r| r % 2 == 0);
        let b = cover_of(150, |r| r % 3 != 2);
        let joint: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
        let n = popcount(&joint);
        assert_eq!(planes.accum_pair(&a, &b, n), planes.accum(&joint, n));
        assert_eq!(planes.accum_pair(&a, &b, n), scalar(&joint, &outcomes));
    }

    #[test]
    fn empty_and_all_undefined() {
        let planes = OutcomePlanes::from_outcomes(&[]);
        assert_eq!(planes.n_rows(), 0);
        assert_eq!(planes.accum(&[], 0), StatAccum::new());
        let undef = OutcomePlanes::from_outcomes(&[Outcome::Undefined; 70]);
        let cover = cover_of(70, |_| true);
        let acc = undef.accum(&cover, 70);
        assert_eq!(acc.count(), 70);
        assert_eq!(acc.valid_count(), 0);
        assert_eq!(acc.statistic(), None);
    }

    #[test]
    #[should_panic(expected = "word-count mismatch")]
    fn mismatched_cover_panics() {
        let planes = OutcomePlanes::from_outcomes(&[Outcome::Bool(true); 10]);
        let _ = planes.accum(&[0u64, 0u64], 0);
    }
}
