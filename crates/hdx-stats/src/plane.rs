//! Word-level outcome kernels: the outcome vector as word-packed bitplanes.
//!
//! The mining hot loop computes a [`StatAccum`] for every frequent candidate
//! subgroup. The scalar path ([`StatAccum::push`] over the cover's set bits)
//! walks rows one at a time and dispatches on the [`Outcome`] enum per row.
//! [`OutcomePlanes`] re-encodes the outcome vector **once** as bitplanes so
//! that a subgroup's whole accumulator reduces to word-parallel operations
//! over the cover bitset:
//!
//! * a **valid plane** — bit `r` set iff `o(r) ≠ ⊥`;
//! * a **positive plane** — bit `r` set iff `o(r) = T` (boolean outcomes;
//!   always a subset of the valid plane).
//!
//! When every defined outcome is boolean (the probability-shaped statistics
//! of §V-A: FPR, error rate, …) the accumulator is three fused popcounts:
//!
//! ```text
//! n       = popcount(cover)                  (known from count-first pruning)
//! n_valid = popcount(cover ∧ valid)
//! k⁺      = popcount(cover ∧ pos)
//! ```
//!
//! and `sum = sum_sq = k⁺` exactly (integer-valued `f64` sums are exact below
//! 2⁵³), so the kernel result is **bit-for-bit identical** to the scalar
//! path. For real-valued (or mixed) outcomes the kernel falls back to a
//! masked word-chunked summation of `sum` / `sum_sq` over `cover ∧ valid`,
//! visiting rows in the same ascending order as the scalar path — again
//! bitwise-reproducing the scalar accumulator. This equivalence is the
//! kernel's contract and is property-tested in `tests/property_kernel.rs`.
//!
//! The planes operate on raw `&[u64]` word slices (least-significant bit =
//! lowest row index, tail bits beyond the last row zero) so `hdx-stats`
//! stays independent of the bitset type; `hdx-items::Bitset::words` exposes
//! exactly this layout.

use crate::outcome::{Outcome, StatAccum};

/// Bitplane encoding of an outcome vector (see the [module docs](self)).
///
/// Build once per mining run with [`OutcomePlanes::from_outcomes`], then fold
/// covers into accumulators with [`accum`](OutcomePlanes::accum) (cover
/// already materialised) or [`accum_pair`](OutcomePlanes::accum_pair) (fused
/// over an unmaterialised intersection `a ∧ b`).
#[derive(Debug, Clone)]
pub struct OutcomePlanes {
    /// Number of encoded rows.
    n_rows: usize,
    /// Bit `r` set iff `outcomes[r]` is defined (not `⊥`).
    valid: Vec<u64>,
    /// Bit `r` set iff `outcomes[r] == Bool(true)`; subset of `valid`.
    pos: Vec<u64>,
    /// Per-row numeric outcome value (`0.0` where undefined); only populated
    /// (and only read) on the numeric path.
    values: Vec<f64>,
    /// Whether every defined outcome is boolean (three-popcount fast path).
    all_boolean: bool,
}

impl OutcomePlanes {
    /// Encodes `outcomes` into bitplanes. `O(n)`, done once per mining run.
    pub fn from_outcomes(outcomes: &[Outcome]) -> Self {
        let n = outcomes.len();
        let n_words = n.div_ceil(64);
        let all_boolean = !outcomes.iter().any(|o| matches!(o, Outcome::Real(_)));
        let mut valid = vec![0u64; n_words];
        let mut pos = vec![0u64; n_words];
        let mut values = if all_boolean {
            Vec::new()
        } else {
            vec![0.0; n]
        };
        for (row, o) in outcomes.iter().enumerate() {
            if let Some(v) = o.value() {
                // BOUND: row < n, so row / 64 < n_words by construction.
                valid[row / 64] |= 1u64 << (row % 64);
                if !all_boolean {
                    // BOUND: values was sized to n and row < n.
                    values[row] = v;
                }
            }
            if matches!(o, Outcome::Bool(true)) {
                // BOUND: row < n, so row / 64 < n_words by construction.
                pos[row / 64] |= 1u64 << (row % 64);
            }
        }
        Self {
            n_rows: n,
            valid,
            pos,
            values,
            all_boolean,
        }
    }

    /// Number of encoded rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of 64-bit words per plane (what cover slices must match).
    #[inline]
    pub fn n_words(&self) -> usize {
        self.valid.len()
    }

    /// Whether every defined outcome is boolean, i.e. whether
    /// [`accum`](Self::accum) runs on the three-popcount fast path.
    #[inline]
    pub fn is_boolean(&self) -> bool {
        self.all_boolean
    }

    /// The [`StatAccum`] of the rows set in `cover`, whose popcount the
    /// caller already knows to be `n` (typically from count-first pruning).
    ///
    /// `cover` is word-packed with the same layout as the planes; tail bits
    /// beyond the last row are ignored (they are masked by the valid plane).
    ///
    /// # Panics
    /// Panics when `cover` has a different word count than the planes.
    pub fn accum(&self, cover: &[u64], n: u64) -> StatAccum {
        assert_eq!(
            cover.len(),
            self.valid.len(),
            "cover word-count mismatch against outcome planes"
        );
        if self.all_boolean {
            let mut n_valid = 0u64;
            let mut k_pos = 0u64;
            for ((&c, &v), &p) in cover.iter().zip(&self.valid).zip(&self.pos) {
                n_valid += u64::from((c & v).count_ones());
                k_pos += u64::from((c & p).count_ones());
            }
            StatAccum::from_counts(n, n_valid, k_pos)
        } else {
            let (n_valid, sum, sum_sq) = self.masked_sums(cover.iter().copied());
            StatAccum::from_sums(n, n_valid, sum, sum_sq)
        }
    }

    /// The [`StatAccum`] of the rows in `a ∧ b` — the fused pair kernel used
    /// for leaf candidates; the intersection is never materialised.
    ///
    /// # Panics
    /// Panics when `a` or `b` has a different word count than the planes.
    pub fn accum_pair(&self, a: &[u64], b: &[u64], n: u64) -> StatAccum {
        assert_eq!(
            a.len(),
            self.valid.len(),
            "cover word-count mismatch against outcome planes"
        );
        assert_eq!(a.len(), b.len(), "cover word-count mismatch");
        if self.all_boolean {
            let mut n_valid = 0u64;
            let mut k_pos = 0u64;
            for (((&wa, &wb), &v), &p) in a.iter().zip(b).zip(&self.valid).zip(&self.pos) {
                let c = wa & wb;
                n_valid += u64::from((c & v).count_ones());
                k_pos += u64::from((c & p).count_ones());
            }
            StatAccum::from_counts(n, n_valid, k_pos)
        } else {
            let (n_valid, sum, sum_sq) = self.masked_sums(a.iter().zip(b).map(|(x, y)| x & y));
            StatAccum::from_sums(n, n_valid, sum, sum_sq)
        }
    }

    /// Masked word-chunked reduction for the numeric path: per word of
    /// `cover ∧ valid`, drains set bits lowest-first so rows are visited in
    /// the same ascending order as the scalar path (bitwise-identical sums).
    ///
    /// `cover_words` yields the cover's words in plane order; the values
    /// slice is walked in lockstep 64-row chunks, so the reduction needs no
    /// index arithmetic and no bounds checks.
    fn masked_sums(&self, cover_words: impl Iterator<Item = u64>) -> (u64, f64, f64) {
        let mut n_valid = 0u64;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for ((&v, chunk), c) in self
            .valid
            .iter()
            .zip(self.values.chunks(64))
            .zip(cover_words)
        {
            let mut bits = c & v;
            n_valid += u64::from(bits.count_ones());
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                // The valid plane only sets bits for encoded rows, so `tz`
                // is always within this 64-row chunk.
                debug_assert!(tz < chunk.len(), "valid bit beyond encoded rows");
                if let Some(&x) = chunk.get(tz) {
                    sum += x;
                    sum_sq += x * x;
                }
                bits &= bits - 1;
            }
        }
        (n_valid, sum, sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: push the outcomes of the cover's rows one at a time.
    fn scalar(cover_words: &[u64], outcomes: &[Outcome]) -> StatAccum {
        let mut acc = StatAccum::new();
        for (row, o) in outcomes.iter().enumerate() {
            if cover_words[row / 64] >> (row % 64) & 1 == 1 {
                acc.push(*o);
            }
        }
        acc
    }

    fn cover_of(n: usize, pred: impl Fn(usize) -> bool) -> Vec<u64> {
        let mut words = vec![0u64; n.div_ceil(64)];
        for row in (0..n).filter(|&r| pred(r)) {
            words[row / 64] |= 1 << (row % 64);
        }
        words
    }

    fn popcount(words: &[u64]) -> u64 {
        words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    #[test]
    fn boolean_kernel_is_bitwise_equal_to_scalar() {
        let outcomes: Vec<Outcome> = (0..200)
            .map(|i| match i % 5 {
                0 => Outcome::Undefined,
                1 | 2 => Outcome::Bool(true),
                _ => Outcome::Bool(false),
            })
            .collect();
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        assert!(planes.is_boolean());
        for modulus in [1usize, 2, 3, 7] {
            let cover = cover_of(200, |r| r % modulus == 0);
            let n = popcount(&cover);
            assert_eq!(planes.accum(&cover, n), scalar(&cover, &outcomes));
        }
    }

    #[test]
    fn numeric_and_mixed_kernels_match_scalar() {
        let outcomes: Vec<Outcome> = (0..130)
            .map(|i| match i % 4 {
                0 => Outcome::Real(i as f64 * 0.25 - 7.0),
                1 => Outcome::Bool(i % 8 == 1),
                2 => Outcome::Undefined,
                _ => Outcome::Real(-(i as f64)),
            })
            .collect();
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        assert!(!planes.is_boolean());
        let cover = cover_of(130, |r| r % 3 != 1);
        let n = popcount(&cover);
        // Same summation order as the scalar path → bitwise equal.
        assert_eq!(planes.accum(&cover, n), scalar(&cover, &outcomes));
    }

    #[test]
    fn pair_kernel_equals_materialised_intersection() {
        let outcomes: Vec<Outcome> = (0..150)
            .map(|i| {
                if i % 6 == 0 {
                    Outcome::Undefined
                } else {
                    Outcome::Bool(i % 3 == 0)
                }
            })
            .collect();
        let planes = OutcomePlanes::from_outcomes(&outcomes);
        let a = cover_of(150, |r| r % 2 == 0);
        let b = cover_of(150, |r| r % 3 != 2);
        let joint: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x & y).collect();
        let n = popcount(&joint);
        assert_eq!(planes.accum_pair(&a, &b, n), planes.accum(&joint, n));
        assert_eq!(planes.accum_pair(&a, &b, n), scalar(&joint, &outcomes));
    }

    #[test]
    fn empty_and_all_undefined() {
        let planes = OutcomePlanes::from_outcomes(&[]);
        assert_eq!(planes.n_rows(), 0);
        assert_eq!(planes.accum(&[], 0), StatAccum::new());
        let undef = OutcomePlanes::from_outcomes(&[Outcome::Undefined; 70]);
        let cover = cover_of(70, |_| true);
        let acc = undef.accum(&cover, 70);
        assert_eq!(acc.count(), 70);
        assert_eq!(acc.valid_count(), 0);
        assert_eq!(acc.statistic(), None);
    }

    #[test]
    #[should_panic(expected = "word-count mismatch")]
    fn mismatched_cover_panics() {
        let planes = OutcomePlanes::from_outcomes(&[Outcome::Bool(true); 10]);
        let _ = planes.accum(&[0u64, 0u64], 0);
    }
}
