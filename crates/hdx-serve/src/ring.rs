//! A bounded broadcast ring with drop-oldest backpressure.
//!
//! One ring per live job fans its encoded event lines out to any number of
//! streaming consumers. The producer side (`push`) is a bounded O(1)
//! enqueue that **never blocks and never waits for consumers**: when the
//! ring is full the oldest entry is dropped. A consumer that falls behind
//! therefore observes a gap in the sequence numbers — visible, bounded
//! staleness — while the miner thread never stalls, which is the service's
//! priority ordering. Consumers wait condvar-style (`wait_next`) and catch
//! up from the durable journal, so a gap only exists for consumers slower
//! than the ring is deep.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// What a consumer's [`BroadcastRing::wait_next`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingUpdate {
    /// New lines at or after the requested cursor, in sequence order.
    /// The consumer's next cursor is `last seq + 1`.
    Lines(Vec<(u64, String)>),
    /// Nothing new within the wait window; poll again.
    TimedOut,
    /// The stream is closed and nothing at or after the cursor remains.
    Closed,
}

struct Inner {
    /// `(seq, encoded line)`, oldest first; seqs are strictly increasing.
    entries: VecDeque<(u64, String)>,
    /// Set once when the job reaches a terminal state.
    closed: bool,
}

/// The per-job broadcast ring. See the module docs for the backpressure
/// contract.
pub struct BroadcastRing {
    inner: Mutex<Inner>,
    changed: Condvar,
    cap: usize,
}

impl BroadcastRing {
    /// A ring holding at most `cap` entries (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                closed: false,
            }),
            changed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Bookkeeping-only critical sections: poisoning cannot leave the
        // deque inconsistent, so keep serving.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one line, dropping the oldest entry when full. O(1), never
    /// blocks on consumers. A push after [`BroadcastRing::close`] is
    /// ignored (terminal means terminal).
    pub fn push(&self, seq: u64, line: String) {
        let mut inner = self.lock();
        if inner.closed {
            return;
        }
        if inner.entries.len() >= self.cap {
            inner.entries.pop_front();
        }
        inner.entries.push_back((seq, line));
        drop(inner);
        self.changed.notify_all();
    }

    /// Closes the stream: consumers drain what remains and then observe
    /// [`RingUpdate::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.changed.notify_all();
    }

    /// Whether [`BroadcastRing::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Returns every buffered line with `seq >= cursor`, waiting up to
    /// `wait` for one to arrive. Lines older than the cursor are invisible
    /// (already consumed); lines dropped by backpressure simply skip the
    /// cursor forward — the returned seqs tell the consumer how much it
    /// missed.
    pub fn wait_next(&self, cursor: u64, wait: Duration) -> RingUpdate {
        let mut inner = self.lock();
        let ready = |inner: &Inner| inner.entries.back().is_some_and(|(s, _)| *s >= cursor);
        if !ready(&inner) && !inner.closed {
            let (guard, _) = self
                .changed
                .wait_timeout(inner, wait)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
        let lines: Vec<(u64, String)> = inner
            .entries
            .iter()
            .filter(|(s, _)| *s >= cursor)
            .cloned()
            .collect();
        if !lines.is_empty() {
            RingUpdate::Lines(lines)
        } else if inner.closed {
            RingUpdate::Closed
        } else {
            RingUpdate::TimedOut
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn push_is_bounded_and_drops_oldest() {
        let ring = BroadcastRing::new(3);
        for seq in 0..10u64 {
            ring.push(seq, format!("line-{seq}"));
        }
        // Only the newest 3 survive; the consumer sees the gap via seqs.
        match ring.wait_next(0, Duration::from_millis(1)) {
            RingUpdate::Lines(lines) => {
                let seqs: Vec<u64> = lines.iter().map(|(s, _)| *s).collect();
                assert_eq!(seqs, [7, 8, 9]);
            }
            other => panic!("expected lines, got {other:?}"),
        }
    }

    #[test]
    fn push_never_blocks_regardless_of_consumers() {
        // No consumer ever reads; 10k pushes into a cap-4 ring must finish
        // quickly. This is the slow-consumer half of the drop-oldest
        // contract at the ring level (the end-to-end version lives in
        // tests/events.rs).
        let ring = BroadcastRing::new(4);
        let start = Instant::now();
        for seq in 0..10_000u64 {
            ring.push(seq, "x".repeat(64));
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "bounded pushes must not wait on consumers"
        );
    }

    #[test]
    fn wait_next_wakes_on_push_and_drains_after_close() {
        let ring = Arc::new(BroadcastRing::new(8));
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.wait_next(0, Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        ring.push(0, "first".into());
        match consumer.join().expect("consumer") {
            RingUpdate::Lines(lines) => assert_eq!(lines[0].1, "first"),
            other => panic!("expected lines, got {other:?}"),
        }
        ring.close();
        assert!(ring.is_closed());
        // Buffered lines still drain after close; past them, Closed.
        assert!(matches!(
            ring.wait_next(0, Duration::from_millis(1)),
            RingUpdate::Lines(_)
        ));
        assert_eq!(
            ring.wait_next(1, Duration::from_millis(1)),
            RingUpdate::Closed
        );
        // Pushes after close are ignored.
        ring.push(9, "late".into());
        assert_eq!(
            ring.wait_next(1, Duration::from_millis(1)),
            RingUpdate::Closed
        );
    }

    #[test]
    fn empty_open_ring_times_out() {
        let ring = BroadcastRing::new(2);
        assert_eq!(
            ring.wait_next(0, Duration::from_millis(5)),
            RingUpdate::TimedOut
        );
    }
}
