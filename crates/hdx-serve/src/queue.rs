//! Bounded admission queue with per-tenant accounting.
//!
//! Admission control is the first line of the service's overload story: the
//! queue has a hard depth cap and every tenant has a cap on jobs *in
//! flight* (queued + running). Either cap trips a shed — the caller
//! answers 429 with `Retry-After` and the process keeps its memory bounded
//! no matter how fast clients submit. A tenant's slot is released only when
//! its job reaches a terminal state, so one noisy tenant can saturate
//! neither the queue nor the worker pool.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use hdx_governor::fail_point;

/// Why an admission was refused (always answered as 429).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shed {
    /// The global queue is at capacity.
    QueueFull,
    /// The submitting tenant is at its in-flight cap.
    TenantBusy,
    /// The service is draining and no longer admits work.
    Draining,
    /// A `serve::queue` fail point fired (tests only).
    Injected(String),
}

impl Shed {
    /// Client-facing description.
    pub fn describe(&self) -> String {
        match self {
            Shed::QueueFull => "queue full".to_string(),
            Shed::TenantBusy => "tenant at in-flight job cap".to_string(),
            Shed::Draining => "service is draining".to_string(),
            Shed::Injected(msg) => format!("injected admission failure: {msg}"),
        }
    }
}

struct Inner {
    /// Job ids awaiting a worker, oldest first.
    ready: VecDeque<String>,
    /// In-flight (queued + running) job count per tenant.
    in_flight: HashMap<String, usize>,
    /// Set once at drain: admission refused, `pop` returns `None` when idle.
    closed: bool,
}

/// The shared admission queue. All waiting is condvar-based; there are no
/// spin loops.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    depth_cap: usize,
    tenant_cap: usize,
}

impl AdmissionQueue {
    /// Creates a queue with the given global depth and per-tenant caps.
    pub fn new(depth_cap: usize, tenant_cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                ready: VecDeque::new(),
                in_flight: HashMap::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth_cap: depth_cap.max(1),
            tenant_cap: tenant_cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker that panicked while holding this lock died between two
        // statements of plain bookkeeping; the structures are still
        // consistent, so the queue keeps serving rather than wedging.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admits a job: checks the caps and reserves the tenant's slot, but
    /// does *not* enqueue — the caller persists the job first and then calls
    /// [`AdmissionQueue::enqueue`], so a worker can never pop a job whose
    /// state directory is still half-written. (The depth check therefore
    /// undercounts by jobs mid-persistence; the cap is a shed threshold,
    /// not an exact invariant.)
    ///
    /// # Errors
    /// Returns the [`Shed`] reason when the service must refuse.
    pub fn admit(&self, tenant: &str) -> Result<(), Shed> {
        fail_point!("serve::queue", |msg: String| Shed::Injected(msg));
        let mut inner = self.lock();
        if inner.closed {
            return Err(Shed::Draining);
        }
        if inner.ready.len() >= self.depth_cap {
            return Err(Shed::QueueFull);
        }
        let slots = inner.in_flight.entry(tenant.to_string()).or_insert(0);
        if *slots >= self.tenant_cap {
            return Err(Shed::TenantBusy);
        }
        *slots += 1;
        Ok(())
    }

    /// Enqueues a job whose tenant slot is already held (a fresh admission
    /// after persistence, or a recovered orphan at startup).
    pub fn enqueue(&self, job_id: &str) {
        let mut inner = self.lock();
        inner.ready.push_back(job_id.to_string());
        self.ready.notify_one();
    }

    /// Reserves a tenant slot unconditionally (recovery bookkeeping: the
    /// job was admitted by a previous process, so the caps don't re-apply).
    pub fn reserve_slot(&self, tenant: &str) {
        let mut inner = self.lock();
        *inner.in_flight.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Blocks up to `wait` for the next ready job. `None` means "nothing
    /// yet" (or the queue closed and emptied) — callers loop and re-check
    /// shutdown state.
    pub fn pop(&self, wait: Duration) -> Option<String> {
        let mut inner = self.lock();
        if inner.ready.is_empty() && !inner.closed {
            let (guard, _) = self
                .ready
                .wait_timeout(inner, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
        inner.ready.pop_front()
    }

    /// Releases a tenant's in-flight slot once its job is terminal.
    pub fn release(&self, tenant: &str) {
        let mut inner = self.lock();
        if let Some(slots) = inner.in_flight.get_mut(tenant) {
            *slots = slots.saturating_sub(1);
            if *slots == 0 {
                inner.in_flight.remove(tenant);
            }
        }
    }

    /// Closes admission (drain). Queued jobs stay queued — they are already
    /// durable on disk and will be resumed by the next start.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth (for `Retry-After` hints and the depth gauge).
    pub fn depth(&self) -> usize {
        self.lock().ready.len()
    }

    /// Per-tenant in-flight (queued + running) counts, sorted by tenant name
    /// for deterministic output — the `/metrics` exposition renders these as
    /// one labeled gauge sample per tenant.
    pub fn tenants(&self) -> Vec<(String, usize)> {
        let inner = self.lock();
        let mut out: Vec<(String, usize)> = inner
            .in_flight
            .iter()
            .map(|(tenant, n)| (tenant.clone(), *n))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn admit_and_enqueue(q: &AdmissionQueue, job_id: &str, tenant: &str) -> Result<(), Shed> {
        q.admit(tenant)?;
        q.enqueue(job_id);
        Ok(())
    }

    #[test]
    fn sheds_on_queue_depth_and_tenant_caps() {
        let q = AdmissionQueue::new(2, 1);
        admit_and_enqueue(&q, "j-1", "a").expect("admitted");
        assert_eq!(q.admit("a"), Err(Shed::TenantBusy));
        admit_and_enqueue(&q, "j-3", "b").expect("admitted");
        assert_eq!(q.admit("c"), Err(Shed::QueueFull));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn tenants_lists_in_flight_counts_sorted() {
        let q = AdmissionQueue::new(8, 4);
        admit_and_enqueue(&q, "j-1", "zen").expect("admitted");
        admit_and_enqueue(&q, "j-2", "acme").expect("admitted");
        admit_and_enqueue(&q, "j-3", "acme").expect("admitted");
        assert_eq!(
            q.tenants(),
            vec![("acme".to_string(), 2), ("zen".to_string(), 1)]
        );
        q.release("zen");
        assert_eq!(q.tenants(), vec![("acme".to_string(), 2)]);
    }

    #[test]
    fn release_frees_the_tenant_slot() {
        let q = AdmissionQueue::new(8, 1);
        admit_and_enqueue(&q, "j-1", "a").expect("admitted");
        assert_eq!(q.pop(Duration::from_millis(10)), Some("j-1".to_string()));
        assert_eq!(q.admit("a"), Err(Shed::TenantBusy));
        q.release("a");
        q.admit("a").expect("slot freed");
    }

    #[test]
    fn close_refuses_admission_but_drains_the_backlog() {
        let q = AdmissionQueue::new(8, 8);
        admit_and_enqueue(&q, "j-1", "a").expect("admitted");
        q.close();
        assert_eq!(q.admit("a"), Err(Shed::Draining));
        assert_eq!(q.pop(Duration::from_millis(10)), Some("j-1".to_string()));
        assert_eq!(q.pop(Duration::from_millis(10)), None);
    }

    #[test]
    fn pop_wakes_on_enqueue_across_threads() {
        let q = Arc::new(AdmissionQueue::new(8, 8));
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop(Duration::from_secs(5)))
        };
        // The popper may or may not have parked yet; notify_one covers both.
        thread::sleep(Duration::from_millis(20));
        admit_and_enqueue(&q, "j-1", "a").expect("admitted");
        assert_eq!(popper.join().expect("join"), Some("j-1".to_string()));
    }
}
