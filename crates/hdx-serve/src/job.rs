//! Job specifications and their durable encodings.
//!
//! A submitted job is split into two artifacts inside its state directory:
//! the dataset (`data.csv`, plain bytes so the CSV reader and a human can
//! both open it) and the sealed manifest (`manifest.hdx`, the [`JobSpec`]
//! through the checkpoint envelope codec). The manifest is written *last*
//! at admission — it is the commit point: a directory without one is an
//! aborted admission and is ignored by recovery. Finished jobs additionally
//! seal a [`DoneRecord`] (`done.hdx`); its presence is the completion
//! marker that recovery uses to tell finished work from orphans.

use std::collections::BTreeMap;

use hdx_checkpoint::codec::{ByteReader, ByteWriter};
use hdx_checkpoint::CheckpointError;

use crate::json::JsonValue;

/// Manifest codec version (bump on layout change).
const SPEC_VERSION: u8 = 2;
/// Done-record codec version.
const DONE_VERSION: u8 = 1;

/// Which per-subgroup statistic a job mines divergence of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatKind {
    /// False-positive rate.
    Fpr,
    /// False-negative rate.
    Fnr,
    /// True-positive rate.
    Tpr,
    /// True-negative rate.
    Tnr,
    /// Classification error rate.
    Error,
    /// Accuracy.
    Accuracy,
    /// Predicted-positive rate.
    PositiveRate,
    /// Mean of a real-valued target column.
    Target,
}

impl StatKind {
    /// Stable wire name (also the CLI flag value).
    pub fn as_str(self) -> &'static str {
        match self {
            StatKind::Fpr => "fpr",
            StatKind::Fnr => "fnr",
            StatKind::Tpr => "tpr",
            StatKind::Tnr => "tnr",
            StatKind::Error => "error",
            StatKind::Accuracy => "accuracy",
            StatKind::PositiveRate => "positive_rate",
            StatKind::Target => "target",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "fpr" => StatKind::Fpr,
            "fnr" => StatKind::Fnr,
            "tpr" => StatKind::Tpr,
            "tnr" => StatKind::Tnr,
            "error" => StatKind::Error,
            "accuracy" => StatKind::Accuracy,
            "positive_rate" => StatKind::PositiveRate,
            "target" => StatKind::Target,
            _ => return None,
        })
    }

    fn code(self) -> u8 {
        match self {
            StatKind::Fpr => 0,
            StatKind::Fnr => 1,
            StatKind::Tpr => 2,
            StatKind::Tnr => 3,
            StatKind::Error => 4,
            StatKind::Accuracy => 5,
            StatKind::PositiveRate => 6,
            StatKind::Target => 7,
        }
    }

    fn from_code(code: u8) -> Result<Self, CheckpointError> {
        Ok(match code {
            0 => StatKind::Fpr,
            1 => StatKind::Fnr,
            2 => StatKind::Tpr,
            3 => StatKind::Tnr,
            4 => StatKind::Error,
            5 => StatKind::Accuracy,
            6 => StatKind::PositiveRate,
            7 => StatKind::Target,
            other => {
                return Err(CheckpointError::Corrupt {
                    message: format!("unknown stat code {other}"),
                })
            }
        })
    }
}

/// Everything needed to run (or re-run, byte-identically) one mining job.
///
/// Budgets are resolved *at admission* — the tenant's fair share, further
/// tightened by whatever the request asked for — and persisted here, so a
/// crash-recovered resume runs under exactly the budget the original run
/// tripped or would have tripped on.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Owning tenant (admission accounting key and span label).
    pub tenant: String,
    /// Statistic to mine.
    pub stat: StatKind,
    /// Ground-truth column for classification statistics.
    pub label_col: String,
    /// Prediction column for classification statistics.
    pub pred_col: String,
    /// Numeric target column (required iff `stat` is [`StatKind::Target`]).
    pub target_col: Option<String>,
    /// CSV field separator.
    pub separator: u8,
    /// Minimum itemset support.
    pub support: f64,
    /// Minimum per-split support for the discretization trees.
    pub tree_support: f64,
    /// Entropy gain criterion instead of divergence gain.
    pub entropy: bool,
    /// Base-pattern exploration instead of generalized.
    pub base_mode: bool,
    /// Maximum itemset length (`None` = unbounded).
    pub max_len: Option<u32>,
    /// Wall-clock deadline in milliseconds (`None` = unbounded).
    pub deadline_ms: Option<u64>,
    /// Itemset work cap (`None` = unbounded).
    pub max_itemsets: Option<u64>,
    /// Checkpoint cadence in mining levels.
    pub checkpoint_every: u64,
    /// Worker-thread cap for the parallel miner (`None` = all cores).
    pub threads: Option<u32>,
}

impl JobSpec {
    /// Encodes the spec as a sealed-manifest payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(SPEC_VERSION);
        w.put_str(&self.tenant);
        w.put_u8(self.stat.code());
        w.put_str(&self.label_col);
        w.put_str(&self.pred_col);
        w.put_bool(self.target_col.is_some());
        if let Some(t) = &self.target_col {
            w.put_str(t);
        }
        w.put_u8(self.separator);
        w.put_f64(self.support);
        w.put_f64(self.tree_support);
        w.put_bool(self.entropy);
        w.put_bool(self.base_mode);
        w.put_opt_u32(self.max_len);
        w.put_bool(self.deadline_ms.is_some());
        w.put_u64(self.deadline_ms.unwrap_or(0));
        w.put_bool(self.max_itemsets.is_some());
        w.put_u64(self.max_itemsets.unwrap_or(0));
        w.put_u64(self.checkpoint_every);
        w.put_opt_u32(self.threads);
        w.into_bytes()
    }

    /// Decodes a sealed-manifest payload.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Corrupt`] on version or layout mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != SPEC_VERSION {
            return Err(CheckpointError::Corrupt {
                message: format!("unsupported job manifest version {version}"),
            });
        }
        let tenant = r.str()?;
        let stat = StatKind::from_code(r.u8()?)?;
        let label_col = r.str()?;
        let pred_col = r.str()?;
        let target_col = if r.bool()? { Some(r.str()?) } else { None };
        let separator = r.u8()?;
        let support = r.f64()?;
        let tree_support = r.f64()?;
        let entropy = r.bool()?;
        let base_mode = r.bool()?;
        let max_len = r.opt_u32()?;
        let deadline_set = r.bool()?;
        let deadline_raw = r.u64()?;
        let itemsets_set = r.bool()?;
        let itemsets_raw = r.u64()?;
        let checkpoint_every = r.u64()?;
        let threads = r.opt_u32()?;
        r.finish()?;
        Ok(JobSpec {
            tenant,
            stat,
            label_col,
            pred_col,
            target_col,
            separator,
            support,
            tree_support,
            entropy,
            base_mode,
            max_len,
            deadline_ms: deadline_set.then_some(deadline_raw),
            max_itemsets: itemsets_set.then_some(itemsets_raw),
            checkpoint_every,
            threads,
        })
    }
}

/// Pulls a required/defaulted field out of a submission object.
fn str_field(
    map: &BTreeMap<String, JsonValue>,
    key: &str,
    default: Option<&str>,
) -> Result<Option<String>, String> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(default.map(str::to_string)),
        Some(v) => Ok(Some(
            v.as_str()
                .ok_or_else(|| format!("`{key}` must be a string"))?
                .to_string(),
        )),
    }
}

fn num_field(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<Option<f64>, String> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => Ok(Some(
            v.as_num()
                .ok_or_else(|| format!("`{key}` must be a number"))?,
        )),
    }
}

fn bool_field(map: &BTreeMap<String, JsonValue>, key: &str, default: bool) -> Result<bool, String> {
    match map.get(key) {
        None | Some(JsonValue::Null) => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn uint_field(
    map: &BTreeMap<String, JsonValue>,
    key: &str,
    max: u64,
) -> Result<Option<u64>, String> {
    match num_field(map, key)? {
        None => Ok(None),
        Some(n) => {
            if n != n.trunc() || n < 0.0 || n > max as f64 {
                return Err(format!("`{key}` must be an integer in 0..={max}"));
            }
            Ok(Some(n as u64))
        }
    }
}

/// Parses and validates a submission body into `(spec, csv_text)`.
///
/// Unknown keys are rejected so a typo'd budget field cannot silently run
/// unbounded.
///
/// # Errors
/// Returns a client-facing message (the service answers 400 with it).
pub fn parse_submission(map: &BTreeMap<String, JsonValue>) -> Result<(JobSpec, String), String> {
    const KNOWN: [&str; 16] = [
        "tenant",
        "csv",
        "stat",
        "label_col",
        "pred_col",
        "target_col",
        "separator",
        "support",
        "tree_support",
        "entropy",
        "base_mode",
        "max_len",
        "deadline_ms",
        "max_itemsets",
        "checkpoint_every",
        "threads",
    ];
    for key in map.keys() {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}`"));
        }
    }
    let tenant = str_field(map, "tenant", Some("default"))?.unwrap_or_default();
    if tenant.is_empty()
        || tenant.len() > 64
        || !tenant
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err("`tenant` must be 1..=64 chars of [A-Za-z0-9_-]".into());
    }
    let csv = str_field(map, "csv", None)?.ok_or("`csv` is required")?;
    if csv.trim().is_empty() {
        return Err("`csv` must not be empty".into());
    }
    let stat_name = str_field(map, "stat", Some("fpr"))?.unwrap_or_default();
    let stat =
        StatKind::parse(&stat_name).ok_or_else(|| format!("unknown `stat` `{stat_name}`"))?;
    let target_col = str_field(map, "target_col", None)?;
    if stat == StatKind::Target && target_col.is_none() {
        return Err("`stat: target` requires `target_col`".into());
    }
    let separator_str = str_field(map, "separator", Some(","))?.unwrap_or_default();
    let separator = match separator_str.as_bytes() {
        [b] if separator_str.is_ascii() => *b,
        _ => return Err("`separator` must be a single ASCII character".into()),
    };
    let support = num_field(map, "support")?.unwrap_or(0.05);
    if !(0.0..=1.0).contains(&support) || support <= 0.0 {
        return Err("`support` must be in (0, 1]".into());
    }
    let tree_support = num_field(map, "tree_support")?.unwrap_or(0.1);
    if !(0.0..=1.0).contains(&tree_support) || tree_support <= 0.0 {
        return Err("`tree_support` must be in (0, 1]".into());
    }
    let spec = JobSpec {
        tenant,
        stat,
        label_col: str_field(map, "label_col", Some("class"))?.unwrap_or_default(),
        pred_col: str_field(map, "pred_col", Some("pred"))?.unwrap_or_default(),
        target_col,
        separator,
        support,
        tree_support,
        entropy: bool_field(map, "entropy", false)?,
        base_mode: bool_field(map, "base_mode", false)?,
        max_len: uint_field(map, "max_len", u32::MAX as u64)?.map(|v| v as u32),
        deadline_ms: uint_field(map, "deadline_ms", u64::MAX / 2)?,
        max_itemsets: uint_field(map, "max_itemsets", u64::MAX / 2)?,
        checkpoint_every: uint_field(map, "checkpoint_every", 1_000_000)?
            .unwrap_or(1)
            .max(1),
        threads: match uint_field(map, "threads", u32::MAX as u64)? {
            Some(0) => return Err("`threads` must be at least 1".into()),
            other => other.map(|v| v as u32),
        },
    };
    Ok((spec, csv))
}

/// The terminal outcome of a job, sealed as the completion marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoneRecord {
    /// `true` when the job produced results (possibly partial); `false`
    /// when it failed permanently.
    pub ok: bool,
    /// Machine label for how the run ended ([`hdx_governor::Termination::as_str`])
    /// or `"failed"` for permanent failures.
    pub termination: String,
    /// Execution attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Ranked-results JSON on success; the error message on failure.
    pub body: String,
}

impl DoneRecord {
    /// Encodes the record as a sealed completion-marker payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(DONE_VERSION);
        w.put_bool(self.ok);
        w.put_str(&self.termination);
        w.put_u32(self.attempts);
        w.put_str(&self.body);
        w.into_bytes()
    }

    /// Decodes a sealed completion-marker payload.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Corrupt`] on version or layout mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != DONE_VERSION {
            return Err(CheckpointError::Corrupt {
                message: format!("unsupported done-record version {version}"),
            });
        }
        let record = DoneRecord {
            ok: r.bool()?,
            termination: r.str()?,
            attempts: r.u32()?,
            body: r.str()?,
        };
        r.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_object;

    fn submission(extra: &str) -> BTreeMap<String, JsonValue> {
        parse_object(&format!(
            r#"{{"csv":"class,pred,a\n1,0,x\n0,0,y\n"{}{extra}}}"#,
            if extra.is_empty() { "" } else { "," }
        ))
        .expect("valid json")
    }

    #[test]
    fn submission_defaults_mirror_the_cli() {
        let (spec, csv) = parse_submission(&submission("")).expect("valid");
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.stat, StatKind::Fpr);
        assert_eq!(spec.label_col, "class");
        assert_eq!(spec.pred_col, "pred");
        assert_eq!(spec.separator, b',');
        assert!((spec.support - 0.05).abs() < 1e-12);
        assert!((spec.tree_support - 0.1).abs() < 1e-12);
        assert_eq!(spec.checkpoint_every, 1);
        assert!(csv.starts_with("class,pred"));
    }

    #[test]
    fn submission_validation_rejects_bad_fields() {
        let cases = [
            (r#""stat":"nope""#, "unknown `stat`"),
            (r#""support":0.0"#, "`support`"),
            (r#""support":1.5"#, "`support`"),
            (r#""tenant":"b@d""#, "`tenant`"),
            (r#""separator":"ab""#, "`separator`"),
            (r#""stat":"target""#, "requires `target_col`"),
            (r#""max_len":2.5"#, "`max_len`"),
            (r#""deadline_ms":-1"#, "`deadline_ms`"),
            (r#""threads":0"#, "`threads`"),
            (r#""threads":1.5"#, "`threads`"),
            (r#""bogus_knob":1"#, "unknown field"),
        ];
        for (extra, want) in cases {
            let err = parse_submission(&submission(extra)).expect_err(extra);
            assert!(err.contains(want), "{extra}: {err}");
        }
        assert!(
            parse_submission(&parse_object(r#"{"stat":"fpr"}"#).expect("json"))
                .expect_err("no csv")
                .contains("`csv`")
        );
    }

    #[test]
    fn spec_codec_round_trips() {
        let (mut spec, _) = parse_submission(&submission(
            r#""tenant":"acme","stat":"target","target_col":"score","max_len":3,
               "deadline_ms":1500,"max_itemsets":4096,"checkpoint_every":2,
               "entropy":true,"base_mode":true,"separator":";","threads":2"#,
        ))
        .expect("valid");
        spec.support = 0.125;
        let decoded = JobSpec::decode(&spec.encode()).expect("round trip");
        assert_eq!(decoded, spec);
    }

    #[test]
    fn spec_decode_rejects_bad_versions_and_truncation() {
        let (spec, _) = parse_submission(&submission("")).expect("valid");
        let mut bytes = spec.encode();
        bytes[0] = 99;
        assert!(JobSpec::decode(&bytes).is_err());
        let bytes = spec.encode();
        assert!(JobSpec::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn done_record_codec_round_trips() {
        let record = DoneRecord {
            ok: true,
            termination: "complete".into(),
            attempts: 3,
            body: "{\"records\":[]}".into(),
        };
        assert_eq!(
            DoneRecord::decode(&record.encode()).expect("round trip"),
            record
        );
        let mut bytes = record.encode();
        bytes[0] = 0;
        assert!(DoneRecord::decode(&bytes).is_err());
    }
}
