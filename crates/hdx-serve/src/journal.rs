//! The durable per-job event journal (`events.ndjson` in the job dir).
//!
//! Every emitted event line is persisted with the same atomic discipline as
//! hdx-checkpoint envelopes — write a temp file, `fsync`, rename over the
//! destination, best-effort directory fsync — so the file on disk is always
//! a complete prefix of the stream: a `kill -9` can lose the tail, never
//! corrupt the middle. Sequence numbers are the line index, so reopening a
//! journal after a restart continues the monotonic numbering exactly where
//! the durable prefix ends, and serving the file verbatim replays the
//! stream byte-identically.
//!
//! Each append rewrites the whole file. Jobs emit tens of events (a handful
//! of lifecycle transitions plus one line per mining level), so the rewrite
//! is a few KiB per level — the price of rename-atomicity without a segment
//! format, mirroring the KEEP=3 checkpoint store's simplicity-over-
//! throughput call.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The journal file name inside a job directory.
pub const EVENTS_FILE: &str = "events.ndjson";

/// An open per-job journal. One writer at a time (the live plane holds it
/// behind a mutex); readers go through [`read_journal`] and never touch the
/// writer's state.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    tmp: PathBuf,
    /// Every durable line, trailing `\n` included, in sequence order.
    lines: Vec<String>,
}

impl Journal {
    /// Opens (or starts) the journal for `job_dir`, loading any durable
    /// prefix a previous process wrote so sequence numbering continues.
    ///
    /// # Errors
    /// I/O failure reading an existing journal file.
    pub fn open(job_dir: &Path) -> io::Result<Self> {
        let path = job_dir.join(EVENTS_FILE);
        let lines = match fs::read_to_string(&path) {
            Ok(text) => split_lines(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(Self {
            tmp: job_dir.join(format!("{EVENTS_FILE}.tmp")),
            path,
            lines,
        })
    }

    /// The sequence number the next appended event must carry.
    pub fn next_seq(&self) -> u64 {
        self.lines.len() as u64
    }

    /// The full stream so far (concatenated lines) — the catch-up bytes a
    /// new stream consumer is sent before following the live ring.
    pub fn contents(&self) -> String {
        self.lines.concat()
    }

    /// Appends one encoded line (must be newline-terminated, as
    /// [`crate::events::encode_line`] produces) and makes it durable.
    ///
    /// # Errors
    /// I/O failure writing or renaming; the in-memory state is unchanged on
    /// failure, so a retry re-appends the same sequence number.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(line.ends_with('\n'), "journal lines are newline-framed");
        {
            let mut f = File::create(&self.tmp)?;
            for existing in &self.lines {
                f.write_all(existing.as_bytes())?;
            }
            f.write_all(line.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&self.tmp, &self.path)?;
        // Durability of the rename itself: fsync the directory, best-effort
        // (not all filesystems support opening a directory for sync).
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.lines.push(line.to_string());
        Ok(())
    }
}

/// Reads a job's durable journal bytes (`None` when no journal exists) —
/// the replay path for jobs with no live channel.
///
/// # Errors
/// I/O failure other than the file not existing.
pub fn read_journal(job_dir: &Path) -> io::Result<Option<String>> {
    match fs::read_to_string(job_dir.join(EVENTS_FILE)) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Splits journal text back into newline-terminated lines. A truncated
/// final line (impossible under the rename protocol, but cheap to tolerate)
/// is dropped rather than re-served.
fn split_lines(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find('\n') {
        lines.push(rest[..=i].to_string());
        rest = &rest[i + 1..];
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hdx-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn appends_are_durable_and_reopen_continues_the_sequence() {
        let dir = tmp_dir("reopen");
        let mut j = Journal::open(&dir).expect("open");
        assert_eq!(j.next_seq(), 0);
        j.append("{\"seq\":0,\"event\":\"admitted\"}\n")
            .expect("append");
        j.append("{\"seq\":1,\"event\":\"started\"}\n")
            .expect("append");
        let before = j.contents();
        drop(j); // simulate the process dying

        let j2 = Journal::open(&dir).expect("reopen");
        assert_eq!(j2.next_seq(), 2, "numbering continues after restart");
        assert_eq!(j2.contents(), before, "byte-identical reload");
        assert_eq!(
            read_journal(&dir).expect("read").as_deref(),
            Some(before.as_str())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_reads_as_none_and_opens_empty() {
        let dir = tmp_dir("missing");
        assert_eq!(read_journal(&dir).expect("read"), None);
        let j = Journal::open(&dir).expect("open");
        assert_eq!(j.next_seq(), 0);
        assert_eq!(j.contents(), "");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_partial_tmp_file_survives_an_append() {
        let dir = tmp_dir("tmpfile");
        let mut j = Journal::open(&dir).expect("open");
        j.append("{\"seq\":0}\n").expect("append");
        assert!(
            !dir.join(format!("{EVENTS_FILE}.tmp")).exists(),
            "tmp is always renamed away"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_on_reload() {
        let dir = tmp_dir("truncated");
        fs::write(dir.join(EVENTS_FILE), "{\"seq\":0}\n{\"seq\":1}").expect("write");
        let j = Journal::open(&dir).expect("open");
        assert_eq!(j.next_seq(), 1, "partial line does not count");
        assert_eq!(j.contents(), "{\"seq\":0}\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
