//! Minimal JSON support for the service wire format.
//!
//! The workspace builds offline with no third-party crates, so the service
//! parses its own request bodies. Job submissions are deliberately *flat*
//! JSON objects (string / number / boolean / null values only); nested
//! containers are rejected with a clear error rather than half-supported.
//! Responses are emitted with the same hand-rolled escaping the rest of the
//! workspace uses (`hdx-core`'s report JSON).

use std::collections::BTreeMap;

/// One scalar value in a submitted job object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (fully unescaped, including surrogate pairs).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a flat JSON object into a key → scalar map.
///
/// Supported value types: string (with full escape handling), number,
/// `true`/`false`, `null`. Nested objects and arrays are rejected —
/// the job wire format has no use for them and silently mis-parsing a
/// config is worse than a 400.
///
/// # Errors
/// Returns a human-readable message describing the first syntax problem.
pub fn parse_object(text: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    p.require('{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.eat('}') {
        p.skip_ws();
        return p.finish(map);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.require(':')?;
        p.skip_ws();
        let value = p.value()?;
        map.insert(key, value);
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.require('}')?;
        p.skip_ws();
        return p.finish(map);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn finish(
        mut self,
        map: BTreeMap<String, JsonValue>,
    ) -> Result<BTreeMap<String, JsonValue>, String> {
        match self.chars.next() {
            None => Ok(map),
            Some((i, c)) => Err(format!("trailing content `{c}` at byte {i}")),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            return true;
        }
        false
    }

    fn require(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected `{want}` at byte {i}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of input")),
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(JsonValue::Str(self.string()?)),
            Some((_, 't')) => self.keyword("true", JsonValue::Bool(true)),
            Some((_, 'f')) => self.keyword("false", JsonValue::Bool(false)),
            Some((_, 'n')) => self.keyword("null", JsonValue::Null),
            Some((_, '{' | '[')) => {
                Err("nested objects/arrays are not part of the job wire format".to_string())
            }
            Some((_, c)) if *c == '-' || c.is_ascii_digit() => self.number(),
            Some((i, c)) => Err(format!("unexpected `{c}` at byte {i}")),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("malformed literal (expected `{word}`)")),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = match self.chars.peek() {
            Some((i, _)) => *i,
            None => return Err("unexpected end of input".to_string()),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        let lexeme = &self.text[start..end];
        let n: f64 = lexeme
            .parse()
            .map_err(|_| format!("malformed number `{lexeme}`"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number `{lexeme}`"));
        }
        Ok(JsonValue::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.require('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{0008}'),
                    Some((_, 'f')) => out.push('\u{000c}'),
                    Some((_, 'u')) => {
                        let unit = self.hex4()?;
                        let c = if (0xd800..0xdc00).contains(&unit) {
                            // High surrogate: a `\uXXXX` low surrogate must
                            // follow to form one code point.
                            if !(self.eat('\\') && self.eat('u')) {
                                return Err("lone high surrogate in string".to_string());
                            }
                            let low = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err("invalid low surrogate in string".to_string());
                            }
                            let cp = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(unit)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err("invalid \\u escape in string".to_string()),
                        }
                    }
                    Some((i, c)) => return Err(format!("bad escape `\\{c}` at byte {i}")),
                    None => return Err("unterminated escape".to_string()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.chars.next() {
                Some((_, c)) => c
                    .to_digit(16)
                    .ok_or_else(|| format!("bad hex digit `{c}` in \\u escape"))?,
                None => return Err("truncated \\u escape".to_string()),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_flat_job_object() {
        let map = parse_object(
            r#"{"tenant":"acme","support":0.1,"entropy":true,"max_len":null,
                "csv":"a,b\n1,2\n"}"#,
        )
        .expect("valid object");
        assert_eq!(map["tenant"], JsonValue::Str("acme".into()));
        assert_eq!(map["support"], JsonValue::Num(0.1));
        assert_eq!(map["entropy"], JsonValue::Bool(true));
        assert_eq!(map["max_len"], JsonValue::Null);
        assert_eq!(map["csv"], JsonValue::Str("a,b\n1,2\n".into()));
    }

    #[test]
    fn unescapes_strings_including_surrogate_pairs() {
        let map = parse_object(r#"{"s":"q\"\\\n\t\u00e9\ud83d\ude00"}"#).expect("valid");
        assert_eq!(map["s"], JsonValue::Str("q\"\\\n\té😀".into()));
    }

    #[test]
    fn rejects_nested_containers_and_syntax_errors() {
        assert!(parse_object(r#"{"a":{"b":1}}"#)
            .unwrap_err()
            .contains("nested"));
        assert!(parse_object(r#"{"a":[1]}"#).unwrap_err().contains("nested"));
        assert!(parse_object(r#"{"a":1,}"#).is_err());
        assert!(parse_object(r#"{"a" 1}"#).is_err());
        assert!(parse_object(r#"{"a":1} extra"#)
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_object(r#"{"a":nul}"#).is_err());
        assert!(parse_object(r#"{"a":1e999}"#)
            .unwrap_err()
            .contains("non-finite"));
        assert!(parse_object(r#"{"a":"\ud800x"}"#).is_err());
    }

    #[test]
    fn empty_object_and_whitespace_are_fine() {
        assert!(parse_object("  { }  ").expect("valid").is_empty());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{0001}";
        let doc = format!("{{\"v\":\"{}\"}}", escape(original));
        let map = parse_object(&doc).expect("escaped doc parses");
        assert_eq!(map["v"], JsonValue::Str(original.to_string()));
    }
}
