//! Executes one job end to end: dataset → outcomes → governed, checkpointed
//! exploration → sealed completion marker.
//!
//! The runner is deliberately pure with respect to the service: it takes a
//! spec, a state directory, and a cancel token, and reports one of four
//! outcomes. Classification matters — the supervisor retries
//! [`JobRunOutcome::Transient`] with backoff, records
//! [`JobRunOutcome::Permanent`] as failed (re-running bad input cannot
//! help), and leaves [`JobRunOutcome::Drained`] jobs *incomplete on disk*
//! so the next start resumes them to their byte-identical result.

use std::path::Path;

use hdx_checkpoint::{write_sealed, CheckpointStore, COMPLETE_FILE};
use hdx_core::{
    real_outcomes, report_to_json, ExplorationMode, HDivExplorer, HDivExplorerConfig, OutcomeFn,
    RunBudget,
};
use hdx_data::{read_csv_str, AttributeKind, Column, CsvOptions, DataFrame, NULL_CODE};
use hdx_discretize::GainCriterion;
use hdx_governor::{fail_point, CancelReason, CancelToken, Termination};
use hdx_stats::Outcome;

use crate::job::{DoneRecord, JobSpec, StatKind};

/// How one execution attempt ended.
#[derive(Debug)]
pub enum JobRunOutcome {
    /// The job reached a terminal state and its marker is sealed.
    Done(DoneRecord),
    /// The run was cancelled by shutdown drain; the checkpoint on disk is
    /// the resume point for the next start. No marker is written.
    Drained,
    /// Infrastructure trouble (marker write failed, injected fault): the
    /// work may succeed if retried.
    Transient(String),
    /// The input or configuration is bad: retrying cannot help.
    Permanent(String),
}

/// A `serve::job` / `serve::done` fail-point error (tests only).
struct Injected(String);

/// Parses one cell of a boolean column (same truth table as the CLI).
fn parse_bool_cell(col: &Column, row: usize, name: &str) -> Result<bool, String> {
    match col {
        Column::Categorical(c) => {
            let code = c.code(row);
            if code == NULL_CODE {
                return Err(format!("null label in column `{name}` row {row}"));
            }
            match c.level(code).to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "y" | "1" => Ok(true),
                "false" | "f" | "no" | "n" | "0" => Ok(false),
                other => Err(format!("column `{name}` is not boolean (value `{other}`)")),
            }
        }
        Column::Continuous(c) => match c.get(row) {
            Some(v) if v == f64::from(u8::from(v > 0.5)) => Ok(v > 0.5),
            Some(v) => Err(format!("column `{name}` is not boolean (value `{v}`)")),
            None => Err(format!("null label in column `{name}` row {row}")),
        },
    }
}

fn bool_column(df: &DataFrame, name: &str) -> Result<Vec<bool>, String> {
    let col = df.column_by_name(name).map_err(|e| e.to_string())?;
    (0..df.n_rows())
        .map(|row| parse_bool_cell(col, row, name))
        .collect()
}

/// Loads the job's dataset and computes the mining frame + outcomes.
fn load(spec: &JobSpec, csv: &str) -> Result<(DataFrame, Vec<Outcome>), String> {
    let options = CsvOptions {
        separator: spec.separator as char,
        ..CsvOptions::default()
    };
    let df = read_csv_str(csv, &options).map_err(|e| format!("cannot read dataset: {e}"))?;
    let (outcomes, drop): (Vec<Outcome>, Vec<String>) = match spec.stat {
        StatKind::Target => {
            let name = spec
                .target_col
                .clone()
                .ok_or("`stat: target` requires `target_col`")?;
            let attr = df.schema().require(&name).map_err(|e| e.to_string())?;
            if df.schema().kind(attr) != AttributeKind::Continuous {
                return Err(format!("target column `{name}` is not numeric"));
            }
            (real_outcomes(df.continuous(attr).values()), vec![name])
        }
        stat => {
            let y_true = bool_column(&df, &spec.label_col)?;
            let y_pred = bool_column(&df, &spec.pred_col)?;
            let f = match stat {
                StatKind::Fpr => OutcomeFn::Fpr,
                StatKind::Fnr => OutcomeFn::Fnr,
                StatKind::Tpr => OutcomeFn::Tpr,
                StatKind::Tnr => OutcomeFn::Tnr,
                StatKind::Error => OutcomeFn::ErrorRate,
                StatKind::Accuracy => OutcomeFn::Accuracy,
                StatKind::PositiveRate => OutcomeFn::PositiveRate,
                StatKind::Target => return Err("unreachable stat".into()),
            };
            (
                f.compute(&y_true, &y_pred),
                vec![spec.label_col.clone(), spec.pred_col.clone()],
            )
        }
    };
    let drop_refs: Vec<&str> = drop.iter().map(String::as_str).collect();
    let frame = df.drop_columns(&drop_refs).map_err(|e| e.to_string())?;
    if frame.n_attributes() == 0 {
        return Err("no attributes left to mine".into());
    }
    Ok((frame, outcomes))
}

fn budget_of(spec: &JobSpec) -> RunBudget {
    let mut budget = RunBudget::unbounded();
    if let Some(ms) = spec.deadline_ms {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(max) = spec.max_itemsets {
        budget = budget.with_max_itemsets(max);
    }
    budget
}

/// Runs one attempt of `spec` inside `job_dir`.
///
/// The directory must already hold `data.csv`; checkpoints accumulate next
/// to it. Fresh directories run [`HDivExplorer::fit_checkpointed`]; a
/// directory with checkpoints resumes instead, which the resume layer
/// guarantees reaches the same bytes an uninterrupted run would have.
pub fn execute(spec: &JobSpec, job_dir: &Path, cancel: CancelToken, attempt: u32) -> JobRunOutcome {
    match execute_inner(spec, job_dir, cancel, attempt) {
        Ok(outcome) => outcome,
        Err(Injected(msg)) => JobRunOutcome::Transient(format!("injected job failure: {msg}")),
    }
}

fn execute_inner(
    spec: &JobSpec,
    job_dir: &Path,
    cancel: CancelToken,
    attempt: u32,
) -> Result<JobRunOutcome, Injected> {
    fail_point!("serve::job", Injected);
    let mut csv = match std::fs::read_to_string(job_dir.join(crate::DATA_FILE)) {
        Ok(csv) => csv,
        // The dataset was persisted at admission; failure to read it back is
        // an infrastructure problem, not a bad job.
        Err(e) => {
            return Ok(JobRunOutcome::Transient(format!(
                "cannot read dataset: {e}"
            )))
        }
    };
    // Streamed appends: the effective dataset is base ⧺ the WAL's durable
    // prefix, read without healing (the append path owns recovery). Mining
    // is a pure function of that concatenation, so replaying it after any
    // crash — mid-append, mid-fold, mid-seal — reproduces the exact bytes a
    // cold run on the same rows produces, and re-running never double-counts.
    let wal_rows = match hdx_ingest::replay_dir(&job_dir.join(crate::WAL_DIR)) {
        Ok((rows, _report)) => rows,
        Err(e) => {
            return Ok(JobRunOutcome::Transient(format!(
                "cannot replay ingest WAL: {e}"
            )))
        }
    };
    let n_wal_rows = wal_rows.len() as u64;
    if !wal_rows.is_empty() {
        fail_point!("serve::ingest::fold", Injected);
        if !csv.ends_with('\n') {
            csv.push('\n');
        }
        for row in &wal_rows {
            csv.push_str(&String::from_utf8_lossy(row));
            csv.push('\n');
        }
        hdx_obs::counter_add!(ServeIngestRemines, 1);
    }
    let (frame, outcomes) = match load(spec, &csv) {
        Ok(v) => v,
        Err(msg) => return Ok(JobRunOutcome::Permanent(msg)),
    };
    let pipeline = HDivExplorer::new(HDivExplorerConfig {
        min_support: spec.support,
        tree_min_support: spec.tree_support,
        criterion: if spec.entropy {
            GainCriterion::Entropy
        } else {
            GainCriterion::Divergence
        },
        max_len: spec.max_len.map(|v| v as usize),
        threads: spec.threads.map(|v| v as usize),
        budget: budget_of(spec),
        ..HDivExplorerConfig::default()
    })
    .with_cancel_token(cancel);
    let mode = if spec.base_mode {
        ExplorationMode::Base
    } else {
        ExplorationMode::Generalized
    };
    let store = match CheckpointStore::open(job_dir) {
        Ok(store) => store,
        Err(e) => {
            return Ok(JobRunOutcome::Transient(format!(
                "cannot open job dir: {e}"
            )))
        }
    };
    let sequences = match store.sequences() {
        Ok(s) => s,
        Err(e) => {
            return Ok(JobRunOutcome::Transient(format!(
                "cannot scan job dir: {e}"
            )))
        }
    };
    let run = if sequences.is_empty() {
        pipeline.fit_checkpointed(&frame, &outcomes, mode, store, spec.checkpoint_every)
    } else {
        match pipeline.resume_checkpointed(
            &frame,
            &outcomes,
            mode,
            store.clone(),
            spec.checkpoint_every,
        ) {
            Ok(run) => Ok(run),
            // The dataset and spec are immutable after admission, so a
            // resume refusal (fingerprint mismatch, unreadable file) can
            // only mean the checkpoints themselves are unusable — e.g. a
            // drain that interrupted discretization sealed truncated
            // trees. Recovery must never brick a job on a stale
            // checkpoint: quarantine them and redo the work from scratch.
            Err(_) => {
                for seq in &sequences {
                    let _ = std::fs::remove_file(store.path_of(*seq));
                }
                pipeline.fit_checkpointed(&frame, &outcomes, mode, store, spec.checkpoint_every)
            }
        }
    };
    let mut run = match run {
        Ok(run) => run,
        Err(e) => return Ok(JobRunOutcome::Permanent(e.to_string())),
    };
    let termination = run.result.termination();
    if termination == Termination::Cancelled(CancelReason::Shutdown) {
        // Drain: the freshly finalized checkpoint is the handoff to the
        // next process; deliberately no completion marker.
        return Ok(JobRunOutcome::Drained);
    }
    fail_point!("serve::done", Injected);
    // The sealed body is the `/jobs/<id>/result` byte-identity surface: a
    // resumed run must serve the same bytes an uninterrupted run would
    // have. Every report field is deterministic except wall-clock elapsed
    // time, so pin it before serialising.
    run.result.report.elapsed = std::time::Duration::ZERO;
    let record = DoneRecord {
        ok: true,
        termination: termination.as_str().to_string(),
        attempts: attempt,
        body: report_to_json(&run.result.report, &run.result.catalog),
    };
    match write_sealed(&job_dir.join(COMPLETE_FILE), &record.encode()) {
        Ok(()) => {
            // Advance the ingest cursor only after the result is durable:
            // the cursor is scheduling metadata (how many WAL rows the
            // sealed result covers). Best-effort — losing it degrades to
            // one redundant re-mine, never to wrong results.
            let prior = hdx_ingest::IngestCursor::load(&job_dir.join(hdx_ingest::CURSOR_FILE))
                .ok()
                .flatten()
                .unwrap_or_default();
            let _ = hdx_ingest::IngestCursor {
                rows_folded: n_wal_rows,
                ..prior
            }
            .save(&job_dir.join(hdx_ingest::CURSOR_FILE));
            Ok(JobRunOutcome::Done(record))
        }
        Err(e) => Ok(JobRunOutcome::Transient(format!(
            "cannot seal completion marker: {e}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::parse_submission;
    use crate::json::parse_object;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hdx-serve-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn sample_csv() -> String {
        let mut csv = String::from("class,pred,age,grp\n");
        for r in 0..120usize {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                u8::from(r % 3 == 0),
                u8::from(r % 4 == 0),
                r % 17,
                ["a", "b", "c"][r % 3],
            ));
        }
        csv
    }

    fn spec_and_csv() -> (JobSpec, String) {
        let body = format!(
            r#"{{"csv":"{}","stat":"fpr","support":0.05,"checkpoint_every":1}}"#,
            crate::json::escape(&sample_csv())
        );
        parse_submission(&parse_object(&body).expect("json")).expect("spec")
    }

    #[test]
    fn a_fresh_job_completes_and_seals_its_marker() {
        let dir = tmp_dir("fresh");
        let (spec, csv) = spec_and_csv();
        std::fs::write(dir.join(crate::DATA_FILE), csv).expect("persist csv");
        let outcome = execute(&spec, &dir, CancelToken::new(), 1);
        let JobRunOutcome::Done(record) = outcome else {
            panic!("expected Done, got {outcome:?}");
        };
        assert!(record.ok);
        assert_eq!(record.termination, "complete");
        assert!(record.body.contains("\"subgroups\""));
        assert!(
            record.body.contains("\"elapsed_seconds\":0"),
            "wall-clock time must be pinned out of the sealed body"
        );
        let sealed =
            hdx_checkpoint::read_sealed(&dir.join(COMPLETE_FILE)).expect("marker readable");
        assert_eq!(DoneRecord::decode(&sealed).expect("decodes"), record);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_input_is_a_permanent_failure() {
        let dir = tmp_dir("permanent");
        let (mut spec, csv) = spec_and_csv();
        spec.label_col = "missing".into();
        std::fs::write(dir.join(crate::DATA_FILE), csv).expect("persist csv");
        let outcome = execute(&spec, &dir, CancelToken::new(), 1);
        assert!(
            matches!(outcome, JobRunOutcome::Permanent(_)),
            "{outcome:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_dataset_is_transient() {
        let dir = tmp_dir("transient");
        let (spec, _) = spec_and_csv();
        let outcome = execute(&spec, &dir, CancelToken::new(), 1);
        assert!(
            matches!(outcome, JobRunOutcome::Transient(_)),
            "{outcome:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_cancel_leaves_the_job_resumable_to_identical_bytes() {
        let dir = tmp_dir("drain");
        let (spec, csv) = spec_and_csv();
        std::fs::write(dir.join(crate::DATA_FILE), &csv).expect("persist csv");
        // Pre-cancelled token: the governor trips at the first poll, after
        // the first checkpoint boundary seals.
        let cancel = CancelToken::new();
        cancel.cancel_for_shutdown();
        let outcome = execute(&spec, &dir, cancel, 1);
        assert!(matches!(outcome, JobRunOutcome::Drained), "{outcome:?}");
        assert!(
            !dir.join(COMPLETE_FILE).exists(),
            "a drained job must not look finished"
        );
        // "Next start": the resumed run completes to the same bytes an
        // uninterrupted run produces.
        let resumed = execute(&spec, &dir, CancelToken::new(), 2);
        let JobRunOutcome::Done(resumed) = resumed else {
            panic!("expected Done after resume, got {resumed:?}");
        };
        let fresh_dir = tmp_dir("drain-fresh");
        std::fs::write(fresh_dir.join(crate::DATA_FILE), &csv).expect("persist csv");
        let JobRunOutcome::Done(fresh) = execute(&spec, &fresh_dir, CancelToken::new(), 1) else {
            panic!("fresh run failed");
        };
        assert_eq!(resumed.body, fresh.body, "resume must be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fresh_dir);
    }
}
