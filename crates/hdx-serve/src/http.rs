//! A deliberately small HTTP/1.1 server-side codec.
//!
//! The service speaks just enough HTTP for `curl` and language-standard
//! clients: one request per connection (`Connection: close`), byte-capped
//! request heads and bodies, `Content-Length` bodies only (no chunked
//! transfer), and `Expect: 100-continue` acknowledged so large `curl`
//! uploads do not stall. Anything outside that envelope is answered with a
//! 4xx instead of being guessed at.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers before the service answers 431.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each variant maps onto one status line.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or unsupported framing.
    Bad(String),
    /// Request head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Declared body exceeded the service's body cap.
    BodyTooLarge,
    /// Socket-level failure (timeout, reset); no response is owed.
    Io(std::io::Error),
}

impl HttpError {
    /// The `(status, reason)` pair this error should be answered with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Bad(_) => (400, "Bad Request"),
            HttpError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::Io(_) => (400, "Bad Request"),
        }
    }
}

/// Reads one request from `stream`, enforcing the head cap and `max_body`.
///
/// # Errors
/// Returns an [`HttpError`] describing the framing problem; the caller
/// decides whether a response can still be written.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Read the head a byte at a time until the blank line. Requests are tiny
    // (the cap is 16 KiB) and one-shot, so simplicity beats buffering — and
    // a byte-wise read can never consume body bytes by accident.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(HttpError::Bad("connection closed mid-request".into())),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Bad("request line has no target".into()))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut expects_continue = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("malformed header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Bad(format!("bad content-length `{value}`")))?;
            }
            "transfer-encoding" => {
                return Err(HttpError::Bad("chunked bodies are not supported".into()));
            }
            "expect" if value.eq_ignore_ascii_case("100-continue") => expects_continue = true,
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }
    if expects_continue {
        // Acknowledge before reading the body or curl waits out a timer.
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(HttpError::Io)?;
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(Request { method, path, body })
}

/// Writes one response and flushes it. `extra_headers` lets handlers attach
/// e.g. `Retry-After`. Write errors are swallowed: the client hung up and
/// there is nobody left to tell.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, String)],
) {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Writes a JSON response body.
pub fn respond_json(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    respond(stream, status, reason, "application/json", body, &[]);
}

/// Writes a JSON error object: `{"error":"..."}`.
pub fn respond_error(stream: &mut TcpStream, status: u16, reason: &str, message: &str) {
    let body = format!("{{\"error\":\"{}\"}}", crate::json::escape(message));
    respond_json(stream, status, reason, &body);
}

/// A streaming response using `Transfer-Encoding: chunked` — the one place
/// the codec departs from "one buffered body per connection", used by the
/// live event stream (`GET /jobs/<id>/events`) whose length is unknown
/// while the job is still running.
///
/// Unlike [`respond`], write errors are *returned*: for a stream the error
/// is the signal that the consumer went away and the producer loop should
/// stop following the ring.
#[derive(Debug)]
pub struct ChunkedResponse<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedResponse<'a> {
    /// Writes the status line and headers and switches to chunked framing.
    ///
    /// # Errors
    /// The underlying socket write failure.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        reason: &str,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(Self { stream })
    }

    /// Writes one chunk (empty input is skipped — a zero-length chunk would
    /// terminate the stream) and flushes so consumers see it immediately.
    ///
    /// # Errors
    /// The underlying socket write failure (consumer hung up).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero-length chunk.
    ///
    /// # Errors
    /// The underlying socket write failure.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            s
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let got = read_request(&mut conn, max_body);
        drop(writer.join());
        got
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            b"POST /jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
            64,
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let err = roundtrip(b"POST /jobs HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 64)
            .expect_err("rejected");
        assert!(matches!(err, HttpError::BodyTooLarge));
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn rejects_oversized_heads_and_chunked_framing() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 8));
        assert!(matches!(
            roundtrip(&raw, 64).expect_err("head cap"),
            HttpError::HeadTooLarge
        ));
        let err = roundtrip(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 64)
            .expect_err("chunked");
        assert!(matches!(err, HttpError::Bad(_)));
    }

    #[test]
    fn chunked_responses_frame_and_terminate() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut raw = Vec::new();
            s.read_to_end(&mut raw).expect("read");
            String::from_utf8(raw).expect("utf8")
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let mut resp =
            ChunkedResponse::begin(&mut conn, 200, "OK", "application/x-ndjson").expect("begin");
        resp.chunk(b"{\"seq\":0}\n").expect("chunk");
        resp.chunk(b"").expect("empty chunk is a no-op");
        resp.chunk(b"{\"seq\":1}\n").expect("chunk");
        resp.finish().expect("finish");
        drop(conn);
        let raw = reader.join().expect("reader");
        assert!(raw.contains("Transfer-Encoding: chunked"), "{raw}");
        // Each chunk: hex length, CRLF, payload, CRLF; then the 0 terminator.
        assert!(raw.contains("a\r\n{\"seq\":0}\n\r\n"), "{raw}");
        assert!(raw.contains("a\r\n{\"seq\":1}\n\r\n"), "{raw}");
        assert!(raw.ends_with("0\r\n\r\n"), "{raw}");
    }

    #[test]
    fn acknowledges_expect_continue() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n")
                .expect("head");
            let mut ack = [0u8; 25];
            s.read_exact(&mut ack).expect("ack");
            assert!(ack.starts_with(b"HTTP/1.1 100 Continue"));
            s.write_all(b"ok").expect("body");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn, 64).expect("parses");
        assert_eq!(req.body, b"ok");
        writer.join().expect("client");
    }
}
