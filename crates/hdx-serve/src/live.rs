//! The live plane: per-job event channels, the governor snapshot tap, and
//! the worker flight recorder.
//!
//! One [`LivePlane`] per server wires three pieces together (DESIGN.md
//! §16):
//!
//! * every open job owns a [`JobChannel`] — a durable [`crate::journal`]
//!   (sequence authority) plus a [`crate::ring`] broadcast ring fanning the
//!   same lines out to live stream consumers;
//! * a process-global `hdx_obs::SnapshotObserver` tap routes per-level
//!   governor samples, via a thread-local "current job" set by
//!   [`LivePlane::job_scope`] around the runner, into that job's channel —
//!   which is how mid-run progress reaches `GET /jobs/<id>/events` without
//!   the miners knowing the service exists;
//! * a thread-local flight recorder keeps the last [`FLIGHT_CAP`] event
//!   lines each worker emitted (across jobs), dumped to `flight.ndjson` on
//!   panic or exit-3 degradation so post-mortems start with context.
//!
//! With the `obs` feature off this module compiles to the no-op twin at the
//! bottom of the file: no journal is written, no ring allocated, no tap
//! installed — the zero-cost-when-disabled contract of hdx-obs extended to
//! the service.

#[cfg(feature = "obs")]
pub use enabled::{JobChannel, JobScope, LivePlane};
#[cfg(not(feature = "obs"))]
pub use stub::{JobScope, LivePlane};

/// Most recent event lines retained per worker thread for flight dumps.
pub const FLIGHT_CAP: usize = 256;

/// The flight-recorder dump file written into a job directory on panic or
/// degradation.
pub const FLIGHT_FILE: &str = "flight.ndjson";

/// Where a `GET /jobs/<id>/events` response comes from.
pub enum EventsSource {
    /// The job is live: send `catchup` (the durable prefix), then follow
    /// the channel's ring from `cursor`.
    #[cfg(feature = "obs")]
    Live {
        /// Journal bytes at subscription time.
        catchup: String,
        /// The channel to follow for lines with `seq >= cursor`.
        channel: std::sync::Arc<JobChannel>,
        /// First sequence number not covered by `catchup`.
        cursor: u64,
    },
    /// The job is terminal: its journal bytes, served verbatim and closed.
    Replay(String),
    /// No event stream exists (obs disabled, or nothing was journaled).
    Unavailable(&'static str),
}

/// Best-effort write of the calling thread's flight ring to
/// `<job_dir>/flight.ndjson`, headed by a line identifying the dump
/// `reason`. Post-mortem artifact: plain write, no rename dance, errors
/// reported to stderr only.
#[cfg(feature = "obs")]
fn write_flight(job_dir: &std::path::Path, reason: &str, lines: &[String]) {
    let mut out = format!(
        "{{\"flight_reason\":\"{}\",\"lines\":{}}}\n",
        crate::json::escape(reason),
        lines.len()
    );
    for line in lines {
        out.push_str(line);
    }
    if let Err(e) = std::fs::write(job_dir.join(FLIGHT_FILE), out) {
        eprintln!(
            "hdx-serve: flight dump to {} failed: {e}",
            job_dir.display()
        );
    }
}

#[cfg(feature = "obs")]
mod enabled {
    use super::{EventsSource, FLIGHT_CAP};
    use crate::events::{self, JobEvent};
    use crate::journal::{self, Journal};
    use crate::ring::{BroadcastRing, RingUpdate};
    use hdx_obs::SnapshotSample;
    use std::cell::RefCell;
    use std::collections::{HashMap, VecDeque};
    use std::path::Path;
    use std::sync::{Arc, Mutex, Once, PoisonError};
    use std::time::Duration;

    thread_local! {
        /// The job the calling thread is currently executing (set by
        /// [`JobScope`]); the snapshot tap routes samples here.
        static CURRENT: RefCell<Option<Arc<JobChannel>>> = const { RefCell::new(None) };
        /// The flight recorder: this worker's most recent event lines.
        static FLIGHT: RefCell<VecDeque<String>> = const { RefCell::new(VecDeque::new()) };
    }

    fn flight_push(line: &str) {
        FLIGHT.with(|f| {
            let mut f = f.borrow_mut();
            if f.len() >= FLIGHT_CAP {
                f.pop_front();
            }
            f.push_back(line.to_string());
        });
    }

    /// The process-global snapshot tap. Routing is per-thread, so multiple
    /// servers in one process (tests) share it safely: whichever job the
    /// recording thread is scoped to receives the sample.
    struct Tap;

    impl hdx_obs::SnapshotObserver for Tap {
        fn on_snapshot(&self, sample: &SnapshotSample) {
            CURRENT.with(|c| {
                if let Some(channel) = c.borrow().as_ref() {
                    channel.emit(&JobEvent::Level {
                        sample: sample.clone(),
                    });
                }
            });
        }
    }

    /// One live job's event channel: the durable journal (which owns
    /// sequence numbering) and the broadcast ring fed in lockstep.
    pub struct JobChannel {
        job_id: String,
        ring: BroadcastRing,
        journal: Mutex<Journal>,
        latest: Mutex<Option<SnapshotSample>>,
    }

    impl JobChannel {
        /// Journals and broadcasts one event. The ring push happens under
        /// the journal lock so consumers observe sequence order; both sides
        /// are non-blocking beyond that lock, which only event emission
        /// takes. A journal write failure degrades durability (reported to
        /// stderr), not liveness: the line is still broadcast.
        fn emit(&self, event: &JobEvent) {
            let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
            let seq = journal.next_seq();
            let line = events::encode_line(seq, event);
            if let Err(e) = journal.append(&line) {
                eprintln!("hdx-serve: event journal for {} failed: {e}", self.job_id);
            }
            self.ring.push(seq, line.clone());
            drop(journal);
            if let JobEvent::Level { sample } = event {
                *self.latest.lock().unwrap_or_else(PoisonError::into_inner) = Some(sample.clone());
            }
            flight_push(&line);
        }

        /// Blocks up to `wait` for lines with `seq >= cursor` (see
        /// [`BroadcastRing::wait_next`]) — the streaming handler's follow
        /// loop.
        pub fn wait_next(&self, cursor: u64, wait: Duration) -> RingUpdate {
            self.ring.wait_next(cursor, wait)
        }
    }

    /// RAII guard marking the calling thread as executing one job; the
    /// snapshot tap routes samples to that job's channel while the guard
    /// lives. Restores the previous scope on drop (scopes can in principle
    /// nest, though the service never does).
    pub struct JobScope {
        prev: Option<Arc<JobChannel>>,
    }

    impl Drop for JobScope {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }

    /// The server's live observability plane. See the module docs.
    pub struct LivePlane {
        channels: Mutex<HashMap<String, Arc<JobChannel>>>,
        ring_cap: usize,
    }

    impl LivePlane {
        /// A plane whose per-job rings hold `ring_cap` lines. Installs the
        /// process-global snapshot tap on first construction.
        pub fn new(ring_cap: usize) -> Self {
            static INSTALL: Once = Once::new();
            INSTALL.call_once(|| {
                // First-install-wins is fine: the tap routes through
                // thread-locals, not through any one plane.
                let _ = hdx_obs::set_snapshot_observer(Box::new(Tap));
            });
            Self {
                channels: Mutex::new(HashMap::new()),
                ring_cap,
            }
        }

        fn channel(&self, job_id: &str) -> Option<Arc<JobChannel>> {
            self.channels
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(job_id)
                .cloned()
        }

        /// Opens a job's channel (journal + ring) and emits its `admitted`
        /// event. For resumed orphans the reloaded journal keeps the prior
        /// process's lines, so numbering and replay continue seamlessly. A
        /// journal that cannot be opened leaves the job without a channel
        /// — status and results still work, only the stream is missing.
        pub fn open_job(&self, job_id: &str, job_dir: &Path, tenant: &str, resumed: bool) {
            let journal = match Journal::open(job_dir) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("hdx-serve: cannot open event journal for {job_id}: {e}");
                    return;
                }
            };
            let channel = Arc::new(JobChannel {
                job_id: job_id.to_string(),
                ring: BroadcastRing::new(self.ring_cap),
                journal: Mutex::new(journal),
                latest: Mutex::new(None),
            });
            channel.emit(&JobEvent::Admitted {
                tenant: tenant.to_string(),
                resumed,
            });
            self.channels
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(job_id.to_string(), channel);
        }

        /// Emits a non-terminal lifecycle event for a job (no-op when the
        /// job has no channel).
        pub fn emit(&self, job_id: &str, event: &JobEvent) {
            if let Some(channel) = self.channel(job_id) {
                channel.emit(event);
            }
        }

        /// Emits a job's terminal event, closes its ring (stream consumers
        /// drain and finish), and retires the channel — replay for this job
        /// is served from the journal file from now on, keeping the channel
        /// map bounded by *live* jobs only.
        pub fn finish(&self, job_id: &str, event: &JobEvent) {
            let Some(channel) = self
                .channels
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(job_id)
            else {
                return;
            };
            channel.emit(event);
            channel.ring.close();
        }

        /// Marks the calling thread as executing `job_id` for the guard's
        /// lifetime, routing recorded governor snapshots to its channel.
        pub fn job_scope(&self, job_id: &str) -> JobScope {
            let channel = self.channel(job_id);
            let prev = CURRENT.with(|c| c.borrow_mut().take());
            CURRENT.with(|c| *c.borrow_mut() = channel);
            JobScope { prev }
        }

        /// Resolves a `GET /jobs/<id>/events` request: a live subscription
        /// (durable catch-up + ring cursor, taken under the journal lock so
        /// no line is missed or doubled), a verbatim replay for a retired
        /// job, or unavailable.
        pub fn subscribe(&self, job_id: &str, job_dir: &Path) -> EventsSource {
            if let Some(channel) = self.channel(job_id) {
                let journal = channel
                    .journal
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let catchup = journal.contents();
                let cursor = journal.next_seq();
                drop(journal);
                return EventsSource::Live {
                    catchup,
                    channel: Arc::clone(&channel),
                    cursor,
                };
            }
            match journal::read_journal(job_dir) {
                Ok(Some(bytes)) => EventsSource::Replay(bytes),
                Ok(None) => EventsSource::Unavailable("no events were recorded for this job"),
                Err(_) => EventsSource::Unavailable("event journal is unreadable"),
            }
        }

        /// The most recent per-level snapshot for a job: the live channel's
        /// last sample, falling back to the journal on disk (covers retired
        /// jobs and freshly resumed ones that have not sampled yet).
        pub fn latest(&self, job_id: &str, job_dir: &Path) -> Option<SnapshotSample> {
            if let Some(channel) = self.channel(job_id) {
                let latest = channel
                    .latest
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                if latest.is_some() {
                    return latest;
                }
            }
            journal::read_journal(job_dir)
                .ok()
                .flatten()
                .and_then(|text| events::last_level_sample(&text))
        }

        /// Dumps the calling worker's flight ring next to the job's
        /// quarantine report (see [`super::FLIGHT_FILE`]).
        pub fn dump_flight(&self, job_dir: &Path, reason: &str) {
            FLIGHT.with(|f| {
                let f = f.borrow();
                let lines: Vec<String> = f.iter().cloned().collect();
                super::write_flight(job_dir, reason, &lines);
            });
        }
    }
}

/// No-op twins compiled when `obs` is off: the plane holds no state, emits
/// nothing, journals nothing, and reports every stream unavailable.
#[cfg(not(feature = "obs"))]
mod stub {
    use super::EventsSource;
    use crate::events::JobEvent;
    use std::path::Path;

    /// Zero-sized disabled twin of the live plane.
    #[derive(Debug)]
    pub struct LivePlane;

    /// Zero-sized disabled twin of the per-job scope guard.
    #[derive(Debug)]
    pub struct JobScope;

    impl LivePlane {
        /// Does nothing; holds nothing.
        #[inline(always)]
        pub fn new(_ring_cap: usize) -> Self {
            Self
        }

        /// Does nothing.
        #[inline(always)]
        pub fn open_job(&self, _job_id: &str, _job_dir: &Path, _tenant: &str, _resumed: bool) {}

        /// Does nothing.
        #[inline(always)]
        pub fn emit(&self, _job_id: &str, _event: &JobEvent) {}

        /// Does nothing.
        #[inline(always)]
        pub fn finish(&self, _job_id: &str, _event: &JobEvent) {}

        /// Returns a zero-sized guard.
        #[inline(always)]
        pub fn job_scope(&self, _job_id: &str) -> JobScope {
            JobScope
        }

        /// Always unavailable when observability is compiled out.
        #[inline(always)]
        pub fn subscribe(&self, _job_id: &str, _job_dir: &Path) -> EventsSource {
            EventsSource::Unavailable("observability is disabled in this build (obs feature)")
        }

        /// Always `None` when observability is compiled out.
        #[inline(always)]
        pub fn latest(&self, _job_id: &str, _job_dir: &Path) -> Option<hdx_obs::SnapshotSample> {
            None
        }

        /// Does nothing.
        #[inline(always)]
        pub fn dump_flight(&self, _job_dir: &Path, _reason: &str) {}
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use crate::events::JobEvent;
    use crate::ring::RingUpdate;
    use hdx_obs::SnapshotSample;
    use std::fs;
    use std::path::PathBuf;
    use std::time::Duration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hdx-live-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn sample(level: u64) -> SnapshotSample {
        SnapshotSample {
            level,
            elapsed_ns: level * 100,
            deadline_remaining_ns: None,
            itemsets: level,
            candidate_bytes: 0,
            tree_nodes: 0,
        }
    }

    #[test]
    fn snapshot_tap_routes_to_the_scoped_job_only() {
        let plane = LivePlane::new(16);
        let dir_a = tmp_dir("route-a");
        let dir_b = tmp_dir("route-b");
        plane.open_job("j-a", &dir_a, "acme", false);
        plane.open_job("j-b", &dir_b, "zen", false);
        {
            let _scope = plane.job_scope("j-a");
            hdx_obs::record_snapshot(sample(1));
        }
        {
            let _scope = plane.job_scope("j-b");
            hdx_obs::record_snapshot(sample(2));
        }
        hdx_obs::record_snapshot(sample(3)); // unscoped: routed nowhere
        assert_eq!(plane.latest("j-a", &dir_a), Some(sample(1)));
        assert_eq!(plane.latest("j-b", &dir_b), Some(sample(2)));
        hdx_obs::reset();
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn subscribe_live_then_finish_then_replay_byte_identical() {
        let plane = LivePlane::new(16);
        let dir = tmp_dir("replay");
        plane.open_job("j-1", &dir, "acme", false);
        plane.emit("j-1", &JobEvent::Started { attempt: 1 });
        let EventsSource::Live {
            catchup,
            channel,
            cursor,
        } = plane.subscribe("j-1", &dir)
        else {
            panic!("expected a live subscription");
        };
        assert_eq!(cursor, 2, "admitted + started are caught up");
        plane.finish(
            "j-1",
            &JobEvent::Done {
                ok: true,
                state: "done".into(),
                termination: "complete".into(),
            },
        );
        let tail = match channel.wait_next(cursor, Duration::from_secs(1)) {
            RingUpdate::Lines(lines) => lines.into_iter().map(|(_, l)| l).collect::<String>(),
            other => panic!("expected the done line, got {other:?}"),
        };
        assert!(matches!(
            channel.wait_next(cursor + 1, Duration::from_millis(10)),
            RingUpdate::Closed
        ));
        let streamed = format!("{catchup}{tail}");
        let EventsSource::Replay(replayed) = plane.subscribe("j-1", &dir) else {
            panic!("retired job must replay from its journal");
        };
        assert_eq!(streamed, replayed, "live stream == durable replay");
        assert_eq!(replayed.lines().count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_dump_holds_recent_lines_for_this_worker() {
        let plane = LivePlane::new(16);
        let dir = tmp_dir("flight");
        plane.open_job("j-f", &dir, "acme", false);
        {
            let _scope = plane.job_scope("j-f");
            hdx_obs::record_snapshot(sample(9));
        }
        plane.dump_flight(&dir, "worker panic: boom");
        let dump = fs::read_to_string(dir.join(FLIGHT_FILE)).expect("flight file");
        assert!(
            dump.starts_with("{\"flight_reason\":\"worker panic: boom\""),
            "{dump}"
        );
        assert!(dump.contains("\"event\":\"level\""), "{dump}");
        hdx_obs::reset();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_jobs_are_unavailable() {
        let plane = LivePlane::new(4);
        let dir = tmp_dir("unknown");
        assert!(matches!(
            plane.subscribe("j-x", &dir),
            EventsSource::Unavailable(_)
        ));
        assert_eq!(plane.latest("j-x", &dir), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
