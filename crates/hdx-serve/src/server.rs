//! The HTTP job server: admission, supervision, recovery, drain.
//!
//! One [`Server`] owns a listener, a bounded [`AdmissionQueue`], a worker
//! pool watched by a supervisor, and an in-memory job registry backed by
//! per-job state directories. Every lifecycle decision favours staying up:
//! connection handlers and job executions run under `catch_unwind`, dead
//! workers are respawned, transient failures retry with jittered
//! exponential backoff, and overload is answered with `429 Retry-After`
//! instead of unbounded queues.
//!
//! Durability contract: a job is acknowledged (`202`) only after its
//! dataset and sealed manifest are on disk, so from the client's point of
//! view an accepted job survives `kill -9` — the next start's orphan scan
//! re-queues it and the checkpoint layer resumes it to the byte-identical
//! result.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hdx_checkpoint::{list_manifests, write_sealed, CheckpointStore, COMPLETE_FILE, MANIFEST_FILE};
use hdx_governor::{fail_point, CancelToken, RunBudget};
use hdx_obs::{counter_add, flush_thread, gauge_max, job_span, RunTelemetry};

use crate::events::JobEvent;
use crate::http::{read_request, respond, respond_error, respond_json, HttpError, Request};
use crate::job::{parse_submission, DoneRecord, JobSpec};
use crate::json::escape;
use crate::live::{EventsSource, LivePlane};
use crate::queue::{AdmissionQueue, Shed};
use crate::runner::{self, JobRunOutcome};
use crate::DATA_FILE;

/// How long a worker parks on an empty queue before re-checking drain state.
const POP_WAIT: Duration = Duration::from_millis(100);
/// Accept-loop poll interval while the listener has no pending connection.
const ACCEPT_WAIT: Duration = Duration::from_millis(10);
/// Supervisor poll interval for dead-worker detection.
const WATCHDOG_WAIT: Duration = Duration::from_millis(50);

/// Tunables for one service instance. `Default` is a small, safe local
/// deployment; every field maps onto an `hdx serve` flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Root state directory (job state lives under `<state_dir>/jobs/`).
    pub state_dir: PathBuf,
    /// Mining worker threads.
    pub workers: usize,
    /// Global queued-job cap (admissions beyond it shed with 429).
    pub queue_depth: usize,
    /// Per-tenant in-flight (queued + running) job cap.
    pub tenant_max_jobs: usize,
    /// Request-body byte cap (submissions beyond it shed with 413).
    pub max_body_bytes: usize,
    /// Concurrent connection cap (beyond it: 503, connection closed).
    pub max_connections: usize,
    /// Retries after the first attempt before a transient failure is final.
    pub retry_max: u32,
    /// Base backoff between retries (doubles per attempt, plus jitter).
    pub retry_base_ms: u64,
    /// Backoff ceiling.
    pub retry_cap_ms: u64,
    /// `Retry-After` seconds suggested to shed clients.
    pub retry_after_secs: u64,
    /// Per-tenant wall-clock deadline; each admitted job gets at most this.
    pub tenant_deadline_ms: Option<u64>,
    /// Per-tenant itemset budget, split evenly across the tenant's
    /// concurrent job slots at admission.
    pub tenant_max_itemsets: Option<u64>,
    /// Per-job event broadcast ring capacity: how many recent event lines
    /// a slow `GET /jobs/<id>/events` consumer may lag before it observes
    /// a sequence gap (drop-oldest backpressure).
    pub events_ring_cap: usize,
    /// Ingest backpressure: maximum durable-but-unfolded WAL rows a job may
    /// accumulate before `POST /jobs/<id>/append` sheds with
    /// `429 Retry-After` and a jittered `retry_after_ms` hint.
    pub append_backlog_max_rows: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            state_dir: PathBuf::from("hdx-serve-state"),
            workers: 2,
            queue_depth: 16,
            tenant_max_jobs: 2,
            max_body_bytes: 4 * 1024 * 1024,
            max_connections: 32,
            retry_max: 2,
            retry_base_ms: 50,
            retry_cap_ms: 2_000,
            retry_after_secs: 1,
            tenant_deadline_ms: None,
            tenant_max_itemsets: None,
            events_ring_cap: 256,
            append_backlog_max_rows: 100_000,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobPhase {
    /// Admitted and waiting for a worker.
    Queued,
    /// A worker is mining it.
    Running,
    /// A transient failure; the worker is waiting out the backoff.
    Backoff,
    /// Cancelled by shutdown drain; resumable by the next start.
    Drained,
    /// Terminal (successful, partial, or failed — see the record).
    Finished(DoneRecord),
}

impl JobPhase {
    fn as_str(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Backoff => "backoff",
            JobPhase::Drained => "drained",
            JobPhase::Finished(record) if record.ok => "done",
            JobPhase::Finished(_) => "failed",
        }
    }
}

/// The in-memory shadow of a job's ingest WAL: durable row counts and
/// quarantine totals, kept current by the append handler and the recovery
/// scan. The durable truth is the WAL directory plus the sealed cursor.
#[derive(Debug, Clone, Copy, Default)]
struct IngestState {
    /// Rows durable in the WAL (acknowledged appends).
    durable_rows: u64,
    /// Rows covered by the last sealed mining result (the cursor).
    folded_rows: u64,
    /// Lifetime torn/corrupt frames quarantined for this job.
    quarantined_frames: u64,
    /// Lifetime quarantined bytes for this job.
    quarantined_bytes: u64,
}

impl IngestState {
    /// Durable rows not yet covered by a sealed result.
    fn pending_rows(self) -> u64 {
        self.durable_rows.saturating_sub(self.folded_rows)
    }
}

/// One job's in-memory state. The durable twin lives in its state dir.
struct JobRecord {
    spec: JobSpec,
    phase: JobPhase,
    attempts: u32,
    cancel: CancelToken,
    resumed: bool,
    /// Transient-failure messages accumulated across retries.
    retry_log: Vec<String>,
    /// Streaming-append bookkeeping (zero for jobs never appended to).
    ingest: IngestState,
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    config: ServeConfig,
    jobs_dir: PathBuf,
    queue: AdmissionQueue,
    registry: Mutex<HashMap<String, JobRecord>>,
    draining: AtomicBool,
    next_id: AtomicU64,
    active_connections: AtomicUsize,
    started: Instant,
    /// Per-job event channels, the snapshot tap, and the flight recorder
    /// (a zero-sized no-op when the `obs` feature is off).
    plane: LivePlane,
    /// Process-lifetime metric accumulator behind `GET /metrics`: each
    /// scrape drains the worker pool's thread-local sinks into it, so
    /// counters are cumulative across scrapes as Prometheus expects.
    telemetry: Mutex<RunTelemetry>,
    /// Per-job append serialization: WAL healing-open, append, and commit
    /// must not interleave across connection handlers. (The mining runner
    /// never takes these — it reads the WAL through the read-only
    /// `replay_dir`, which is safe against concurrent atomic appends.)
    append_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
}

impl Shared {
    fn lock_registry(&self) -> std::sync::MutexGuard<'_, HashMap<String, JobRecord>> {
        // Registry updates are single-statement map edits; a panicking
        // holder cannot leave them half-done, so serving beats wedging.
        self.registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn draining(&self) -> bool {
        // ORDERING: Relaxed — the flag is a latch; every consumer re-checks
        // on its next loop iteration, so no edge ordering is needed.
        self.draining.load(Ordering::Relaxed)
    }

    fn job_dir(&self, job_id: &str) -> PathBuf {
        self.jobs_dir.join(job_id)
    }

    /// Marks a job terminal in memory, seals the durable marker if the
    /// runner didn't already, and frees the tenant slot.
    fn finish(&self, job_id: &str, record: DoneRecord, seal: bool) {
        if seal {
            // Best-effort: the in-memory registry still answers clients if
            // the marker can't be written; the next start will re-run the
            // job instead of remembering the failure, which is safe.
            let _ = write_sealed(&self.job_dir(job_id).join(COMPLETE_FILE), &record.encode());
        }
        let tenant = {
            let mut registry = self.lock_registry();
            let Some(job) = registry.get_mut(job_id) else {
                return;
            };
            job.phase = JobPhase::Finished(record);
            job.spec.tenant.clone()
        };
        self.queue.release(&tenant);
    }
}

/// A fault-tolerant, multi-tenant mining job service over HTTP/1.1.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    local_addr: SocketAddr,
    /// Startup recovery report: one line per resumed or quarantined entry.
    pub recovery_notes: Vec<String>,
}

impl Server {
    /// Binds the listener, prepares the state directory, and recovers
    /// orphaned jobs from a previous process.
    ///
    /// # Errors
    /// Returns an [`io::Error`] when the state directory or listen address
    /// is unusable.
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let jobs_dir = config.state_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_depth, config.tenant_max_jobs),
            plane: LivePlane::new(config.events_ring_cap),
            config,
            jobs_dir,
            registry: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            active_connections: AtomicUsize::new(0),
            started: Instant::now(),
            telemetry: Mutex::new(RunTelemetry::empty()),
            append_locks: Mutex::new(HashMap::new()),
        });
        let recovery_notes = recover(&shared).map_err(io::Error::other)?;
        Ok(Self {
            shared,
            listener,
            local_addr,
            recovery_notes,
        })
    }

    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the service until a drain completes: accepts connections,
    /// supervises the worker pool, and on `POST /shutdown` stops admission,
    /// cancels running jobs at their next governor poll, waits for every
    /// worker to reach a checkpoint boundary, and returns.
    ///
    /// # Errors
    /// Returns an [`io::Error`] only for unrecoverable listener failures;
    /// per-connection errors are answered in-band and per-job failures are
    /// recorded on the job.
    pub fn run(&self) -> io::Result<()> {
        let supervisor = {
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || supervise_workers(&shared))
        };
        // Serve until the supervisor reports the worker pool fully drained —
        // NOT merely until the drain flag flips. Clients keep polling job
        // status and fetching results while workers wind down, and
        // submissions during the drain get their 503 instead of a reset.
        while !supervisor.is_finished() {
            gauge_max!(
                ServeUptimeMs,
                self.shared.started.elapsed().as_millis() as u64
            );
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    // ORDERING: Relaxed — an approximate load cap; an
                    // off-by-one race sheds one connection early/late.
                    if shared.active_connections.fetch_add(1, Ordering::Relaxed)
                        >= shared.config.max_connections
                    {
                        // ORDERING: Relaxed — undoes the optimistic count above;
                        // the counter is advisory, not a synchronisation point.
                        shared.active_connections.fetch_sub(1, Ordering::Relaxed);
                        let mut stream = stream;
                        respond_error(
                            &mut stream,
                            503,
                            "Service Unavailable",
                            "too many connections",
                        );
                        continue;
                    }
                    thread::spawn(move || {
                        let mut stream = stream;
                        // A panicking handler must cost one connection, not
                        // the process.
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(&shared, &mut stream);
                        }));
                        if caught.is_err() {
                            respond_error(
                                &mut stream,
                                500,
                                "Internal Server Error",
                                "request handler panicked",
                            );
                        }
                        // ORDERING: Relaxed — see the cap check above.
                        shared.active_connections.fetch_sub(1, Ordering::Relaxed);
                        flush_thread!();
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_WAIT);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain complete: admission was closed when the drain began; every
        // worker has stopped at a checkpoint boundary.
        let _ = supervisor.join();
        flush_thread!();
        Ok(())
    }

    /// Requests a drain as if `POST /shutdown` had been received.
    pub fn shutdown(&self) {
        start_drain(&self.shared);
    }
}

/// Scans the jobs directory and re-queues every incomplete job.
fn recover(shared: &Arc<Shared>) -> Result<Vec<String>, String> {
    let listing = list_manifests(&shared.jobs_dir).map_err(|e| e.to_string())?;
    let mut notes = listing.warnings.clone();
    let mut max_id = 0u64;
    for run in &listing.runs {
        let job_id = run
            .dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if let Some(n) = job_id
            .strip_prefix("j-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            max_id = max_id.max(n);
        }
        let spec = match JobSpec::decode(&run.manifest) {
            Ok(spec) => spec,
            Err(e) => {
                notes.push(format!("skipped `{job_id}`: undecodable manifest ({e})"));
                continue;
            }
        };
        // Heal the job's ingest WAL (if any) before deciding its fate:
        // recovery is the one moment no append handler can hold the WAL, so
        // torn tails and corrupt segments are quarantined here — into notes
        // and the status JSON, never into a failure.
        let ingest = recover_ingest(&run.dir, &job_id, &mut notes);
        match &run.completion {
            Some(payload) => {
                // Finished before the crash: keep the result queryable —
                // unless durable rows arrived after the sealed result, in
                // which case the job owes its clients a re-mine.
                match DoneRecord::decode(payload) {
                    Ok(record) if ingest.pending_rows() == 0 => {
                        shared.lock_registry().insert(
                            job_id,
                            JobRecord {
                                spec,
                                phase: JobPhase::Finished(record),
                                attempts: 0,
                                cancel: CancelToken::new(),
                                resumed: false,
                                retry_log: Vec::new(),
                                ingest,
                            },
                        );
                    }
                    Ok(_) => {
                        notes.push(format!(
                            "re-mining `{job_id}`: {} appended row(s) beyond its sealed result",
                            ingest.pending_rows()
                        ));
                        resume_orphan(shared, &job_id, spec, &mut notes);
                        set_ingest(shared, &job_id, ingest);
                    }
                    Err(e) => {
                        notes.push(format!(
                            "re-running `{job_id}`: undecodable completion marker ({e})"
                        ));
                        resume_orphan(shared, &job_id, spec, &mut notes);
                        set_ingest(shared, &job_id, ingest);
                    }
                }
            }
            None => {
                resume_orphan(shared, &job_id, spec, &mut notes);
                set_ingest(shared, &job_id, ingest);
            }
        }
    }
    // ORDERING: Relaxed — recovery runs before any worker or connection
    // thread exists; the store is just initialization.
    shared.next_id.store(max_id + 1, Ordering::Relaxed);
    Ok(notes)
}

/// Opens (and thereby heals) one job's ingest WAL at startup, returning
/// its in-memory shadow. Quarantine findings land in `notes` and in the
/// durable cursor's lifetime totals. A job without a WAL directory gets a
/// zero state; a WAL that cannot even be scanned degrades to zero too
/// (the job still runs on its base dataset).
fn recover_ingest(job_dir: &std::path::Path, job_id: &str, notes: &mut Vec<String>) -> IngestState {
    let wal_dir = job_dir.join(crate::WAL_DIR);
    if !wal_dir.is_dir() {
        return IngestState::default();
    }
    let (wal, report) = match hdx_ingest::Wal::open(&wal_dir, hdx_ingest::WalConfig::default()) {
        Ok(v) => v,
        Err(e) => {
            notes.push(format!("cannot recover ingest WAL of `{job_id}`: {e}"));
            return IngestState::default();
        }
    };
    let cursor_path = job_dir.join(hdx_ingest::CURSOR_FILE);
    let cursor = hdx_ingest::IngestCursor::load(&cursor_path)
        .ok()
        .flatten()
        .unwrap_or_default();
    let state = IngestState {
        durable_rows: wal.total_rows(),
        folded_rows: cursor.rows_folded,
        quarantined_frames: cursor.quarantined_frames + report.quarantined_frames,
        quarantined_bytes: cursor.quarantined_bytes + report.quarantined_bytes,
    };
    if !report.is_clean() {
        for line in &report.notes {
            notes.push(format!("`{job_id}`: {line}"));
        }
        // Persist the new lifetime totals so they survive the next crash.
        let _ = hdx_ingest::IngestCursor {
            rows_folded: cursor.rows_folded,
            quarantined_frames: state.quarantined_frames,
            quarantined_bytes: state.quarantined_bytes,
        }
        .save(&cursor_path);
    }
    state
}

/// Stamps a recovered ingest shadow onto a just-registered job.
fn set_ingest(shared: &Arc<Shared>, job_id: &str, ingest: IngestState) {
    if let Some(job) = shared.lock_registry().get_mut(job_id) {
        job.ingest = ingest;
    }
}

/// Registers one orphaned (incomplete) job and re-queues it.
fn resume_orphan(shared: &Arc<Shared>, job_id: &str, spec: JobSpec, notes: &mut Vec<String>) {
    notes.push(format!(
        "resuming orphaned job `{job_id}` (tenant `{}`)",
        spec.tenant
    ));
    counter_add!(ServeJobsResumed, 1);
    let tenant = spec.tenant.clone();
    shared.lock_registry().insert(
        job_id.to_string(),
        JobRecord {
            spec,
            phase: JobPhase::Queued,
            attempts: 0,
            cancel: CancelToken::new(),
            resumed: true,
            retry_log: Vec::new(),
            ingest: IngestState::default(),
        },
    );
    // Reopening the journal continues the previous process's sequence
    // numbering, so the resumed `admitted` line extends the stream.
    shared
        .plane
        .open_job(job_id, &shared.job_dir(job_id), &tenant, true);
    shared.queue.reserve_slot(&tenant);
    shared.queue.enqueue(job_id);
}

/// Closes admission, then cancels every running job with the shutdown
/// reason so workers stop at the next checkpoint boundary.
fn start_drain(shared: &Arc<Shared>) {
    shared.queue.close();
    {
        let registry = shared.lock_registry();
        for job in registry.values() {
            if matches!(job.phase, JobPhase::Running | JobPhase::Backoff) {
                job.cancel.cancel_for_shutdown();
            }
        }
    }
    // ORDERING: Relaxed — the queue closed above under its lock; consumers
    // of the flag re-poll, so no release edge is required.
    shared.draining.store(true, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Worker pool.

/// Spawns the pool, respawns dead workers, and joins them all at drain.
fn supervise_workers(shared: &Arc<Shared>) {
    let mut handles: Vec<thread::JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|_| spawn_worker(shared))
        .collect();
    loop {
        thread::sleep(WATCHDOG_WAIT);
        if shared.draining() {
            break;
        }
        for handle in &mut handles {
            if handle.is_finished() {
                // A worker thread only exits early if a panic escaped the
                // per-job isolation (e.g. an armed `serve::worker` fail
                // point). The job itself was failed by its lease; the pool
                // must get its thread back.
                let dead = std::mem::replace(handle, spawn_worker(shared));
                let _ = dead.join();
                counter_add!(ServeWorkerRespawned, 1);
            }
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    thread::spawn(move || worker_loop(&shared))
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop(POP_WAIT) {
            Some(job_id) => {
                if shared.draining() {
                    // Popped after the drain began: never *start* work while
                    // draining. The job is already durable (dataset +
                    // manifest, no completion marker), so the next start's
                    // orphan scan re-queues it — drain loses no accepted job.
                    if let Some(job) = shared.lock_registry().get_mut(&job_id) {
                        job.phase = JobPhase::Drained;
                    }
                    shared.plane.finish(&job_id, &JobEvent::Drained);
                    continue;
                }
                let lease = JobLease {
                    shared,
                    job_id,
                    settled: false,
                };
                // An armed `serve::worker` fail point panics *outside* the
                // per-job catch below: the worker thread dies (exercising
                // the supervisor's respawn path) and the lease's Drop marks
                // the job failed on the way out.
                fail_point!("serve::worker");
                lease.run();
            }
            None => {
                if shared.draining() {
                    break;
                }
            }
        }
        flush_thread!();
    }
    flush_thread!();
}

/// Pins one popped job to one worker. If the worker dies without settling
/// the job (a panic that escaped `catch_unwind`), `Drop` marks the job
/// failed so no client ever waits on a job nobody owns.
struct JobLease<'a> {
    shared: &'a Arc<Shared>,
    job_id: String,
    settled: bool,
}

impl Drop for JobLease<'_> {
    fn drop(&mut self) {
        if !self.settled {
            counter_add!(ServeJobsFailed, 1);
            // This Drop runs while the worker thread unwinds from a panic
            // that escaped per-job isolation: dump the thread's flight ring
            // next to the job it was holding, then settle the job.
            let reason = "worker lost while running this job";
            self.shared.plane.emit(
                &self.job_id,
                &JobEvent::Panicked {
                    error: reason.to_string(),
                },
            );
            self.shared
                .plane
                .dump_flight(&self.shared.job_dir(&self.job_id), reason);
            self.shared.finish(
                &self.job_id,
                DoneRecord {
                    ok: false,
                    termination: "failed".to_string(),
                    attempts: 0,
                    body: reason.to_string(),
                },
                true,
            );
            self.shared.plane.finish(
                &self.job_id,
                &JobEvent::Done {
                    ok: false,
                    state: "failed".to_string(),
                    termination: "failed".to_string(),
                },
            );
        }
    }
}

impl JobLease<'_> {
    /// Runs the job to a terminal state (or drain), retrying transient
    /// failures with jittered exponential backoff.
    fn run(mut self) {
        loop {
            let Some((spec, cancel, attempt)) = ({
                let mut registry = self.shared.lock_registry();
                registry.get_mut(&self.job_id).map(|job| {
                    job.phase = JobPhase::Running;
                    job.attempts += 1;
                    (job.spec.clone(), job.cancel.clone(), job.attempts)
                })
            }) else {
                // Unknown id (stale queue entry); nothing to do.
                self.settled = true;
                return;
            };
            job_span!(&self.job_id, tenant & spec.tenant);
            self.shared
                .plane
                .emit(&self.job_id, &JobEvent::Started { attempt });
            let dir = self.shared.job_dir(&self.job_id);
            let outcome = {
                // Scope the snapshot tap to this job for the execution:
                // every governor level sample the runner records streams
                // out as a `level` event on the job's channel.
                let _scope = self.shared.plane.job_scope(&self.job_id);
                catch_unwind(AssertUnwindSafe(|| {
                    runner::execute(&spec, &dir, cancel, attempt)
                }))
            };
            match outcome {
                Err(panic) => {
                    // Isolated: the job fails, the worker survives.
                    let msg = panic_message(&panic);
                    counter_add!(ServeJobsFailed, 1);
                    self.shared
                        .plane
                        .emit(&self.job_id, &JobEvent::Panicked { error: msg.clone() });
                    self.shared
                        .plane
                        .dump_flight(&dir, &format!("worker panicked: {msg}"));
                    self.shared.finish(
                        &self.job_id,
                        DoneRecord {
                            ok: false,
                            termination: "failed".to_string(),
                            attempts: attempt,
                            body: format!("worker panicked: {msg}"),
                        },
                        true,
                    );
                    self.finish_event(false, "failed");
                    self.settled = true;
                    return;
                }
                Ok(JobRunOutcome::Done(record)) => {
                    counter_add!(ServeJobsCompleted, 1);
                    if record.ok && record.termination != "complete" {
                        // A governor trip sealed partial results: surface
                        // the degradation and keep the flight context.
                        self.shared.plane.emit(
                            &self.job_id,
                            &JobEvent::Degraded {
                                termination: record.termination.clone(),
                            },
                        );
                        self.shared
                            .plane
                            .dump_flight(&dir, &format!("degraded: {}", record.termination));
                    }
                    let (ok, termination) = (record.ok, record.termination.clone());
                    // The runner already sealed the marker.
                    self.shared.finish(&self.job_id, record, false);
                    self.finish_event(ok, &termination);
                    // Rows appended while this run was folding are durable
                    // but not in the sealed result — re-queue immediately.
                    requeue_if_rows_pending(&self.shared, &self.job_id);
                    self.settled = true;
                    return;
                }
                Ok(JobRunOutcome::Drained) => {
                    if let Some(job) = self.shared.lock_registry().get_mut(&self.job_id) {
                        job.phase = JobPhase::Drained;
                    }
                    self.shared.plane.finish(&self.job_id, &JobEvent::Drained);
                    self.settled = true;
                    return;
                }
                Ok(JobRunOutcome::Permanent(msg)) => {
                    counter_add!(ServeJobsFailed, 1);
                    self.shared.finish(
                        &self.job_id,
                        DoneRecord {
                            ok: false,
                            termination: "failed".to_string(),
                            attempts: attempt,
                            body: msg,
                        },
                        true,
                    );
                    self.finish_event(false, "failed");
                    self.settled = true;
                    return;
                }
                Ok(JobRunOutcome::Transient(msg)) => {
                    let retries_left = attempt <= self.shared.config.retry_max;
                    if let Some(job) = self.shared.lock_registry().get_mut(&self.job_id) {
                        job.retry_log.push(msg.clone());
                        if retries_left {
                            job.phase = JobPhase::Backoff;
                        }
                    }
                    if !retries_left {
                        counter_add!(ServeJobsFailed, 1);
                        self.shared.finish(
                            &self.job_id,
                            DoneRecord {
                                ok: false,
                                termination: "failed".to_string(),
                                attempts: attempt,
                                body: format!("retries exhausted: {msg}"),
                            },
                            true,
                        );
                        self.finish_event(false, "failed");
                        self.settled = true;
                        return;
                    }
                    counter_add!(ServeJobsRetried, 1);
                    self.shared.plane.emit(
                        &self.job_id,
                        &JobEvent::Retry {
                            attempt,
                            error: msg.clone(),
                        },
                    );
                    self.backoff(attempt);
                    if self.shared.draining() {
                        // Don't start another attempt mid-drain; the job is
                        // durable and the next start will pick it up.
                        if let Some(job) = self.shared.lock_registry().get_mut(&self.job_id) {
                            job.phase = JobPhase::Drained;
                        }
                        self.shared.plane.finish(&self.job_id, &JobEvent::Drained);
                        self.settled = true;
                        return;
                    }
                }
            }
        }
    }

    /// Emits the terminal `done` event and retires the job's channel.
    /// Runs after [`Shared::finish`] so a consumer that sees the `done`
    /// line can immediately fetch the result.
    fn finish_event(&self, ok: bool, termination: &str) {
        self.shared.plane.finish(
            &self.job_id,
            &JobEvent::Done {
                ok,
                state: if ok { "done" } else { "failed" }.to_string(),
                termination: termination.to_string(),
            },
        );
    }

    /// Sleeps out the backoff for `attempt`, in small slices so a drain is
    /// noticed promptly.
    fn backoff(&self, attempt: u32) {
        let config = &self.shared.config;
        let exp = config.retry_base_ms.saturating_mul(1u64 << attempt.min(16)) / 2;
        let jitter =
            splitmix64(seed_of(&self.job_id) ^ u64::from(attempt)) % config.retry_base_ms.max(1);
        let total = Duration::from_millis(exp.saturating_add(jitter).min(config.retry_cap_ms));
        let slice = Duration::from_millis(20);
        let deadline = Instant::now() + total;
        while Instant::now() < deadline && !self.shared.draining() {
            thread::sleep(slice.min(deadline.saturating_duration_since(Instant::now())));
        }
    }
}

/// Renders a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// SplitMix64: deterministic backoff jitter without a rand dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn seed_of(job_id: &str) -> u64 {
    job_id.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

// ---------------------------------------------------------------------------
// HTTP surface.

fn handle_connection(shared: &Arc<Shared>, stream: &mut TcpStream) {
    // Slowloris guard: a client gets five seconds to deliver a request.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    fail_point!("serve::accept");
    let request = match read_request(stream, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(HttpError::Io(_)) => return,
        Err(e) => {
            if matches!(e, HttpError::BodyTooLarge) {
                counter_add!(ServeRequestsShed, 1);
            }
            let (status, reason) = e.status();
            respond_error(stream, status, reason, &format!("{e:?}"));
            return;
        }
    };
    route(shared, stream, &request);
}

fn route(shared: &Arc<Shared>, stream: &mut TcpStream, request: &Request) {
    let path = request.path.trim_end_matches('/');
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let body = format!("ok uptime_ms={}\n", shared.started.elapsed().as_millis());
            respond(stream, 200, "OK", "text/plain", &body, &[]);
        }
        ("GET", "/readyz") => {
            if shared.draining() {
                respond(
                    stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    "draining\n",
                    &[],
                );
            } else {
                respond(stream, 200, "OK", "text/plain", "ready\n", &[]);
            }
        }
        ("POST", "/shutdown") => {
            start_drain(shared);
            respond_json(stream, 202, "Accepted", "{\"status\":\"draining\"}");
        }
        ("GET", "/metrics") => metrics(shared, stream),
        ("POST", "/jobs") => submit(shared, stream, &request.body),
        ("GET", _) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            if let Some(job_id) = rest.strip_suffix("/result") {
                job_result(shared, stream, job_id);
            } else if let Some(job_id) = rest.strip_suffix("/events") {
                job_events(shared, stream, job_id);
            } else if !rest.contains('/') {
                job_status(shared, stream, rest);
            } else {
                respond_error(stream, 404, "Not Found", "no such endpoint");
            }
        }
        ("POST", _) if path.starts_with("/jobs/") && path.ends_with("/cancel") => {
            let job_id = &path["/jobs/".len()..path.len() - "/cancel".len()];
            job_cancel(shared, stream, job_id);
        }
        ("POST", _) if path.starts_with("/jobs/") && path.ends_with("/append") => {
            let job_id = &path["/jobs/".len()..path.len() - "/append".len()];
            job_append(shared, stream, job_id, &request.body);
        }
        _ => respond_error(stream, 404, "Not Found", "no such endpoint"),
    }
}

/// Resolves the job's budget at admission: the tenant's fair share (the
/// per-tenant budget split across its job slots), tightened by anything the
/// request asked for. Persisted into the spec so a crash-recovered resume
/// runs under the identical budget.
fn resolve_budget(config: &ServeConfig, spec: &mut JobSpec) {
    let mut tenant_budget = RunBudget::unbounded();
    if let Some(ms) = config.tenant_deadline_ms {
        tenant_budget = tenant_budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(max) = config.tenant_max_itemsets {
        tenant_budget = tenant_budget.with_max_itemsets(max);
    }
    let share = tenant_budget.split_among(config.tenant_max_jobs as u64);
    let share_deadline_ms = share.deadline.map(|d| d.as_millis() as u64);
    spec.deadline_ms = match (spec.deadline_ms, share_deadline_ms) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    spec.max_itemsets = match (spec.max_itemsets, share.max_itemsets) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
}

fn submit(shared: &Arc<Shared>, stream: &mut TcpStream, body: &[u8]) {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            respond_error(stream, 400, "Bad Request", "body is not UTF-8");
            return;
        }
    };
    let object = match crate::json::parse_object(text) {
        Ok(object) => object,
        Err(e) => {
            respond_error(stream, 400, "Bad Request", &format!("invalid JSON: {e}"));
            return;
        }
    };
    let (mut spec, csv) = match parse_submission(&object) {
        Ok(v) => v,
        Err(e) => {
            respond_error(stream, 400, "Bad Request", &e);
            return;
        }
    };
    resolve_budget(&shared.config, &mut spec);
    if let Err(shed) = shared.queue.admit(&spec.tenant) {
        counter_add!(ServeRequestsShed, 1);
        let retry_after = ("Retry-After", shared.config.retry_after_secs.to_string());
        let (status, reason) = match shed {
            Shed::Draining => (503, "Service Unavailable"),
            _ => (429, "Too Many Requests"),
        };
        let body = format!("{{\"error\":\"{}\"}}", escape(&shed.describe()));
        respond(
            stream,
            status,
            reason,
            "application/json",
            &body,
            &[retry_after],
        );
        return;
    }
    // The tenant slot is held; everything below must release it on failure.
    // ORDERING: Relaxed — the id must be unique, not sequenced with other
    // memory; fetch_add alone guarantees uniqueness.
    let id_num = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let job_id = format!("j-{id_num:010}");
    let dir = shared.job_dir(&job_id);
    if let Err(e) = persist_admission(&dir, &spec, &csv) {
        shared.queue.release(&spec.tenant);
        let _ = std::fs::remove_dir_all(&dir);
        respond_error(
            stream,
            500,
            "Internal Server Error",
            &format!("cannot persist job: {e}"),
        );
        return;
    }
    shared.lock_registry().insert(
        job_id.clone(),
        JobRecord {
            spec: spec.clone(),
            phase: JobPhase::Queued,
            attempts: 0,
            cancel: CancelToken::new(),
            resumed: false,
            retry_log: Vec::new(),
            ingest: IngestState::default(),
        },
    );
    shared
        .plane
        .open_job(&job_id, &dir, &spec.tenant, /* resumed */ false);
    shared.queue.enqueue(&job_id);
    counter_add!(ServeJobsSubmitted, 1);
    gauge_max!(ServeQueueDepth, shared.queue.depth() as u64);
    let body = format!("{{\"job_id\":\"{job_id}\",\"status\":\"queued\"}}");
    respond_json(stream, 202, "Accepted", &body);
}

/// Writes the dataset and seals the manifest. The manifest is last: its
/// presence commits the admission.
fn persist_admission(dir: &std::path::Path, spec: &JobSpec, csv: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let data_path = dir.join(DATA_FILE);
    std::fs::write(&data_path, csv).map_err(|e| e.to_string())?;
    let file = std::fs::File::open(&data_path).map_err(|e| e.to_string())?;
    file.sync_all().map_err(|e| e.to_string())?;
    write_sealed(&dir.join(MANIFEST_FILE), &spec.encode()).map_err(|e| e.to_string())
}

fn job_status(shared: &Arc<Shared>, stream: &mut TcpStream, job_id: &str) {
    let Some((phase, attempts, resumed, tenant, retry_log, phase_record, ingest)) = ({
        let registry = shared.lock_registry();
        registry.get(job_id).map(|job| {
            (
                job.phase.as_str(),
                job.attempts,
                job.resumed,
                job.spec.tenant.clone(),
                job.retry_log.clone(),
                match &job.phase {
                    JobPhase::Finished(record) => Some(record.clone()),
                    _ => None,
                },
                job.ingest,
            )
        })
    }) else {
        respond_error(stream, 404, "Not Found", "unknown job");
        return;
    };
    // Progress that survives crashes: every sealed checkpoint is one mining
    // level the governor sampled (`hdx.governor` snapshots land in the run
    // telemetry; the sequence numbers are their durable shadow).
    let checkpoints = CheckpointStore::open(shared.job_dir(job_id))
        .and_then(|store| store.sequences())
        .unwrap_or_default();
    let mut body = format!(
        "{{\"job_id\":\"{job_id}\",\"tenant\":\"{}\",\"state\":\"{phase}\",\
         \"attempts\":{attempts},\"resumed\":{resumed},\
         \"checkpointed_levels\":{},\"latest_checkpoint_seq\":{}",
        escape(&tenant),
        checkpoints.len(),
        checkpoints
            .last()
            .map_or("null".to_string(), u64::to_string),
    );
    // The latest governor snapshot (live channel first, journal fallback):
    // mining level reached, itemsets emitted so far, and what remains of
    // the deadline budget. Absent until the first level completes or when
    // the build has observability compiled out.
    if let Some(sample) = shared.plane.latest(job_id, &shared.job_dir(job_id)) {
        body.push_str(&format!(
            ",\"progress\":{{\"level\":{},\"itemsets\":{},\"elapsed_ns\":{},\
             \"deadline_remaining_ns\":{}}}",
            sample.level,
            sample.itemsets,
            sample.elapsed_ns,
            sample
                .deadline_remaining_ns
                .map_or("null".to_string(), |d| d.to_string()),
        ));
    }
    if !retry_log.is_empty() {
        let entries: Vec<String> = retry_log
            .iter()
            .map(|m| format!("\"{}\"", escape(m)))
            .collect();
        body.push_str(&format!(",\"retries\":[{}]", entries.join(",")));
    }
    if let Some(record) = phase_record {
        body.push_str(&format!(
            ",\"termination\":\"{}\",\"ok\":{}",
            escape(&record.termination),
            record.ok
        ));
    }
    // The streaming-ingest ledger: how many rows are durable in the WAL,
    // how many the sealed result covers, and the data-quality quarantine
    // totals (frames dropped during recovery instead of failing the job).
    if ingest.durable_rows > 0 || ingest.quarantined_frames > 0 {
        body.push_str(&format!(
            ",\"ingest\":{{\"durable_rows\":{},\"folded_rows\":{},\
             \"pending_rows\":{},\"quarantined_frames\":{},\
             \"quarantined_bytes\":{}}}",
            ingest.durable_rows,
            ingest.folded_rows,
            ingest.pending_rows(),
            ingest.quarantined_frames,
            ingest.quarantined_bytes,
        ));
    }
    body.push('}');
    respond_json(stream, 200, "OK", &body);
}

fn job_result(shared: &Arc<Shared>, stream: &mut TcpStream, job_id: &str) {
    let record = {
        let registry = shared.lock_registry();
        match registry.get(job_id) {
            None => {
                respond_error(stream, 404, "Not Found", "unknown job");
                return;
            }
            Some(job) => match &job.phase {
                JobPhase::Finished(record) => record.clone(),
                _ => {
                    respond_error(stream, 409, "Conflict", "job is not finished");
                    return;
                }
            },
        }
    };
    if record.ok {
        // The ranked-results JSON exactly as the runner sealed it — the
        // byte-identity surface for crash-recovery checks.
        respond_json(stream, 200, "OK", &record.body);
    } else {
        let body = format!(
            "{{\"error\":\"{}\",\"termination\":\"{}\"}}",
            escape(&record.body),
            escape(&record.termination)
        );
        respond_json(stream, 409, "Conflict", &body);
    }
}

/// `POST /jobs/<id>/append`: lands raw CSV rows (no header) in the job's
/// durable WAL and re-queues the job for an incremental re-mine.
///
/// The `202` ack is sent only after the WAL commit (fsync), so an
/// acknowledged row survives `kill -9`. Rows beyond the configured unfolded
/// backlog shed with `429 Retry-After` plus a jittered `retry_after_ms`
/// hint (clients should retry with jittered exponential backoff). The whole
/// batch is atomic from the client's view: it is validated, then appended
/// and committed as one unit, or rejected as one unit.
fn job_append(shared: &Arc<Shared>, stream: &mut TcpStream, job_id: &str, body: &[u8]) {
    if shared.draining() {
        respond_error(stream, 503, "Service Unavailable", "draining");
        return;
    }
    #[cfg(feature = "hdx-fail")]
    if let Some(msg) = hdx_governor::failpoint::hit("serve::ingest::append") {
        respond_error(
            stream,
            503,
            "Service Unavailable",
            &format!("injected append failure: {msg}"),
        );
        return;
    }
    let Ok(text) = std::str::from_utf8(body) else {
        respond_error(stream, 400, "Bad Request", "body is not UTF-8");
        return;
    };
    let rows: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if rows.is_empty() {
        respond_error(stream, 400, "Bad Request", "no rows in body");
        return;
    }
    // Snapshot the job under the registry lock; hold nothing across I/O.
    let Some((separator, ingest)) = ({
        let registry = shared.lock_registry();
        registry
            .get(job_id)
            .map(|job| (job.spec.separator as char, job.ingest))
    }) else {
        respond_error(stream, 404, "Not Found", "unknown job");
        return;
    };
    // Schema check against the admitted dataset's header: every appended
    // row must carry exactly the admitted column count. Rejecting the batch
    // here keeps the WAL free of rows the loader would quarantine later.
    let dir = shared.job_dir(job_id);
    let fields = match expected_fields(&dir, separator) {
        Ok(n) => n,
        Err(e) => {
            respond_error(stream, 500, "Internal Server Error", &e);
            return;
        }
    };
    for (i, row) in rows.iter().enumerate() {
        let got = row.split(separator).count();
        if got != fields {
            respond_error(
                stream,
                400,
                "Bad Request",
                &format!("row {i} has {got} field(s), dataset has {fields}"),
            );
            return;
        }
    }
    // Backpressure: durable-but-unfolded rows are bounded. 429 is the
    // degrade-not-die answer — the WAL never grows past what re-mining can
    // absorb, and the client gets explicit, jittered retry guidance.
    let pending = ingest.pending_rows() + rows.len() as u64;
    if pending > shared.config.append_backlog_max_rows {
        counter_add!(ServeIngestShed, 1);
        let base_ms = shared.config.retry_after_secs.saturating_mul(1000).max(1);
        let jitter = splitmix64(seed_of(job_id) ^ pending) % base_ms;
        let body = format!(
            "{{\"error\":\"append backlog full ({} unfolded rows)\",\
             \"retry_after_ms\":{},\"retry\":\"jittered exponential backoff\"}}",
            ingest.pending_rows(),
            base_ms + jitter,
        );
        respond(
            stream,
            429,
            "Too Many Requests",
            "application/json",
            &body,
            &[("Retry-After", shared.config.retry_after_secs.to_string())],
        );
        return;
    }
    // Serialize WAL access per job: healing-open + append + commit must not
    // interleave across handler threads.
    let lock = {
        let mut locks = shared
            .append_locks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(locks.entry(job_id.to_string()).or_default())
    };
    let guard = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let appended = append_to_wal(&dir, &rows);
    drop(guard);
    let (durable_rows, report) = match appended {
        Ok(v) => v,
        Err(e) => {
            respond_error(
                stream,
                500,
                "Internal Server Error",
                &format!("append failed: {e}"),
            );
            return;
        }
    };
    counter_add!(ServeIngestAppends, rows.len() as u64);
    // Update the in-memory shadow and decide whether to re-queue: only a
    // terminal job needs a fresh slot; queued/running jobs will observe the
    // new rows at their next (or post-finish) WAL comparison.
    let (requeue, tenant, quarantined) = {
        let mut registry = shared.lock_registry();
        let Some(job) = registry.get_mut(job_id) else {
            respond_error(stream, 404, "Not Found", "job vanished");
            return;
        };
        job.ingest.durable_rows = durable_rows;
        job.ingest.quarantined_frames += report.quarantined_frames;
        job.ingest.quarantined_bytes += report.quarantined_bytes;
        let requeue = matches!(job.phase, JobPhase::Finished(_));
        if requeue {
            job.phase = JobPhase::Queued;
            job.cancel = CancelToken::new();
        }
        (
            requeue,
            job.spec.tenant.clone(),
            (job.ingest.quarantined_frames, job.ingest.quarantined_bytes),
        )
    };
    if requeue {
        // The finished job's event channel was retired; reopen it so the
        // re-mine's events extend the same journal.
        shared.plane.open_job(job_id, &dir, &tenant, true);
    }
    shared.plane.emit(
        job_id,
        &JobEvent::IngestAppended {
            rows: rows.len() as u64,
            durable_rows,
        },
    );
    if !report.is_clean() {
        shared.plane.emit(
            job_id,
            &JobEvent::IngestQuarantined {
                frames: quarantined.0,
                bytes: quarantined.1,
            },
        );
    }
    if requeue {
        shared.queue.reserve_slot(&tenant);
        shared.queue.enqueue(job_id);
    }
    let body = format!(
        "{{\"job_id\":\"{job_id}\",\"appended\":{},\"durable_rows\":{durable_rows},\
         \"requeued\":{requeue}}}",
        rows.len()
    );
    respond_json(stream, 202, "Accepted", &body);
}

/// Column count of the admitted dataset (from its header line).
fn expected_fields(dir: &std::path::Path, separator: char) -> Result<usize, String> {
    let data = std::fs::File::open(dir.join(DATA_FILE))
        .map_err(|e| format!("cannot open dataset: {e}"))?;
    let mut header = String::new();
    std::io::BufRead::read_line(&mut std::io::BufReader::new(data), &mut header)
        .map_err(|e| format!("cannot read dataset header: {e}"))?;
    Ok(header.trim_end().split(separator).count())
}

/// Opens (healing), appends, and commits one batch into a job's WAL.
/// Returns the durable row total and the recovery report of the open.
fn append_to_wal(
    dir: &std::path::Path,
    rows: &[&str],
) -> Result<(u64, hdx_ingest::IngestReport), hdx_ingest::IngestError> {
    let (mut wal, report) =
        hdx_ingest::Wal::open(dir.join(crate::WAL_DIR), hdx_ingest::WalConfig::default())?;
    for row in rows {
        wal.append_row(row.as_bytes())?;
    }
    let durable = wal.commit()?;
    Ok((durable, report))
}

/// After a job finishes, compare the WAL's durable extent against the
/// freshly sealed cursor: rows that arrived *during* the run re-queue the
/// job immediately, so clients never wait on an append that landed in the
/// window between fold and seal.
fn requeue_if_rows_pending(shared: &Arc<Shared>, job_id: &str) {
    let cursor_path = shared.job_dir(job_id).join(hdx_ingest::CURSOR_FILE);
    let cursor = hdx_ingest::IngestCursor::load(&cursor_path)
        .ok()
        .flatten()
        .unwrap_or_default();
    let (requeue, tenant) = {
        let mut registry = shared.lock_registry();
        let Some(job) = registry.get_mut(job_id) else {
            return;
        };
        job.ingest.folded_rows = cursor.rows_folded.max(job.ingest.folded_rows);
        let requeue =
            job.ingest.pending_rows() > 0 && matches!(job.phase, JobPhase::Finished(_));
        if requeue {
            job.phase = JobPhase::Queued;
            job.cancel = CancelToken::new();
        }
        (requeue, job.spec.tenant.clone())
    };
    if requeue {
        shared
            .plane
            .open_job(job_id, &shared.job_dir(job_id), &tenant, true);
        shared.queue.reserve_slot(&tenant);
        shared.queue.enqueue(job_id);
    }
}

fn job_cancel(shared: &Arc<Shared>, stream: &mut TcpStream, job_id: &str) {
    let registry = shared.lock_registry();
    match registry.get(job_id) {
        None => respond_error(stream, 404, "Not Found", "unknown job"),
        Some(job) => {
            job.cancel.cancel();
            respond_json(stream, 202, "Accepted", "{\"status\":\"cancelling\"}");
        }
    }
}

/// `GET /metrics`: one Prometheus text-format 0.0.4 scrape page.
///
/// Each scrape drains the thread-local/retired obs sinks into the server's
/// process-lifetime accumulator (so counters are cumulative, the way
/// Prometheus models them), renders the full typed registry, and appends
/// instantaneous serve-level gauges the registry's high-water gauges can't
/// express: live queue depth, per-tenant in-flight jobs, worker-pool
/// utilization, and the scheduler steal/park rates derived from the PR 8
/// work-stealing counters. With `obs` compiled out the registry collects
/// as all-zero, which is still a valid exposition — the endpoint never
/// disappears, it just flatlines.
fn metrics(shared: &Arc<Shared>, stream: &mut TcpStream) {
    gauge_max!(ServeUptimeMs, shared.started.elapsed().as_millis() as u64);
    gauge_max!(ServeQueueDepth, shared.queue.depth() as u64);
    let scraped = {
        let collected = hdx_obs::collect();
        let mut telemetry = shared
            .telemetry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        telemetry.merge_from(&collected);
        // Spans and snapshots have no exposition mapping; dropping them
        // after each merge keeps the accumulator bounded by the registry
        // size no matter how many jobs the process has run.
        telemetry.spans.clear();
        telemetry.snapshots.clear();
        telemetry.clone()
    };
    let mut page = hdx_obs::expo::Exposition::new();
    hdx_obs::expo::render_registry(&mut page, &scraped);
    page.gauge(
        "hdx_serve_live_queue_depth",
        "Jobs currently waiting in the admission queue.",
        shared.queue.depth() as f64,
    );
    let tenants: Vec<(String, f64)> = shared
        .queue
        .tenants()
        .into_iter()
        .map(|(tenant, n)| (tenant, n as f64))
        .collect();
    page.labeled_gauge(
        "hdx_serve_live_tenant_inflight",
        "In-flight (queued + running) jobs per tenant.",
        "tenant",
        &tenants,
    );
    let busy = shared
        .lock_registry()
        .values()
        .filter(|job| matches!(job.phase, JobPhase::Running | JobPhase::Backoff))
        .count();
    let pool = shared.config.workers.max(1);
    page.gauge(
        "hdx_serve_live_workers_busy",
        "Worker threads currently executing or backing off a job.",
        busy as f64,
    );
    page.gauge(
        "hdx_serve_live_worker_utilization",
        "Busy workers as a fraction of the pool size.",
        busy as f64 / pool as f64,
    );
    let rates = scraped.sched_rates();
    page.gauge(
        "hdx_mining_sched_steals_per_1k_itemsets",
        "Work-stealing scheduler steals per thousand emitted itemsets.",
        rates.steals_per_1k_itemsets,
    );
    page.gauge(
        "hdx_mining_sched_parks_per_1k_itemsets",
        "Work-stealing scheduler parks per thousand emitted itemsets.",
        rates.parks_per_1k_itemsets,
    );
    let body = page.finish();
    debug_assert!(
        hdx_obs::expo::check_grammar(&body).is_ok(),
        "{:?}",
        hdx_obs::expo::check_grammar(&body)
    );
    respond(
        stream,
        200,
        "OK",
        hdx_obs::expo::EXPOSITION_CONTENT_TYPE,
        &body,
        &[],
    );
}

/// `GET /jobs/<id>/events`: the job's NDJSON event stream.
///
/// Live jobs get a chunked response — the durable journal as catch-up,
/// then new lines as they happen until the job reaches a terminal state.
/// Terminal jobs replay their journal verbatim (the byte-identity
/// surface). The handler writes with the connection's 5s write timeout, so
/// a consumer that stops reading costs this handler thread, never a miner:
/// the producer side only ever pushes into the bounded drop-oldest ring.
fn job_events(shared: &Arc<Shared>, stream: &mut TcpStream, job_id: &str) {
    if !shared.lock_registry().contains_key(job_id) {
        respond_error(stream, 404, "Not Found", "unknown job");
        return;
    }
    match shared.plane.subscribe(job_id, &shared.job_dir(job_id)) {
        #[cfg(feature = "obs")]
        EventsSource::Live {
            catchup,
            channel,
            cursor,
        } => stream_live(shared, stream, &catchup, &channel, cursor),
        EventsSource::Replay(bytes) => {
            respond(stream, 200, "OK", "application/x-ndjson", &bytes, &[]);
        }
        EventsSource::Unavailable(reason) => {
            respond_error(stream, 404, "Not Found", reason);
        }
    }
}

/// Follows a live job's ring after sending the journal catch-up, chunk by
/// chunk, until the stream closes (terminal event), the consumer goes away
/// (write error — including the 5s write timeout for stalled readers), or
/// a drain ends the show.
#[cfg(feature = "obs")]
fn stream_live(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    catchup: &str,
    channel: &crate::live::JobChannel,
    mut cursor: u64,
) {
    use crate::ring::RingUpdate;
    let Ok(mut response) =
        crate::http::ChunkedResponse::begin(stream, 200, "OK", "application/x-ndjson")
    else {
        return;
    };
    if response.chunk(catchup.as_bytes()).is_err() {
        return;
    }
    loop {
        match channel.wait_next(cursor, Duration::from_millis(250)) {
            RingUpdate::Lines(lines) => {
                for (seq, line) in lines {
                    if response.chunk(line.as_bytes()).is_err() {
                        return;
                    }
                    cursor = seq + 1;
                }
            }
            RingUpdate::TimedOut => {
                if shared.draining() {
                    break;
                }
            }
            RingUpdate::Closed => break,
        }
    }
    let _ = response.finish();
}
