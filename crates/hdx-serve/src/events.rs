//! The per-job event vocabulary and its NDJSON wire encoding.
//!
//! Every job emits a totally ordered stream of lifecycle events plus one
//! `level` event per governor snapshot. Each event encodes as exactly one
//! flat JSON object on one line, stamped with a monotonic sequence number:
//!
//! ```text
//! {"seq":0,"event":"admitted","tenant":"acme","resumed":false}
//! {"seq":1,"event":"started","attempt":1}
//! {"seq":2,"event":"level","level":1,"elapsed_ns":90211,...}
//! {"seq":3,"event":"done","ok":true,"state":"done","termination":"complete"}
//! ```
//!
//! The encoding is deterministic (fixed key order, integer-rendered
//! numbers), which is what makes "replays byte-identically" a meaningful
//! contract: the journal file *is* the stream, and serving it verbatim is
//! correct. Like hdx-obs's artifact types, this module is always compiled —
//! only the *recording* of events is gated behind `obs` (see
//! [`crate::live`]).

use crate::json::{self, JsonValue};
use hdx_obs::SnapshotSample;

/// One job lifecycle or progress event. Fields carry the exact strings the
/// status API uses, so the stream and `GET /jobs/<id>` never disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job was admitted (or re-admitted by the recovery scan).
    Admitted {
        /// Submitting tenant.
        tenant: String,
        /// True when re-queued by the startup orphan scan.
        resumed: bool,
    },
    /// A worker started (or restarted) executing the job.
    Started {
        /// 1-based execution attempt.
        attempt: u32,
    },
    /// A per-level governor snapshot (one mining level completed).
    Level {
        /// The sampled budget consumption.
        sample: SnapshotSample,
    },
    /// A transient failure; the job re-enters the queue with backoff.
    Retry {
        /// The attempt that failed.
        attempt: u32,
        /// Human-readable failure description.
        error: String,
    },
    /// The run degraded (governor trip): partial results were sealed.
    Degraded {
        /// Governor termination label (e.g. `deadline_exceeded`).
        termination: String,
    },
    /// A panic escaped the runner; the job is quarantined.
    Panicked {
        /// Captured panic payload.
        error: String,
    },
    /// Rows were appended to the job's ingest WAL (durable: acknowledged
    /// only after the WAL fsync).
    IngestAppended {
        /// Rows in this append batch.
        rows: u64,
        /// Total durable WAL rows after the batch.
        durable_rows: u64,
    },
    /// WAL recovery quarantined torn or corrupt data instead of dying.
    IngestQuarantined {
        /// Frames dropped (cumulative for the job).
        frames: u64,
        /// Bytes moved aside (cumulative for the job).
        bytes: u64,
    },
    /// The service drained before a worker picked the job up.
    Drained,
    /// Terminal state reached; no further events will ever be emitted.
    Done {
        /// Whether results were sealed (partial counts as `true`).
        ok: bool,
        /// Terminal state string (`done` / `failed`).
        state: String,
        /// Governor termination label for the final run.
        termination: String,
    },
}

/// Encodes one event as its NDJSON line (trailing `\n` included).
pub fn encode_line(seq: u64, event: &JobEvent) -> String {
    match event {
        JobEvent::Admitted { tenant, resumed } => format!(
            "{{\"seq\":{seq},\"event\":\"admitted\",\"tenant\":\"{}\",\"resumed\":{resumed}}}\n",
            json::escape(tenant)
        ),
        JobEvent::Started { attempt } => {
            format!("{{\"seq\":{seq},\"event\":\"started\",\"attempt\":{attempt}}}\n")
        }
        JobEvent::Level { sample } => {
            let deadline = sample
                .deadline_remaining_ns
                .map_or("null".to_string(), |d| d.to_string());
            format!(
                "{{\"seq\":{seq},\"event\":\"level\",\"level\":{},\"elapsed_ns\":{},\
                 \"deadline_remaining_ns\":{deadline},\"itemsets\":{},\"candidate_bytes\":{},\
                 \"tree_nodes\":{}}}\n",
                sample.level,
                sample.elapsed_ns,
                sample.itemsets,
                sample.candidate_bytes,
                sample.tree_nodes
            )
        }
        JobEvent::Retry { attempt, error } => format!(
            "{{\"seq\":{seq},\"event\":\"retry\",\"attempt\":{attempt},\"error\":\"{}\"}}\n",
            json::escape(error)
        ),
        JobEvent::Degraded { termination } => format!(
            "{{\"seq\":{seq},\"event\":\"degraded\",\"termination\":\"{}\"}}\n",
            json::escape(termination)
        ),
        JobEvent::Panicked { error } => format!(
            "{{\"seq\":{seq},\"event\":\"panicked\",\"error\":\"{}\"}}\n",
            json::escape(error)
        ),
        JobEvent::IngestAppended { rows, durable_rows } => format!(
            "{{\"seq\":{seq},\"event\":\"ingest.appended\",\"rows\":{rows},\
             \"durable_rows\":{durable_rows}}}\n"
        ),
        JobEvent::IngestQuarantined { frames, bytes } => format!(
            "{{\"seq\":{seq},\"event\":\"ingest.quarantined\",\"frames\":{frames},\
             \"bytes\":{bytes}}}\n"
        ),
        JobEvent::Drained => format!("{{\"seq\":{seq},\"event\":\"drained\"}}\n"),
        JobEvent::Done {
            ok,
            state,
            termination,
        } => format!(
            "{{\"seq\":{seq},\"event\":\"done\",\"ok\":{ok},\"state\":\"{}\",\
             \"termination\":\"{}\"}}\n",
            json::escape(state),
            json::escape(termination)
        ),
    }
}

/// The last `level` sample in an NDJSON stream, decoded — how the status
/// endpoint recovers a completed job's final progress from its journal.
/// Lines that fail to parse are skipped (a journal is trusted but this
/// reader is not the place to crash a status request).
pub fn last_level_sample(ndjson: &str) -> Option<SnapshotSample> {
    ndjson.lines().rev().find_map(|line| {
        let map = json::parse_object(line).ok()?;
        if map.get("event")?.as_str()? != "level" {
            return None;
        }
        let num = |key: &str| map.get(key).and_then(JsonValue::as_num).map(|n| n as u64);
        Some(SnapshotSample {
            level: num("level")?,
            elapsed_ns: num("elapsed_ns")?,
            deadline_remaining_ns: match map.get("deadline_remaining_ns") {
                None | Some(JsonValue::Null) => None,
                Some(v) => Some(v.as_num()? as u64),
            },
            itemsets: num("itemsets")?,
            candidate_bytes: num("candidate_bytes")?,
            tree_nodes: num("tree_nodes")?,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(level: u64) -> SnapshotSample {
        SnapshotSample {
            level,
            elapsed_ns: 1000 * level,
            deadline_remaining_ns: (level > 1).then_some(5_000),
            itemsets: 10 * level,
            candidate_bytes: 64,
            tree_nodes: 0,
        }
    }

    #[test]
    fn every_event_encodes_to_one_parseable_line() {
        let events = [
            JobEvent::Admitted {
                tenant: "acme \"inc\"".into(),
                resumed: true,
            },
            JobEvent::Started { attempt: 2 },
            JobEvent::Level { sample: sample(1) },
            JobEvent::Retry {
                attempt: 1,
                error: "worker lost\nmid-run".into(),
            },
            JobEvent::Degraded {
                termination: "deadline_exceeded".into(),
            },
            JobEvent::Panicked {
                error: "boom".into(),
            },
            JobEvent::IngestAppended {
                rows: 3,
                durable_rows: 12,
            },
            JobEvent::IngestQuarantined { frames: 1, bytes: 6 },
            JobEvent::Drained,
            JobEvent::Done {
                ok: true,
                state: "done".into(),
                termination: "complete".into(),
            },
        ];
        for (seq, event) in events.iter().enumerate() {
            let line = encode_line(seq as u64, event);
            assert!(line.ends_with('\n'), "{line:?}");
            assert_eq!(line.matches('\n').count(), 1, "one line per event");
            let map = json::parse_object(&line).expect("flat JSON");
            assert_eq!(
                map["seq"].as_num().map(|n| n as u64),
                Some(seq as u64),
                "{line:?}"
            );
            assert!(map.contains_key("event"));
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let e = JobEvent::Level { sample: sample(3) };
        assert_eq!(encode_line(7, &e), encode_line(7, &e));
        assert_eq!(
            encode_line(0, &JobEvent::Drained),
            "{\"seq\":0,\"event\":\"drained\"}\n"
        );
    }

    #[test]
    fn last_level_sample_finds_the_newest_level_line() {
        let mut ndjson = String::new();
        ndjson.push_str(&encode_line(
            0,
            &JobEvent::Admitted {
                tenant: "t".into(),
                resumed: false,
            },
        ));
        ndjson.push_str(&encode_line(1, &JobEvent::Level { sample: sample(1) }));
        ndjson.push_str(&encode_line(2, &JobEvent::Level { sample: sample(2) }));
        ndjson.push_str(&encode_line(
            3,
            &JobEvent::Done {
                ok: true,
                state: "done".into(),
                termination: "complete".into(),
            },
        ));
        let last = last_level_sample(&ndjson).expect("has level lines");
        assert_eq!(last, sample(2));
        assert_eq!(last.deadline_remaining_ns, Some(5_000));
        assert!(last_level_sample("{\"seq\":0,\"event\":\"drained\"}\n").is_none());
        assert!(last_level_sample("not json\n").is_none());
    }
}
