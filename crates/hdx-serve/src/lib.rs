//! # hdx-serve — a fault-tolerant multi-tenant mining service
//!
//! Runs H-DivExplorer explorations as supervised background jobs behind a
//! small HTTP/1.1 + JSON API. The crate is dependency-light by design
//! (std's `TcpListener` and a hand-rolled request codec), consistent with
//! the workspace's offline/vendored-deps policy, and treats robustness as
//! architecture rather than error handling sprinkled on top:
//!
//! * **Admission control** — a bounded job queue with per-tenant in-flight
//!   caps and per-tenant governor budgets derived at admission
//!   ([`hdx_governor::RunBudget::split_among`]). Overload sheds with
//!   `429 Retry-After`; request bodies and heads are byte-capped.
//! * **Supervision** — every job runs under `catch_unwind`; a panic fails
//!   the job, not the process. Workers that die are respawned by a
//!   watchdog. Transient failures retry with jittered exponential backoff
//!   under a retry budget; permanent failures are recorded, not retried.
//! * **Crash recovery** — a job is acknowledged only after its dataset and
//!   sealed manifest are durable. Every run checkpoints through
//!   `hdx-checkpoint`; on startup the service scans its state directory
//!   ([`hdx_checkpoint::list_manifests`]) and resumes orphans to the
//!   byte-identical result an uninterrupted run would have produced.
//! * **Graceful degradation** — `POST /shutdown` stops admission, cancels
//!   running jobs with the *shutdown* reason (distinguishable from user
//!   cancels), drains each to a checkpoint boundary, and flushes
//!   telemetry. `kill -9` at any point is recoverable by construction.
//!
//! ## Endpoints
//!
//! | Method & path            | Purpose                                   |
//! |--------------------------|-------------------------------------------|
//! | `POST /jobs`             | Submit a job (flat JSON; returns job id)  |
//! | `POST /jobs/<id>/append` | Append CSV rows to the job's durable WAL  |
//! | `GET /jobs/<id>`         | Status + progress + ingest/quarantine     |
//! | `GET /jobs/<id>/result`  | Ranked-results JSON (byte-stable)         |
//! | `GET /jobs/<id>/events`  | NDJSON event stream (live or replay)      |
//! | `POST /jobs/<id>/cancel` | Cooperative cancel (user reason)          |
//! | `POST /shutdown`         | Begin a graceful drain                    |
//! | `GET /metrics`           | Prometheus text-format 0.0.4 exposition   |
//! | `GET /healthz`           | Liveness                                  |
//! | `GET /readyz`            | Readiness (503 while draining)            |
//!
//! ## Streaming ingestion
//!
//! `POST /jobs/<id>/append` takes raw CSV rows (no header) and lands them
//! in the job's crash-safe row WAL (`hdx_ingest::Wal`, one CRC frame per
//! row, fsync before the `202` ack). Appended rows change the dataset, so
//! the job is re-queued: the re-mine runs the full pipeline over the
//! concatenated base + WAL rows — byte-identical to a cold run on the
//! same data — under the same governor budgets as the original admission.
//! Backlogged appends (durable-but-unfolded rows past the configured cap)
//! shed with `429 Retry-After` plus a jittered `retry_after_ms` hint.
//! Torn or corrupt WAL tails found at recovery are quarantined into the
//! status JSON's `ingest` block instead of failing the job.
//!
//! Under the `obs` feature the service records `hdx.serve.*` counters and
//! gauges and tags per-job work with `tenant`/`job` spans; under
//! `hdx-fail` the `serve::accept`, `serve::queue`, `serve::worker`,
//! `serve::job`, `serve::done`, `serve::ingest::append`, and
//! `serve::ingest::fold` fail points inject faults for chaos tests.

/// The per-job event vocabulary and its deterministic NDJSON encoding.
pub mod events;
/// Minimal HTTP/1.1 request parsing and response writing over `TcpStream`.
pub mod http;
/// Job identity, specs, lifecycle states, and the durable job registry.
pub mod job;
/// The durable per-job event journal (`events.ndjson`, atomic appends).
pub mod journal;
/// A flat JSON parser/escaper for the submission wire format.
pub mod json;
/// The live plane: job channels, the snapshot tap, the flight recorder.
pub mod live;
/// Bounded admission queue with per-tenant caps and shed decisions.
pub mod queue;
/// Bounded broadcast ring with drop-oldest backpressure for event streams.
pub mod ring;
/// The worker-side job runner: mining, checkpointing, and sealing results.
pub mod runner;
/// The TCP accept loop, request routing, supervisor, and drain protocol.
pub mod server;

/// The dataset file persisted at admission inside each job directory.
pub const DATA_FILE: &str = "data.csv";

/// The ingest WAL directory inside each job directory.
pub const WAL_DIR: &str = "wal";

pub use events::JobEvent;
pub use job::{DoneRecord, JobSpec, StatKind};
pub use journal::EVENTS_FILE;
pub use live::{EventsSource, LivePlane};
pub use queue::{AdmissionQueue, Shed};
pub use ring::{BroadcastRing, RingUpdate};
pub use runner::JobRunOutcome;
pub use server::{ServeConfig, Server};
