//! Streaming-ingestion tests over real TCP: appended rows re-mine to the
//! byte-identical result a cold run on the concatenated dataset produces,
//! backlogged appends shed with `429 Retry-After` plus a jittered retry
//! hint, malformed rows are rejected before they reach the WAL, and a torn
//! WAL tail is quarantined into the status document instead of failing
//! recovery.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use hdx_serve::{ServeConfig, Server};

struct Response {
    status: u16,
    headers: String,
    body: String,
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) if !raw.is_empty() => break,
            Err(e) => panic!("read: {e}"),
        }
    }
    let raw = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = raw.split_once("\r\n\r\n").expect("blank line");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    Response {
        status,
        headers: head.to_string(),
        body: payload.to_string(),
    }
}

fn tmp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdx-ingest-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_rows(range: std::ops::Range<usize>) -> String {
    let mut csv = String::new();
    for r in range {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            u8::from(r % 3 == 0),
            u8::from(r % 4 == 0),
            r % 23,
            (r * 37) % 101,
            ["a", "b", "c", "d"][r % 4],
        ));
    }
    csv
}

fn sample_csv(rows: usize) -> String {
    format!("class,pred,age,income,grp\n{}", sample_rows(0..rows))
}

fn submission(csv: &str, tenant: &str) -> String {
    format!(
        r#"{{"csv":"{}","tenant":"{tenant}","stat":"fpr","support":0.02,"checkpoint_every":1}}"#,
        hdx_serve::json::escape(csv)
    )
}

fn config(state_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir,
        workers: 1,
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

fn json_str_field(body: &str, key: &str) -> String {
    let marker = format!("\"{key}\":\"");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no `{key}` in {body}"))
        + marker.len();
    let rest = &body[start..];
    rest[..rest.find('"').expect("closing quote")].to_string()
}

fn json_u64_field(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no `{key}` in {body}"))
        + marker.len();
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` not a number in {body}: {e}"))
}

fn await_terminal(addr: SocketAddr, job_id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
        assert_eq!(status.status, 200, "{}", status.body);
        let state = json_str_field(&status.body, "state");
        if !matches!(state.as_str(), "queued" | "running" | "backoff") {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job `{job_id}` stuck in `{state}`"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// Polls until the job's sealed result covers every durable WAL row (the
/// append endpoint re-queues finished jobs, so "done" alone can still be
/// the *pre-append* result for a moment).
fn await_folded(addr: SocketAddr, job_id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = await_terminal(addr, job_id);
        let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
        if !status.body.contains("\"ingest\"")
            || json_u64_field(&status.body, "pending_rows") == 0
        {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job `{job_id}` never folded its appends: {}",
            status.body
        );
        thread::sleep(Duration::from_millis(20));
    }
}

fn extract_job_id(body: &str) -> String {
    json_str_field(body, "job_id")
}

/// The acceptance bar for the whole ingestion pipeline: a job that grows by
/// streamed appends — including appends landing after the job finished —
/// must serve the byte-identical ranked results a cold submission of the
/// concatenated CSV produces.
#[test]
fn appended_rows_remine_to_the_cold_run_bytes() {
    let state = tmp_state_dir("remine");
    let (addr, handle) = start(config(state.clone()));

    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(300), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);
    assert_eq!(await_terminal(addr, &job_id), "done");

    // Two append batches: the first against a finished job (explicit
    // re-queue), the second racing whatever state the first left behind.
    let batch_a = sample_rows(300..360);
    let appended = http(addr, "POST", &format!("/jobs/{job_id}/append"), &batch_a);
    assert_eq!(appended.status, 202, "{}", appended.body);
    assert_eq!(json_u64_field(&appended.body, "durable_rows"), 60);
    let batch_b = sample_rows(360..400);
    let appended = http(addr, "POST", &format!("/jobs/{job_id}/append"), &batch_b);
    assert_eq!(appended.status, 202, "{}", appended.body);
    assert_eq!(json_u64_field(&appended.body, "durable_rows"), 100);

    assert_eq!(await_folded(addr, &job_id), "done");
    let streamed = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(streamed.status, 200, "{}", streamed.body);

    let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
    assert_eq!(json_u64_field(&status.body, "durable_rows"), 100);
    assert_eq!(json_u64_field(&status.body, "folded_rows"), 100);
    assert_eq!(json_u64_field(&status.body, "pending_rows"), 0);
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");

    // Control: one cold submission of the full 400-row dataset.
    let control_state = tmp_state_dir("remine-control");
    let (addr, handle) = start(config(control_state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(400), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let control_id = extract_job_id(&accepted.body);
    assert_eq!(await_terminal(addr, &control_id), "done");
    let control = http(addr, "GET", &format!("/jobs/{control_id}/result"), "");
    assert_eq!(control.status, 200);
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");

    assert_eq!(
        streamed.body, control.body,
        "streamed appends must serve the cold run's bytes"
    );
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&control_state);
}

#[test]
fn append_backlog_sheds_with_jittered_retry_guidance() {
    let state = tmp_state_dir("backlog");
    let mut cfg = config(state.clone());
    cfg.append_backlog_max_rows = 2;
    let (addr, handle) = start(cfg);

    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(50), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);
    assert_eq!(await_terminal(addr, &job_id), "done");

    // Three rows against a two-row backlog cap: shed, whole batch refused.
    let shed = http(
        addr,
        "POST",
        &format!("/jobs/{job_id}/append"),
        &sample_rows(50..53),
    );
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(
        shed.headers.contains("Retry-After:"),
        "shed appends advise a retry: {}",
        shed.headers
    );
    assert!(
        json_u64_field(&shed.body, "retry_after_ms") >= 1,
        "{}",
        shed.body
    );
    assert!(shed.body.contains("jittered exponential backoff"));
    // Nothing landed: the WAL directory stays absent or empty of rows.
    let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
    assert!(
        !status.body.contains("\"ingest\""),
        "a fully-shed append must not create durable rows: {}",
        status.body
    );

    // A batch within the cap is accepted.
    let ok = http(
        addr,
        "POST",
        &format!("/jobs/{job_id}/append"),
        &sample_rows(50..52),
    );
    assert_eq!(ok.status, 202, "{}", ok.body);

    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn malformed_appends_are_rejected_before_the_wal() {
    let state = tmp_state_dir("badrows");
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(50), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);

    // Wrong column count: the dataset has five fields.
    let bad = http(addr, "POST", &format!("/jobs/{job_id}/append"), "1,0,3\n");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.contains("field(s)"), "{}", bad.body);
    // Empty body.
    let empty = http(addr, "POST", &format!("/jobs/{job_id}/append"), "\n\n");
    assert_eq!(empty.status, 400, "{}", empty.body);
    // Unknown job.
    let lost = http(addr, "POST", "/jobs/j-9999999999/append", "1,0,3,4,a\n");
    assert_eq!(lost.status, 404, "{}", lost.body);

    assert_eq!(await_terminal(addr, &job_id), "done");
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

/// Degrade-not-die: a torn frame at the WAL tail (the bytes a `kill -9`
/// mid-append leaves behind) is quarantined at the next recovery — the job
/// still re-mines the durable prefix and the status document reports the
/// dropped bytes instead of the service failing the job.
#[test]
fn torn_wal_tail_is_quarantined_into_the_status_document() {
    let state = tmp_state_dir("torn");
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(300), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);
    assert_eq!(await_terminal(addr, &job_id), "done");
    let appended = http(
        addr,
        "POST",
        &format!("/jobs/{job_id}/append"),
        &sample_rows(300..320),
    );
    assert_eq!(appended.status, 202, "{}", appended.body);
    assert_eq!(await_folded(addr, &job_id), "done");
    let clean = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(clean.status, 200);
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");

    // Simulate the torn tail: a frame header promising more bytes than the
    // file holds, exactly what an interrupted append leaves.
    let open_log = state
        .join("jobs")
        .join(&job_id)
        .join("wal")
        .join(hdx_ingest::OPEN_FILE);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&open_log)
            .expect("open WAL tail");
        f.write_all(&[0xFF, 0x00, 0x00, 0x00, 0xAA, 0xBB])
            .expect("tear the tail");
    }

    // Restart over the same state directory: recovery quarantines the torn
    // bytes, notes it, and the job still serves its (unchanged) result.
    let server = Server::bind(config(state.clone())).expect("rebind");
    assert!(
        server
            .recovery_notes
            .iter()
            .any(|n| n.contains(&job_id) && n.contains("quarantin")),
        "recovery notes must mention the quarantine: {:?}",
        server.recovery_notes
    );
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("serve"));
    assert_eq!(await_folded(addr, &job_id), "done");
    let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
    assert!(
        json_u64_field(&status.body, "quarantined_frames") >= 1,
        "{}",
        status.body
    );
    assert!(
        json_u64_field(&status.body, "quarantined_bytes") >= 6,
        "{}",
        status.body
    );
    assert_eq!(json_u64_field(&status.body, "durable_rows"), 20);
    let after = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(after.status, 200);
    assert_eq!(
        after.body, clean.body,
        "quarantining the torn tail must not change the durable rows' result"
    );
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}
