//! End-to-end tests for the live observability plane (`obs` feature):
//! chunked event streaming, drop-oldest backpressure under a stalled
//! consumer, byte-identical replay across a restart, and the progress
//! summary embedded in `GET /jobs/<id>`.
#![cfg(feature = "obs")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use hdx_serve::{ServeConfig, Server};

struct Response {
    status: u16,
    headers: String,
    body: String,
}

/// One HTTP exchange; reads until the server closes the connection, so a
/// chunked event stream is consumed to its terminator.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) if !raw.is_empty() => break,
            Err(e) => panic!("read: {e}"),
        }
    }
    let raw = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = raw.split_once("\r\n\r\n").expect("blank line");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    Response {
        status,
        headers: head.to_string(),
        body: payload.to_string(),
    }
}

/// Decodes a `Transfer-Encoding: chunked` payload back into its bytes.
fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let Some(nl) = rest.find("\r\n") else { break };
        let size = usize::from_str_radix(rest[..nl].trim(), 16).expect("chunk size");
        if size == 0 {
            break;
        }
        let start = nl + 2;
        out.push_str(&rest[start..start + size]);
        rest = &rest[start + size + 2..];
    }
    out
}

/// The event payload of a response whether the server streamed it (chunked,
/// live subscription) or buffered it (replay with `Content-Length`).
fn event_bytes(response: &Response) -> String {
    if response.headers.contains("Transfer-Encoding: chunked") {
        dechunk(&response.body)
    } else {
        response.body.clone()
    }
}

fn tmp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdx-serve-ev-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_csv(rows: usize) -> String {
    let mut csv = String::from("class,pred,age,income,grp\n");
    for r in 0..rows {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            u8::from(r % 3 == 0),
            u8::from(r % 4 == 0),
            r % 23,
            (r * 37) % 101,
            ["a", "b", "c", "d"][r % 4],
        ));
    }
    csv
}

fn submission(csv: &str, tenant: &str) -> String {
    format!(
        r#"{{"csv":"{}","tenant":"{tenant}","stat":"fpr","support":0.02,"checkpoint_every":1}}"#,
        hdx_serve::json::escape(csv)
    )
}

fn config(state_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir,
        workers: 1,
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

fn json_str_field(body: &str, key: &str) -> String {
    let marker = format!("\"{key}\":\"");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no `{key}` in {body}"))
        + marker.len();
    let rest = &body[start..];
    rest[..rest.find('"').expect("closing quote")].to_string()
}

fn await_terminal(addr: SocketAddr, job_id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
        assert_eq!(status.status, 200, "{}", status.body);
        let state = json_str_field(&status.body, "state");
        if !matches!(state.as_str(), "queued" | "running" | "backoff") {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job `{job_id}` stuck in `{state}`"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn live_stream_and_replay_serve_identical_bytes() {
    let state = tmp_state_dir("stream");
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(400), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = json_str_field(&accepted.body, "job_id");

    // Follow the stream to its end: the server closes the response at the
    // job's terminal event, so this blocks until the run finishes.
    let streamed = event_bytes(&http(addr, "GET", &format!("/jobs/{job_id}/events"), ""));
    assert_eq!(await_terminal(addr, &job_id), "done");

    let first = streamed.lines().next().expect("at least one event");
    assert!(first.contains("\"seq\":0"), "{first}");
    assert!(first.contains("\"event\":\"admitted\""), "{first}");
    assert!(streamed.contains("\"event\":\"started\""), "{streamed}");
    assert!(streamed.contains("\"event\":\"level\""), "{streamed}");
    let last = streamed.lines().last().expect("terminal event");
    assert!(last.contains("\"event\":\"done\""), "{last}");
    assert!(last.contains("\"ok\":true"), "{last}");

    // The job is terminal now, so a second request replays the journal —
    // and must serve exactly the bytes the live stream delivered.
    let replay = http(addr, "GET", &format!("/jobs/{job_id}/events"), "");
    assert_eq!(replay.status, 200);
    assert_eq!(
        event_bytes(&replay),
        streamed,
        "live stream and journal replay must be byte-identical"
    );

    assert_eq!(
        http(addr, "GET", "/jobs/j-9999999999/events", "").status,
        404,
        "unknown jobs have no stream"
    );
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn stalled_stream_consumer_never_blocks_the_miner() {
    let state = tmp_state_dir("slow");
    let mut cfg = config(state.clone());
    // A tiny ring forces drop-oldest almost immediately once the consumer
    // stops draining its socket.
    cfg.events_ring_cap = 2;
    let (addr, handle) = start(cfg);
    let accepted = http(
        addr,
        "POST",
        "/jobs",
        &submission(&sample_csv(3000), "acme"),
    );
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = json_str_field(&accepted.body, "job_id");

    // A consumer that subscribes and then never reads a single byte. The
    // worker must keep mining regardless: event pushes land in the bounded
    // ring (dropping the oldest), never on this socket.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .write_all(format!("GET /jobs/{job_id}/events HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("subscribe");

    assert_eq!(
        await_terminal(addr, &job_id),
        "done",
        "the job must finish while the consumer stalls"
    );
    drop(stalled);

    // Durability was not sacrificed to backpressure: the journal replay
    // still carries the full stream from `admitted` to `done`.
    let replay = http(addr, "GET", &format!("/jobs/{job_id}/events"), "");
    let bytes = event_bytes(&replay);
    assert!(
        bytes.starts_with("{\"seq\":0,\"event\":\"admitted\""),
        "{bytes}"
    );
    assert!(bytes
        .lines()
        .last()
        .expect("done line")
        .contains("\"event\":\"done\""));

    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn completed_job_replays_byte_identically_after_restart() {
    let state = tmp_state_dir("replay-restart");
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(200), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = json_str_field(&accepted.body, "job_id");
    assert_eq!(await_terminal(addr, &job_id), "done");
    let before = event_bytes(&http(addr, "GET", &format!("/jobs/{job_id}/events"), ""));
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");

    // A new process over the same state directory serves the finished
    // job's stream from its durable journal, byte for byte. (The CI
    // serve-smoke job exercises the same contract across `kill -9`.)
    let (addr, handle) = start(config(state.clone()));
    let after = http(addr, "GET", &format!("/jobs/{job_id}/events"), "");
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(
        event_bytes(&after),
        before,
        "restart must not change a completed job's event stream"
    );
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn job_status_embeds_latest_progress() {
    let state = tmp_state_dir("progress");
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(300), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = json_str_field(&accepted.body, "job_id");
    assert_eq!(await_terminal(addr, &job_id), "done");

    let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
    assert_eq!(status.status, 200);
    assert!(
        status.body.contains("\"progress\":{\"level\":"),
        "status must embed the latest governor snapshot: {}",
        status.body
    );
    assert!(status.body.contains("\"itemsets\":"), "{}", status.body);
    assert!(
        status.body.contains("\"deadline_remaining_ns\":"),
        "{}",
        status.body
    );

    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}
